"""repro.chaos: deterministic fault injection for the serving stack.

Everything here is driven by a seeded, JSON-serializable
:class:`~repro.chaos.plan.FaultPlan`: the same plan replays the same
fault schedule whether applied client-side
(:class:`~repro.chaos.transport.ChaosTransport`, wrapping any pooled
transport) or server-side (:class:`~repro.chaos.gate.FaultGate`, hooked
into ``NormServer``'s frame loop).  The ``haan-chaos`` CLI
(:mod:`repro.chaos.cli`) drives golden-checked traffic under a plan and
asserts the robustness contract: every response is bit-identical to the
fault-free run or a *typed* failure from the API error taxonomy --
never silent corruption.
"""

from repro.chaos.gate import FaultGate
from repro.chaos.plan import (
    FAULT_KINDS,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRule,
    canned_plan,
)
from repro.chaos.transport import ChaosTransport

__all__ = [
    "FAULT_KINDS",
    "ChaosTransport",
    "FaultAction",
    "FaultGate",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "canned_plan",
]
