"""`haan-chaos`: golden-checked traffic under a deterministic fault plan.

Two drills share one flag set:

* **Chaos run** (default) -- launch in-process replicas, drive normalize
  traffic through the production client stack with a seeded
  :class:`~repro.chaos.plan.FaultPlan` injected either client-side
  (:class:`~repro.chaos.transport.ChaosTransport`) or server-side
  (:class:`~repro.chaos.gate.FaultGate`, ``--side server``), and assert
  the robustness contract per request: the response is **bit-identical**
  to the fault-free golden rebuild, or the failure is a **typed**
  :class:`~repro.api.envelopes.ApiError` -- never silent corruption,
  never an untyped crash::

      haan-chaos --replicas 2 --requests 40
      haan-chaos --side server --plan plan.json --json

* **Overload drill** (``--overload-drill``) -- flood one small-queue
  server far past capacity and assert the admission controller's claim:
  every shed request fails with a typed ``OverloadedError`` carrying
  ``retry_after_ms`` in under 100 ms, and every *accepted* request is
  still bit-identical::

      haan-chaos --overload-drill --burst 64 --max-queue-depth 4

``--print-plan`` dumps the canned CI plan as JSON (the fault-plan schema
documented in the README) and exits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import ApiError, OverloadedError
from repro.api.server import NormServer
from repro.api.transport import SocketTransport
from repro.chaos.gate import FaultGate
from repro.chaos.plan import FaultPlan, canned_plan
from repro.chaos.transport import ChaosTransport
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``haan-chaos`` command."""
    parser = argparse.ArgumentParser(
        prog="haan-chaos",
        description="Drive golden-checked traffic under a deterministic fault plan.",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="fault plan JSON (default: the canned CI smoke plan)",
    )
    parser.add_argument(
        "--print-plan",
        action="store_true",
        help="dump the canned plan as JSON and exit",
    )
    parser.add_argument(
        "--side",
        choices=("client", "server"),
        default="client",
        help="where the plan is applied: ChaosTransport or FaultGate",
    )
    parser.add_argument("--replicas", type=int, default=2, help="in-process servers")
    parser.add_argument("--requests", type=int, default=40, help="normalize requests")
    parser.add_argument("--rows", type=int, default=4, help="rows per synthetic tensor")
    parser.add_argument("--model", default="tiny", help="model to serve")
    parser.add_argument("--dataset", default="default", help="calibration dataset")
    parser.add_argument("--layer", type=int, default=0, help="normalization layer")
    parser.add_argument("--backend", default="vectorized", help="execution backend")
    parser.add_argument("--seed", type=int, default=0, help="payload RNG seed")
    parser.add_argument("--workers", type=int, default=4, help="workers per server")
    parser.add_argument(
        "--timeout", type=float, default=15.0, help="per-request client timeout"
    )
    parser.add_argument(
        "--overload-drill",
        action="store_true",
        help="run the admission-control drill instead of the chaos run",
    )
    parser.add_argument(
        "--burst", type=int, default=64, help="overload drill: pipelined burst size"
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=4,
        help="overload drill: server admission queue bound",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="stamp every request with this deadline",
    )
    parser.add_argument(
        "--shed-latency-ms",
        type=float,
        default=100.0,
        help="overload drill: max tolerated time-to-shed",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the run summary as JSON on stdout"
    )
    return parser


def _load_plan(args: argparse.Namespace, parser: argparse.ArgumentParser) -> FaultPlan:
    if args.plan is None:
        return canned_plan()
    try:
        with open(args.plan, "r", encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read())
    except (OSError, ValueError) as error:
        parser.error(f"--plan {args.plan}: {error}")
        raise  # unreachable; parser.error exits


class _Replicas:
    """N in-process NormServers over one shared calibration artifact."""

    def __init__(
        self,
        count: int,
        workers: int,
        max_queue_depth: int = 256,
        gates: Optional[List[Optional[FaultGate]]] = None,
    ):
        # One parent registry: Algorithm 1 runs once, every replica reuses it.
        self.registry = CalibrationRegistry()
        self.services: List[NormalizationService] = []
        self.servers: List[NormServer] = []
        try:
            for index in range(count):
                service = NormalizationService(
                    registry=CalibrationRegistry(
                        loader=lambda m, d: self.registry.get(m, d)
                    )
                )
                server = NormServer(
                    service,
                    workers=workers,
                    max_queue_depth=max_queue_depth,
                    fault_gate=gates[index] if gates else None,
                ).start()
                self.services.append(service)
                self.servers.append(server)
        except BaseException:
            self.close()
            raise

    @property
    def addresses(self) -> List[str]:
        return [f"{server.host}:{server.port}" for server in self.servers]

    def close(self) -> None:
        for server in self.servers:
            server.close()
        for service in self.services:
            service.close()


def _golden_engine(replicas: _Replicas, args: argparse.Namespace):
    """The fault-free reference rebuild of the served spec."""
    from repro.engine.registry import build

    artifact = replicas.registry.get(args.model, args.dataset)
    layer = artifact.layer(args.layer)
    spec = layer.engine_for("reference").spec
    return build(spec, backend="reference", gamma=layer.gamma, beta=layer.beta)


def _run_chaos(args: argparse.Namespace, plan: FaultPlan) -> int:
    gates: Optional[List[Optional[FaultGate]]] = None
    if args.side == "server":
        gates = [
            FaultGate(plan, replica=f"replica-{index}")
            for index in range(args.replicas)
        ]
    replicas = _Replicas(args.replicas, args.workers, gates=gates)
    chaos: Optional[ChaosTransport] = None
    try:
        golden = _golden_engine(replicas, args)
        if args.replicas > 1:
            from repro.fleet.transport import FleetTransport

            inner = FleetTransport(replicas.addresses, timeout=args.timeout)
        else:
            host, port = replicas.servers[0].host, replicas.servers[0].port
            inner = SocketTransport(host, port, timeout=args.timeout)
        transport = inner
        if args.side == "client":
            transport = chaos = ChaosTransport(inner, plan)
        rng = np.random.default_rng(args.seed)
        hidden = replicas.registry.get(args.model, args.dataset).layer(args.layer).hidden_size

        ok = 0
        mismatches = 0
        typed_failures: Dict[str, int] = {}
        untyped: List[str] = []
        with NormClient(transport) as client:
            client.wait_until_ready(timeout=30.0)
            for _index in range(args.requests):
                payload = rng.normal(0.0, 1.0, size=(args.rows, hidden))
                try:
                    result = client.normalize(
                        payload,
                        args.model,
                        layer_index=args.layer,
                        dataset=args.dataset,
                        backend=args.backend,
                        deadline_ms=args.deadline_ms,
                    )
                except ApiError as error:
                    typed_failures[error.code] = typed_failures.get(error.code, 0) + 1
                    continue
                except Exception as error:  # noqa: BLE001 - the contract under test
                    untyped.append(f"{type(error).__name__}: {error}")
                    continue
                expected = golden.run(np.asarray(payload, dtype=np.float64))[0]
                if np.array_equal(result.output, expected.reshape(result.output.shape)):
                    ok += 1
                else:
                    mismatches += 1

        injected: Dict[str, Any] = {}
        if chaos is not None:
            injected = chaos.snapshot()
        elif gates:
            injected = {
                "injected": sum(g.snapshot()["injected"] for g in gates),
                "replicas": [g.snapshot() for g in gates],
            }
        summary = {
            "mode": "chaos",
            "side": args.side,
            "plan": plan.name or args.plan,
            "replicas": replicas.addresses,
            "requests": args.requests,
            "bit_identical": ok,
            "typed_failures": typed_failures,
            "golden_mismatches": mismatches,
            "untyped_failures": untyped,
            "chaos": injected,
        }
        return _report(args, summary, _chaos_verdict(summary))
    finally:
        replicas.close()


def _chaos_verdict(summary: Dict[str, Any]) -> List[str]:
    problems = []
    if summary["golden_mismatches"]:
        problems.append(
            f"{summary['golden_mismatches']} response(s) differ from the "
            "golden rebuild: silent corruption"
        )
    if summary["untyped_failures"]:
        problems.append(
            f"{len(summary['untyped_failures'])} failure(s) outside the typed "
            f"ApiError taxonomy: {summary['untyped_failures'][:3]}"
        )
    if not summary["chaos"].get("injected"):
        problems.append("the plan injected no faults: the run proves nothing")
    return problems


def _run_overload(args: argparse.Namespace) -> int:
    replicas = _Replicas(1, workers=1, max_queue_depth=args.max_queue_depth)
    try:
        golden = _golden_engine(replicas, args)
        hidden = replicas.registry.get(args.model, args.dataset).layer(args.layer).hidden_size
        rng = np.random.default_rng(args.seed)
        payloads = [
            rng.normal(0.0, 1.0, size=(args.rows, hidden)) for _ in range(args.burst)
        ]
        host, port = replicas.servers[0].host, replicas.servers[0].port
        accepted = 0
        mismatches = 0
        shed: List[float] = []
        missing_retry_after = 0
        other_failures: List[str] = []
        with NormClient.connect(host, port, timeout=args.timeout) as client:
            client.wait_until_ready(timeout=30.0)
            started = [0.0] * args.burst
            handles = []
            for index, payload in enumerate(payloads):
                started[index] = time.perf_counter()
                handles.append(
                    client.submit_normalize(
                        payload,
                        args.model,
                        layer_index=args.layer,
                        dataset=args.dataset,
                        backend=args.backend,
                        deadline_ms=args.deadline_ms,
                    )
                )
            for index, handle in enumerate(handles):
                try:
                    result = handle.result()
                except OverloadedError as error:
                    shed.append((time.perf_counter() - started[index]) * 1000.0)
                    if error.retry_after_ms is None:
                        missing_retry_after += 1
                    continue
                except ApiError as error:
                    other_failures.append(f"[{error.code}] {error}")
                    continue
                accepted += 1
                expected = golden.run(np.asarray(payloads[index], dtype=np.float64))[0]
                if not np.array_equal(
                    result.output, expected.reshape(result.output.shape)
                ):
                    mismatches += 1

        summary = {
            "mode": "overload-drill",
            "burst": args.burst,
            "max_queue_depth": args.max_queue_depth,
            "accepted": accepted,
            "shed": len(shed),
            "shed_latency_ms_max": round(max(shed), 3) if shed else None,
            "shed_latency_ms_mean": round(float(np.mean(shed)), 3) if shed else None,
            "missing_retry_after": missing_retry_after,
            "golden_mismatches": mismatches,
            "other_failures": other_failures,
            "admission": replicas.servers[0].admission.snapshot(),
        }
        problems = []
        if not shed:
            problems.append("nothing was shed: the drill never overloaded the server")
        elif max(shed) >= args.shed_latency_ms:
            problems.append(
                f"slowest shed took {max(shed):.1f} ms "
                f"(tolerance {args.shed_latency_ms} ms)"
            )
        if missing_retry_after:
            problems.append(
                f"{missing_retry_after} OverloadedError(s) without retry_after_ms"
            )
        if mismatches:
            problems.append(f"{mismatches} accepted response(s) not bit-identical")
        if other_failures:
            problems.append(f"unexpected failures: {other_failures[:3]}")
        return _report(args, summary, problems)
    finally:
        replicas.close()


def _report(args: argparse.Namespace, summary: Dict[str, Any], problems: List[str]) -> int:
    summary["ok"] = not problems
    summary["problems"] = problems
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for key in sorted(summary):
            if key not in ("problems",):
                print(f"haan-chaos: {key}: {summary[key]}")
    for problem in problems:
        print(f"haan-chaos: FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.print_plan:
        print(canned_plan().to_json())
        return 0
    if args.replicas < 1 or args.requests < 1 or args.rows < 1:
        parser.error("--replicas, --requests and --rows must be positive")
    if args.burst < 1 or args.max_queue_depth < 1:
        parser.error("--burst and --max-queue-depth must be positive")
    plan = _load_plan(args, parser)
    if args.overload_drill:
        return _run_overload(args)
    return _run_chaos(args, plan)


if __name__ == "__main__":
    sys.exit(main())
