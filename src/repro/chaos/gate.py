"""Server-side fault injection: the gate inside NormServer's frame loop.

:class:`FaultGate` adapts a :class:`~repro.chaos.plan.FaultPlan` to the
action set :class:`~repro.api.server.NormServer` consumes per received
frame -- ``delay`` (sleep, then handle normally), ``drop`` (swallow the
frame; the client's deadline fires), ``corrupt`` (answer with the rule's
deterministic garbage bytes; the client's frame decoder fails closed) and
``kill`` (drop the TCP connection mid-conversation).

Rule-kind translation: ``slow_drain`` becomes a ``delay`` (a server
cannot stall *after* replying from inside the frame loop, so it stalls
the reply instead), and ``refuse_connect`` is skipped -- by the time the
gate sees a frame the connection is already accepted; refuse-connect is a
client-side (dial-time) fault.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.chaos.plan import FaultAction, FaultPlan

__all__ = ["FaultGate"]

#: Rule kind -> the action kind NormServer's frame loop understands.
_SERVER_ACTIONS = {
    "delay": "delay",
    "slow_drain": "delay",
    "drop": "drop",
    "corrupt": "corrupt",
    "kill_after": "kill",
}


class FaultGate:
    """Consulted once per received frame by ``NormServer``'s reader."""

    def __init__(self, plan: FaultPlan, scope: str = "wire", replica: Optional[str] = None):
        self.plan = plan
        self._injector = plan.injector(scope=scope, replica=replica)
        self._lock = threading.Lock()
        self._by_kind: Dict[str, int] = {}

    def on_server_frame(self, payload: Dict[str, Any]) -> Optional[FaultAction]:
        """The action for this frame, or ``None`` to handle it normally."""
        action = self._injector.decide(payload.get("op"))
        if action is None:
            return None
        kind = _SERVER_ACTIONS.get(action.kind)
        if kind is None:
            return None
        with self._lock:
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        return FaultAction(
            kind=kind,
            delay_s=action.delay_s,
            data=action.data,
            rule_index=action.rule_index,
        )

    def snapshot(self) -> Dict[str, Any]:
        """Injection counters (``chaos`` telemetry section material)."""
        with self._lock:
            by_kind = dict(self._by_kind)
        out = self._injector.snapshot()
        out["by_kind"] = by_kind
        out["plan"] = self.plan.name or None
        return out
