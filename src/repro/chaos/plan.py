"""Deterministic fault plans: the seed is the whole experiment.

A :class:`FaultPlan` is a seeded, JSON-serializable list of
:class:`FaultRule` entries.  Faults are *drawn*, not hard-coded: each rule
gets its own :class:`random.Random` stream seeded from ``(plan.seed, rule
index, scope)``, so the decision sequence for a given sequence of frames
is a pure function of the plan -- two injectors built from the same plan
and scope replay the *identical* fault schedule, whether they sit
client-side (:class:`~repro.chaos.transport.ChaosTransport`) or
server-side (:class:`~repro.chaos.gate.FaultGate`).  ``random.Random``
seeds strings via SHA-512 of their bytes, so the streams are stable
across processes and ``PYTHONHASHSEED`` values.

Rule kinds (the paper system's realistic failure surface):

===================  ======================================================
``delay``            Sleep ``delay_ms`` before handling/sending the frame.
``drop``             Swallow the frame (client: request fails typed;
                     server: the client's deadline fires).
``corrupt``          Client: mangle the envelope so the server answers a
                     typed schema error.  Server: answer with deterministic
                     garbage bytes so the client's frame decoder fails
                     closed.
``refuse_connect``   Client-only: fail the dial before any frame is sent
                     (a *clean* failure for the retry discipline).
``slow_drain``       Handle normally, then stall ``delay_ms`` -- a choking
                     peer rather than a dead one.
``kill_after``       After ``after_n`` frames, kill the connection
                     (client: force-close the pooled sockets; server: drop
                     the TCP link mid-conversation).
===================  ======================================================
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "canned_plan",
]

FAULT_KINDS = frozenset(
    {"delay", "drop", "corrupt", "refuse_connect", "slow_drain", "kill_after"}
)


@dataclass(frozen=True)
class FaultRule:
    """One fault source: what to inject, where, and how often.

    ``op``/``replica`` scope the rule (``None`` matches everything);
    ``probability`` is drawn per matching frame from the rule's own RNG
    stream; ``max_hits`` bounds total injections (``kill_after`` defaults
    to one kill, everything else to unlimited).
    """

    kind: str
    op: Optional[str] = None
    replica: Optional[str] = None
    probability: float = 1.0
    delay_ms: float = 0.0
    after_n: int = 0
    max_hits: Optional[int] = None
    corrupt_bytes: int = 64

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms!r}")
        if self.after_n < 0:
            raise ValueError(f"after_n must be >= 0, got {self.after_n!r}")
        if self.max_hits is not None and self.max_hits < 1:
            raise ValueError(f"max_hits must be >= 1, got {self.max_hits!r}")
        if self.corrupt_bytes < 1:
            raise ValueError(f"corrupt_bytes must be >= 1, got {self.corrupt_bytes!r}")
        if self.kind in ("delay", "slow_drain") and self.delay_ms == 0:
            raise ValueError(f"{self.kind} rule needs delay_ms > 0")

    @property
    def hit_limit(self) -> Optional[int]:
        """Effective injection bound: a kill fires once unless told otherwise."""
        if self.max_hits is not None:
            return self.max_hits
        return 1 if self.kind == "kill_after" else None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.op is not None:
            out["op"] = self.op
        if self.replica is not None:
            out["replica"] = self.replica
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.delay_ms:
            out["delay_ms"] = self.delay_ms
        if self.after_n:
            out["after_n"] = self.after_n
        if self.max_hits is not None:
            out["max_hits"] = self.max_hits
        if self.corrupt_bytes != 64:
            out["corrupt_bytes"] = self.corrupt_bytes
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be an object, got {type(data).__name__}")
        known = {
            "kind",
            "op",
            "replica",
            "probability",
            "delay_ms",
            "after_n",
            "max_hits",
            "corrupt_bytes",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule field(s): {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("fault rule is missing 'kind'")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded rule list -- serializable, hence shippable to CI."""

    seed: int
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def injector(self, scope: str = "wire", replica: Optional[str] = None) -> "FaultInjector":
        """A fresh injector replaying this plan's schedule from frame one."""
        return FaultInjector(self, scope=scope, replica=replica)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {type(data).__name__}")
        seed = data.get("seed")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"fault plan seed must be an integer, got {seed!r}")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("fault plan 'rules' must be a list")
        name = data.get("name", "")
        if not isinstance(name, str):
            raise ValueError(f"fault plan name must be a string, got {name!r}")
        return cls(
            seed=seed,
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            name=name,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(data)


@dataclass(frozen=True)
class FaultAction:
    """One injected fault, ready to apply.

    ``kind`` is the rule kind on the client side; the server-side
    :class:`~repro.chaos.gate.FaultGate` translates it to the action set
    :class:`~repro.api.server.NormServer` consumes (``delay`` / ``drop`` /
    ``corrupt`` / ``kill``).  ``data`` carries the deterministic garbage
    bytes of a ``corrupt`` fault.
    """

    kind: str
    delay_s: float = 0.0
    data: bytes = b""
    rule_index: int = -1


class FaultInjector:
    """Replays a plan's fault schedule over a sequence of frames.

    Thread-safe.  Determinism contract: two injectors built from the same
    ``(plan, scope, replica)`` that observe the same op sequence make the
    same decisions -- the property :mod:`tests.test_chaos` pins down.
    """

    def __init__(self, plan: FaultPlan, scope: str = "wire", replica: Optional[str] = None):
        self.plan = plan
        self.scope = scope
        self.replica = replica
        self._lock = threading.Lock()
        self._frames = 0
        self._hits = [0] * len(plan.rules)
        # One independent stream per rule: adding a rule never perturbs
        # the schedule of the rules before it.
        self._rngs = [
            random.Random(f"{plan.seed}:{index}:{scope}")
            for index in range(len(plan.rules))
        ]

    def decide(self, op: Optional[str] = None) -> Optional[FaultAction]:
        """The fault (if any) for the next frame; first matching rule wins."""
        with self._lock:
            self._frames += 1
            frame = self._frames
            for index, rule in enumerate(self.plan.rules):
                if rule.op is not None and rule.op != op:
                    continue
                if rule.replica is not None and rule.replica != self.replica:
                    continue
                limit = rule.hit_limit
                if limit is not None and self._hits[index] >= limit:
                    continue
                if rule.kind == "kill_after" and frame <= rule.after_n:
                    continue
                rng = self._rngs[index]
                if rule.probability < 1.0 and rng.random() >= rule.probability:
                    continue
                self._hits[index] += 1
                data = b""
                if rule.kind == "corrupt":
                    data = bytes(rng.getrandbits(8) for _ in range(rule.corrupt_bytes))
                return FaultAction(
                    kind=rule.kind,
                    delay_s=rule.delay_ms / 1000.0,
                    data=data,
                    rule_index=index,
                )
            return None

    def trace(self, ops: Sequence[Optional[str]]) -> List[Optional[str]]:
        """Decision kinds for a whole op sequence (property-test helper)."""
        return [
            action.kind if action is not None else None
            for action in (self.decide(op) for op in ops)
        ]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "frames": self._frames,
                "hits": list(self._hits),
                "injected": sum(self._hits),
            }


def canned_plan() -> FaultPlan:
    """The CI smoke plan: background delay, one mid-run kill, 5% corruption."""
    return FaultPlan(
        seed=7,
        name="ci-smoke",
        rules=(
            FaultRule(kind="delay", probability=0.2, delay_ms=2.0),
            FaultRule(kind="kill_after", after_n=10),
            FaultRule(kind="corrupt", probability=0.05),
        ),
    )
