"""Client-side fault injection behind the pooled-transport contract.

:class:`ChaosTransport` wraps any :class:`~repro.api.transport.Transport`
(socket, fleet, in-process) and applies a seeded
:class:`~repro.chaos.plan.FaultPlan` on the way through, so the code under
test -- client, retry policy, fleet failover -- is the *production* code,
bit for bit; only the failures are synthetic:

* ``refuse_connect`` / ``drop`` fail the request with a typed
  ``TransportError`` before / at the wire (clean vs. lost-frame).
* ``delay`` / ``slow_drain`` stall before / after delegating.
* ``corrupt`` mangles the envelope's ``op`` (request id preserved, so
  pipelining demultiplexes) -- the server answers a *typed* schema error,
  the taxonomy the chaos property test pins down.
* ``kill_after`` force-closes the wrapped transport's pooled connections
  (:meth:`SocketTransport.kill_connections`): in-flight requests fail like
  a mid-flight server death and the next request redials.

Registered as transport ``"chaos"``; the factory wraps a
:class:`~repro.api.transport.SocketTransport` built from the same
keyword arguments.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.api.envelopes import TransportError
from repro.api.transport import (
    PendingReply,
    SocketTransport,
    Transport,
    register_transport,
)
from repro.chaos.plan import FaultAction, FaultPlan, canned_plan

__all__ = ["ChaosTransport"]


class ChaosTransport(Transport):
    """A fault-injecting decorator over any client transport."""

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        scope: str = "wire",
        replica: Optional[str] = None,
    ):
        self.inner = inner
        self.plan = plan
        self._injector = plan.injector(scope=scope, replica=replica)
        self._lock = threading.Lock()
        self._by_kind: Dict[str, int] = {}

    # -- plumbing ------------------------------------------------------------

    @property
    def address(self) -> str:
        return f"chaos({getattr(self.inner, 'address', '?')})"

    @property
    def negotiated_version(self) -> Optional[int]:
        return getattr(self.inner, "negotiated_version", None)

    def wait_until_ready(self, timeout: float = 10.0, poll_interval: float = 0.1) -> None:
        waiter = getattr(self.inner, "wait_until_ready", None)
        if waiter is not None:
            waiter(timeout=timeout, poll_interval=poll_interval)

    def close(self) -> None:
        self.inner.close()

    def stats(self) -> Dict[str, Any]:
        inner_stats = getattr(self.inner, "stats", None)
        out = inner_stats() if callable(inner_stats) else {}
        out = dict(out)
        out["chaos"] = self.snapshot()
        return out

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            by_kind = dict(self._by_kind)
        out = self._injector.snapshot()
        out["by_kind"] = by_kind
        out["plan"] = self.plan.name or None
        return out

    # -- fault application ---------------------------------------------------

    def _count(self, action: FaultAction) -> None:
        with self._lock:
            self._by_kind[action.kind] = self._by_kind.get(action.kind, 0) + 1

    def _fail(self, action: FaultAction, message: str) -> TransportError:
        return TransportError(
            f"chaos: {message} (plan {self.plan.name or '?'!s}, "
            f"rule {action.rule_index})",
            address=getattr(self.inner, "address", None),
        )

    @staticmethod
    def _mangle(payload: Dict[str, Any], action: FaultAction) -> Dict[str, Any]:
        # Keep request_id so the response demultiplexes; garble the op so
        # the server answers a typed schema error instead of doing work.
        mangled = dict(payload)
        mangled["op"] = f"corrupted[{action.data[:4].hex()}]"
        return mangled

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        action = self._injector.decide(payload.get("op"))
        if action is None:
            return self.inner.request(payload)
        self._count(action)
        kind = action.kind
        if kind == "delay":
            time.sleep(action.delay_s)
            return self.inner.request(payload)
        if kind == "slow_drain":
            response = self.inner.request(payload)
            time.sleep(action.delay_s)
            return response
        if kind == "corrupt":
            return self.inner.request(self._mangle(payload, action))
        if kind == "refuse_connect":
            raise self._fail(action, "connection refused before dial")
        if kind == "drop":
            raise self._fail(action, "request frame dropped on the wire")
        # kill_after: sever the live connections, fail this request the
        # way a dying server would; the pool redials on the next one.
        killer = getattr(self.inner, "kill_connections", None)
        if callable(killer):
            killer()
        raise self._fail(action, "connection killed mid-flight")

    def submit(self, payload: Dict[str, Any]) -> PendingReply:
        action = self._injector.decide(payload.get("op"))
        if action is None:
            return self.inner.submit(payload)
        self._count(action)
        kind = action.kind
        if kind in ("delay", "slow_drain"):
            # From the pipelined path both stalls surface as a delayed
            # send; there is no waiter to stall afterwards.
            time.sleep(action.delay_s)
            return self.inner.submit(payload)
        if kind == "corrupt":
            return self.inner.submit(self._mangle(payload, action))
        reply = PendingReply()
        if kind == "refuse_connect":
            reply.set_exception(self._fail(action, "connection refused before dial"))
        elif kind == "drop":
            reply.set_exception(self._fail(action, "request frame dropped on the wire"))
        else:  # kill_after
            killer = getattr(self.inner, "kill_connections", None)
            if callable(killer):
                killer()
            reply.set_exception(self._fail(action, "connection killed mid-flight"))
        return reply


def _chaos_factory(
    host: str = "127.0.0.1",
    port: int = 0,
    plan: Optional[FaultPlan] = None,
    scope: str = "wire",
    replica: Optional[str] = None,
    **kwargs: Any,
) -> ChaosTransport:
    """Registry factory: a chaos-wrapped socket transport from kwargs."""
    if plan is None:
        plan = canned_plan()
    elif isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    elif isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    return ChaosTransport(
        SocketTransport(host, port, **kwargs), plan, scope=scope, replica=replica
    )


register_transport("chaos", _chaos_factory)
