"""Inverse-standard-deviation (ISD) statistics and analysis.

Section III-A of the paper studies the distribution of the ISD (``1/sigma``)
of normalization-layer inputs across the depth of an LLM and observes that
(a) it decays with depth and (b) its logarithm is close to linear over the
deeper layers.  This module provides the measurement and analysis utilities
behind that study: direct ISD computation, layer-wise profiling of a model,
Pearson correlation against layer index, and linear fitting in the log
domain (the ``calDecay`` of Algorithm 1 lives in
:mod:`repro.core.skipping`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.llm.config import NormKind
from repro.llm.hooks import StatisticsTrace
from repro.llm.model import TransformerModel


def compute_isd(rows: np.ndarray, kind: NormKind = NormKind.LAYERNORM, eps: float = 1e-5) -> np.ndarray:
    """Per-row ISD of a ``(num_rows, hidden)`` array.

    For LayerNorm the ISD is ``1/sqrt(var + eps)``; for RMSNorm it is
    ``1/sqrt(mean(x^2) + eps)`` (no re-centering).
    """
    arr = np.asarray(rows, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if kind is NormKind.LAYERNORM:
        spread = arr.var(axis=1)
    else:
        spread = np.mean(np.square(arr), axis=1)
    return 1.0 / np.sqrt(spread + eps)


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length sequences.

    Returns 0.0 for degenerate inputs (fewer than two points or zero
    variance), which keeps Algorithm 1 well-defined on flat ISD profiles.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.size != y_arr.size:
        raise ValueError("sequences must have equal length")
    if x_arr.size < 2:
        return 0.0
    x_std = np.std(x_arr)
    y_std = np.std(y_arr)
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    cov = np.mean((x_arr - x_arr.mean()) * (y_arr - y_arr.mean()))
    return float(cov / (x_std * y_std))


def linear_fit(indices: Sequence[float], values: Sequence[float]) -> tuple[float, float]:
    """Least-squares slope and intercept of ``values`` against ``indices``."""
    x_arr = np.asarray(indices, dtype=np.float64)
    y_arr = np.asarray(values, dtype=np.float64)
    if x_arr.size < 2:
        raise ValueError("need at least two points for a linear fit")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    return float(slope), float(intercept)


@dataclass
class IsdProfile:
    """Per-layer ISD profile of one model over a token population.

    Attributes
    ----------
    layer_names:
        Normalization-layer names, execution order.
    isd_matrix:
        ``(num_tokens, num_layers)`` matrix of ISD samples.
    """

    layer_names: List[str]
    isd_matrix: np.ndarray

    @property
    def num_layers(self) -> int:
        return self.isd_matrix.shape[1]

    @property
    def num_tokens(self) -> int:
        return self.isd_matrix.shape[0]

    def mean_isd(self) -> np.ndarray:
        """Per-layer mean ISD."""
        return np.mean(self.isd_matrix, axis=0)

    def mean_log_isd(self) -> np.ndarray:
        """Per-layer mean of ``log(ISD)`` -- the Figure 2 curve."""
        return np.mean(np.log(self.isd_matrix), axis=0)

    def log_isd_of_token(self, token_index: int) -> np.ndarray:
        """Per-layer ``log(ISD)`` of one token (one line of Figure 2)."""
        return np.log(self.isd_matrix[token_index])

    def correlation_with_depth(self, start: int = 0, end: Optional[int] = None) -> float:
        """Pearson correlation of mean log-ISD against layer index over [start, end)."""
        end = self.num_layers if end is None else end
        values = self.mean_log_isd()[start:end]
        return pearson_correlation(np.arange(start, end), values)

    def tail_linearity(self, tail_fraction: float = 0.33) -> float:
        """Correlation over the deepest ``tail_fraction`` of layers.

        The paper's observation is that this is strongly negative (close to
        -1) for the models it profiles.
        """
        if not 0.0 < tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        start = int(self.num_layers * (1.0 - tail_fraction))
        return self.correlation_with_depth(start=start)

    def decay_slope(self, start: int, end: int) -> float:
        """Slope of mean log-ISD against layer index over [start, end]."""
        indices = np.arange(start, end + 1)
        values = self.mean_log_isd()[start : end + 1]
        slope, _ = linear_fit(indices, values)
        return slope

    @classmethod
    def from_trace(cls, trace: StatisticsTrace) -> "IsdProfile":
        """Build a profile from a recorded statistics trace."""
        return cls(layer_names=list(trace.layer_names), isd_matrix=trace.isd_matrix())


def profile_model_isd(
    model: TransformerModel,
    texts: Sequence[str],
    max_seq_len: int = 64,
    batch_size: int = 8,
) -> IsdProfile:
    """Run texts through a model and collect its per-layer ISD profile.

    This is the measurement behind Figure 2: feed tokens, record the ISD at
    every normalization layer.
    """
    token_matrix = model.encode_texts(list(texts), max_len=max_seq_len)
    batches = [
        token_matrix[start : start + batch_size]
        for start in range(0, token_matrix.shape[0], batch_size)
    ]
    trace = model.collect_statistics(batches)
    return IsdProfile.from_trace(trace)
