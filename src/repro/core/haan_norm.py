"""The HAAN normalization layer.

:class:`HaanNormalization` is a drop-in replacement for the reference
:class:`~repro.llm.normalization.LayerNorm` / ``RMSNorm`` layers that applies
the three optimizations of Section III:

1. **ISD skipping** -- if the layer lies inside the calibrated skip range,
   the ISD is predicted from the anchor layer's ISD via the log-linear
   predictor instead of being computed.
2. **Subsampling** -- otherwise the statistics are estimated from the first
   ``N_sub`` elements of the input (equation (4)).
3. **Quantization** -- the input is first rounded through the configured
   storage format (INT8 / FP16 / FP32), and the ISD of computed layers can
   optionally be produced by the accelerator's fast-inverse-square-root
   path instead of an exact ``1/sqrt``.

The layer shares the affine parameters of the layer it replaces, so
installing HAAN never changes the model's weights.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.predictor import IsdPredictor
from repro.core.subsampling import (
    SubsampleSettings,
    batched_subsampled_statistics,
    subsampled_statistics,
    validate_segment_lengths,
)
from repro.llm.config import NormKind
from repro.llm.hooks import ActivationContext
from repro.llm.normalization import BaseNorm
from repro.numerics import kernels
from repro.numerics.fast_inv_sqrt import FastInvSqrt
from repro.numerics.quantization import DataFormat, segmented_round_trip, storage_round_trip


class HaanNormalization(BaseNorm):
    """Normalization layer with HAAN's skip / subsample / quantize pipeline."""

    def __init__(
        self,
        base: BaseNorm,
        predictor: Optional[IsdPredictor] = None,
        subsample: Optional[SubsampleSettings] = None,
        data_format: DataFormat = DataFormat.FP32,
        subsample_mean: bool = True,
        use_hardware_inv_sqrt: bool = False,
        newton_iterations: int = 1,
    ):
        super().__init__(
            hidden_size=base.hidden_size,
            layer_index=base.layer_index,
            name=base.name,
            gamma=base.gamma,
            beta=base.beta,
            eps=base.eps,
        )
        self.kind = base.kind
        self.base = base
        self.predictor = predictor
        self.subsample = subsample
        self.data_format = data_format
        self.subsample_mean = subsample_mean
        self.use_hardware_inv_sqrt = use_hardware_inv_sqrt
        self.inv_sqrt_unit = FastInvSqrt(newton_iterations=newton_iterations)
        self._predicted_last = False
        self._subsampled_last = False

    # -- introspection -----------------------------------------------------

    @property
    def is_skipped(self) -> bool:
        """Whether this layer's ISD is predicted rather than computed."""
        return self.predictor is not None and self.predictor.covers(self.layer_index)

    def _last_was_predicted(self) -> bool:
        return self._predicted_last

    def _last_was_subsampled(self) -> bool:
        return self._subsampled_last

    # -- forward -------------------------------------------------------------

    def __call__(self, x: np.ndarray, context: Optional[ActivationContext] = None) -> np.ndarray:
        """Quantize the input through the storage format, then normalize."""
        arr = np.asarray(x, dtype=np.float64)
        quantized = storage_round_trip(arr, self.data_format)
        return super().__call__(quantized.reshape(arr.shape), context)

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._predicted_last = False
        self._subsampled_last = False
        if self.is_skipped:
            return self._predicted_statistics(rows, context)
        return self._computed_statistics(rows)

    # -- batched serving fast path ----------------------------------------

    def forward_batched(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalize a stack of independent request segments in one call.

        Bit-identical to running :meth:`__call__` once per segment: the INT8
        storage round trip calibrates its scale per segment (exactly as the
        per-request path calibrates per tensor), and all statistics --
        subsampled or exact -- are per-row reductions.  For skipped layers
        ``anchor_isd`` carries one anchor-layer ISD per stacked row
        (``NaN`` where a request's context lacks the anchor), mirroring the
        per-request :meth:`IsdPredictor.predict_from_context` semantics.

        Executes the fused :func:`repro.numerics.kernels.haan_normalize_rows`
        kernel -- storage round trip, statistics, ISD refinement and affine
        transform in one pass over ``workspace`` scratch, writing into
        ``out`` when given.  :meth:`forward_batched_reference` retains the
        unfused pipeline as the golden model the kernel is tested against.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.hidden_size:
            raise ValueError(
                f"forward_batched expects (rows, {self.hidden_size}); got {arr.shape}"
            )
        self._predicted_last = False
        self._subsampled_last = False
        predicted_isd = None
        refine = None
        if self.is_skipped:
            self._predicted_last = True
            predicted_isd = self._batched_predicted_isd(anchor_isd, arr.shape[0])
            if (
                self.kind is not NormKind.RMSNORM
                and self.subsample is not None
                and self.subsample_mean
            ):
                self._subsampled_last = True
        else:
            refine = self._refine_isd
            if self.subsample is not None:
                self._subsampled_last = True
                if segment_starts is None:
                    lengths = np.array([arr.shape[0]])
                else:
                    lengths = np.diff(np.append(segment_starts, arr.shape[0]))
                validate_segment_lengths(lengths, arr.shape[0])
        subsample = self.subsample
        return kernels.haan_normalize_rows(
            arr,
            self.gamma,
            self.beta,
            storage=self.data_format.value,
            segment_starts=segment_starts,
            rms=self.kind is NormKind.RMSNORM,
            eps=self.eps,
            subsample_length=None if subsample is None else subsample.length,
            subsample_policy="truncate" if subsample is None else subsample.policy.value,
            subsample_mean=self.subsample_mean,
            predicted_isd=predicted_isd,
            refine_isd=refine,
            workspace=workspace,
            out=out,
        )

    def forward_batched_reference(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Golden-model batched path: the unfused PR-1 pipeline.

        Separate full-array passes for quantize, statistics and affine,
        with fresh intermediate allocations.  The fused kernel behind
        :meth:`forward_batched` must match this bit for bit; the golden
        equivalence suite and the kernel benchmark both call it.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.hidden_size:
            raise ValueError(
                f"forward_batched expects (rows, {self.hidden_size}); got {arr.shape}"
            )
        quantized = segmented_round_trip(arr, segment_starts, self.data_format)
        self._predicted_last = False
        self._subsampled_last = False
        if self.is_skipped:
            self._predicted_last = True
            isd = self._batched_predicted_isd(anchor_isd, arr.shape[0])
            mean = self._mean_only(quantized)
        elif self.subsample is not None:
            self._subsampled_last = True
            if segment_starts is None:
                lengths = np.array([arr.shape[0]])
            else:
                lengths = np.diff(np.append(segment_starts, arr.shape[0]))
            mean, isd = batched_subsampled_statistics(
                quantized,
                lengths,
                self.subsample,
                kind=self.kind,
                eps=self.eps,
                subsample_mean=self.subsample_mean,
            )
            isd = self._refine_isd(isd)
        else:
            mean, isd = self._computed_statistics(quantized)
        normalized = (quantized - mean[:, None]) * isd[:, None]
        out = normalized * self.gamma[None, :] + self.beta[None, :]
        return out, mean, isd

    def _batched_predicted_isd(
        self, anchor_isd: Optional[np.ndarray], num_rows: int
    ) -> np.ndarray:
        """Vectorized equation (3) over a stack of rows with mixed anchors.

        Rows whose anchor ISD is missing (``NaN``) fall back to the
        calibration-set scalar, matching what the per-request path does when
        a context does not hold the anchor layer.
        """
        fallback = self.predictor.predict_scalar(self.layer_index)
        if anchor_isd is None:
            return np.full(num_rows, fallback)
        anchor = np.asarray(anchor_isd, dtype=np.float64)
        if anchor.shape != (num_rows,):
            raise ValueError(f"anchor_isd must have shape ({num_rows},); got {anchor.shape}")
        missing = ~np.isfinite(anchor)
        if np.all(missing):
            return np.full(num_rows, fallback)
        safe = np.where(missing, 1.0, anchor)
        offset = self.layer_index - self.predictor.anchor_layer
        predicted = np.exp(np.log(safe) + self.predictor.decay * offset)
        return np.where(missing, fallback, predicted)

    # -- skipped layers: predict the ISD ---------------------------------

    def _predicted_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext]
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._predicted_last = True
        isd = self.predictor.predict_from_context(context, self.layer_index, rows.shape[0])
        mean = self._mean_only(rows)
        return mean, isd

    def _mean_only(self, rows: np.ndarray) -> np.ndarray:
        """Mean of a skipped layer (RMSNorm never re-centers; LayerNorm may subsample)."""
        if self.kind is NormKind.RMSNORM:
            return np.zeros(rows.shape[0])
        if self.subsample is not None and self.subsample_mean:
            self._subsampled_last = True
            length = min(self.subsample.length, rows.shape[1])
            return rows[:, :length].mean(axis=1)
        return rows.mean(axis=1)

    # -- computed layers: subsample and/or hardware inverse sqrt -------------

    def _computed_statistics(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.subsample is not None:
            self._subsampled_last = True
            mean, isd = subsampled_statistics(
                rows,
                self.subsample,
                kind=self.kind,
                eps=self.eps,
                subsample_mean=self.subsample_mean,
            )
        else:
            mean, isd = self.base.compute_statistics(rows)
        return mean, self._refine_isd(isd)

    def _refine_isd(self, isd: np.ndarray) -> np.ndarray:
        """Optionally route a computed ISD through the hardware inverse sqrt."""
        if not self.use_hardware_inv_sqrt:
            return isd
        variance = 1.0 / np.square(isd) - self.eps
        return self.inv_sqrt_unit.compute(np.maximum(variance, 0.0) + self.eps)
