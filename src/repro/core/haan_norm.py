"""The HAAN normalization layer.

:class:`HaanNormalization` is a drop-in replacement for the reference
:class:`~repro.llm.normalization.LayerNorm` / ``RMSNorm`` layers that applies
the three optimizations of Section III:

1. **ISD skipping** -- if the layer lies inside the calibrated skip range,
   the ISD is predicted from the anchor layer's ISD via the log-linear
   predictor instead of being computed.
2. **Subsampling** -- otherwise the statistics are estimated from the first
   ``N_sub`` elements of the input (equation (4)).
3. **Quantization** -- the input is first rounded through the configured
   storage format (INT8 / FP16 / FP32), and the ISD of computed layers can
   optionally be produced by the accelerator's fast-inverse-square-root
   path instead of an exact ``1/sqrt``.

The layer shares the affine parameters of the layer it replaces, so
installing HAAN never changes the model's weights.

Since the :mod:`repro.engine` refactor this class carries **no execution
machinery of its own**: its configuration compiles (once) into an
:class:`~repro.engine.plan.ExecutionPlan`, the inherited
:meth:`~repro.llm.normalization.BaseNorm.forward_batched` /
``forward_batched_reference`` delegate to the registered ``vectorized`` /
``reference`` backends, and the skip / subsample / refine math lives in the
plan and :mod:`repro.engine.stats`.  What remains here is the per-request
context protocol: reading the anchor ISD out of an
:class:`~repro.llm.hooks.ActivationContext` and reporting how statistics
were obtained.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsampleSettings, subsampled_statistics
from repro.engine.stats import skipped_mean
from repro.llm.hooks import ActivationContext
from repro.llm.normalization import BaseNorm
from repro.numerics.quantization import DataFormat, storage_round_trip


class HaanNormalization(BaseNorm):
    """Normalization layer with HAAN's skip / subsample / quantize pipeline."""

    def __init__(
        self,
        base: BaseNorm,
        predictor: Optional[IsdPredictor] = None,
        subsample: Optional[SubsampleSettings] = None,
        data_format: DataFormat = DataFormat.FP32,
        subsample_mean: bool = True,
        use_hardware_inv_sqrt: bool = False,
        newton_iterations: int = 1,
    ):
        super().__init__(
            hidden_size=base.hidden_size,
            layer_index=base.layer_index,
            name=base.name,
            gamma=base.gamma,
            beta=base.beta,
            eps=base.eps,
        )
        self.kind = base.kind
        self.base = base
        self.predictor = predictor
        self.subsample = subsample
        self.data_format = data_format
        self.subsample_mean = subsample_mean
        self.use_hardware_inv_sqrt = use_hardware_inv_sqrt
        self.newton_iterations = newton_iterations
        self._predicted_last = False
        self._subsampled_last = False

    # -- introspection -----------------------------------------------------

    @property
    def is_skipped(self) -> bool:
        """Whether this layer's ISD is predicted rather than computed."""
        return self.predictor is not None and self.predictor.covers(self.layer_index)

    def _last_was_predicted(self) -> bool:
        return self._predicted_last

    def _last_was_subsampled(self) -> bool:
        return self._subsampled_last

    def _note_batched_execution(self) -> None:
        """Path flags come from the compiled plan: configuration, not state."""
        self._predicted_last, self._subsampled_last = self.plan.path_flags()

    # -- forward -------------------------------------------------------------

    def __call__(self, x: np.ndarray, context: Optional[ActivationContext] = None) -> np.ndarray:
        """Quantize the input through the storage format, then normalize."""
        arr = np.asarray(x, dtype=np.float64)
        quantized = storage_round_trip(arr, self.data_format)
        return super().__call__(quantized.reshape(arr.shape), context)

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-request statistics: the reference path plus the context protocol.

        The skipped / subsampled / exact selection is read off the compiled
        plan's configuration; the math is the same single-source code the
        reference backend executes.  The only per-request extra is the
        anchor lookup: a skipped layer reads the anchor ISD deposited in
        ``context`` by an earlier layer of the same forward pass.
        """
        self._predicted_last, self._subsampled_last = self.plan.path_flags()
        if self.is_skipped:
            isd = self.predictor.predict_from_context(context, self.layer_index, rows.shape[0])
            mean = skipped_mean(
                rows,
                self.plan.spec.is_rms,
                None if self.subsample is None else self.subsample.length,
                self.subsample_mean,
            )
            return mean, isd
        if self.subsample is not None:
            mean, isd = subsampled_statistics(
                rows,
                self.subsample,
                kind=self.kind,
                eps=self.eps,
                subsample_mean=self.subsample_mean,
            )
        else:
            mean, isd = self.base.compute_statistics(rows)
        return mean, self.plan.refine_isd(isd)
