"""Alternative ISD prediction strategies and their comparison.

The paper's predictor (equation (3)) anchors on the measured ISD of layer
``i_f`` and extrapolates with a single calibration-time slope.  That is one
point in a small design space; this module implements the natural
alternatives so the choice can be ablated:

* :class:`AnchoredLogLinearPredictor` -- the paper's scheme (runtime anchor
  + calibration slope).
* :class:`CalibrationMeanPredictor` -- fully static: every skipped layer is
  predicted with its calibration-set mean log-ISD, ignoring the runtime
  anchor.  Cheapest hardware (a constant per layer) but blind to per-token
  variation.
* :class:`LeastSquaresPredictor` -- fits a per-token least-squares line over
  a window of layers before the skip range and extrapolates it; more
  runtime work (the window ISDs must all be computed) for a potentially
  better slope.
* :class:`FlatAnchorPredictor` -- uses the runtime anchor but no slope
  (decay = 0), isolating how much of the accuracy comes from the slope
  versus from the anchor.

:func:`evaluate_predictors` measures each strategy's log-domain prediction
error over a measured :class:`~repro.core.isd.IsdProfile`, which is the
quantity the skip-range ablation of Table II ultimately depends on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.isd import IsdProfile, linear_fit


class IsdPredictionStrategy(abc.ABC):
    """A rule that predicts log-ISD of skipped layers for each token."""

    name: str = "strategy"

    @abc.abstractmethod
    def predict_log_isd(self, profile: IsdProfile, skip_range: tuple[int, int]) -> np.ndarray:
        """Predicted ``log(ISD)`` for layers ``skip_range[0]+1 .. skip_range[1]``.

        Returns an array of shape ``(num_tokens, num_skipped_layers)``.
        """


def _skipped_layers(skip_range: tuple[int, int]) -> np.ndarray:
    start, end = skip_range
    return np.arange(start + 1, end + 1)


@dataclass
class AnchoredLogLinearPredictor(IsdPredictionStrategy):
    """The paper's equation (3): runtime anchor plus calibration slope."""

    decay: float
    name: str = "anchored-log-linear"

    def predict_log_isd(self, profile: IsdProfile, skip_range: tuple[int, int]) -> np.ndarray:
        start, _ = skip_range
        layers = _skipped_layers(skip_range)
        anchor = np.log(profile.isd_matrix[:, start])[:, None]
        offsets = (layers - start)[None, :]
        return anchor + self.decay * offsets


@dataclass
class FlatAnchorPredictor(IsdPredictionStrategy):
    """Runtime anchor with no extrapolation slope (decay ablation)."""

    name: str = "flat-anchor"

    def predict_log_isd(self, profile: IsdProfile, skip_range: tuple[int, int]) -> np.ndarray:
        start, _ = skip_range
        layers = _skipped_layers(skip_range)
        anchor = np.log(profile.isd_matrix[:, start])[:, None]
        return np.repeat(anchor, layers.size, axis=1)


@dataclass
class CalibrationMeanPredictor(IsdPredictionStrategy):
    """Static per-layer constants measured on a calibration profile."""

    calibration_profile: IsdProfile
    name: str = "calibration-mean"

    def predict_log_isd(self, profile: IsdProfile, skip_range: tuple[int, int]) -> np.ndarray:
        layers = _skipped_layers(skip_range)
        means = self.calibration_profile.mean_log_isd()[layers]
        return np.repeat(means[None, :], profile.num_tokens, axis=0)


@dataclass
class LeastSquaresPredictor(IsdPredictionStrategy):
    """Per-token least-squares fit over a window of pre-skip layers."""

    window: int = 8
    name: str = "least-squares-window"

    def predict_log_isd(self, profile: IsdProfile, skip_range: tuple[int, int]) -> np.ndarray:
        start, _ = skip_range
        layers = _skipped_layers(skip_range)
        window_start = max(0, start - self.window + 1)
        window_layers = np.arange(window_start, start + 1)
        if window_layers.size < 2:
            raise ValueError("least-squares predictor needs a window of at least two layers")
        predictions = np.zeros((profile.num_tokens, layers.size))
        for token in range(profile.num_tokens):
            values = np.log(profile.isd_matrix[token, window_layers])
            slope, intercept = linear_fit(window_layers, values)
            predictions[token] = slope * layers + intercept
        return predictions


@dataclass(frozen=True)
class PredictorEvaluation:
    """Accuracy of one strategy over the skipped layers of a profile."""

    name: str
    mean_abs_log_error: float
    max_abs_log_error: float
    mean_relative_isd_error: float

    def as_row(self) -> list:
        """Row representation for the table formatter."""
        return [
            self.name,
            f"{self.mean_abs_log_error:.4f}",
            f"{self.max_abs_log_error:.4f}",
            f"{self.mean_relative_isd_error * 100:.2f}%",
        ]


def evaluate_strategy(
    strategy: IsdPredictionStrategy,
    profile: IsdProfile,
    skip_range: tuple[int, int],
) -> PredictorEvaluation:
    """Measure a strategy's prediction error against a measured profile."""
    layers = _skipped_layers(skip_range)
    actual = np.log(profile.isd_matrix[:, layers])
    predicted = strategy.predict_log_isd(profile, skip_range)
    if predicted.shape != actual.shape:
        raise ValueError("strategy returned predictions of the wrong shape")
    log_error = np.abs(predicted - actual)
    relative = np.abs(np.exp(predicted) - np.exp(actual)) / np.exp(actual)
    return PredictorEvaluation(
        name=strategy.name,
        mean_abs_log_error=float(np.mean(log_error)),
        max_abs_log_error=float(np.max(log_error)),
        mean_relative_isd_error=float(np.mean(relative)),
    )


def evaluate_predictors(
    profile: IsdProfile,
    skip_range: tuple[int, int],
    decay: float,
    calibration_profile: IsdProfile | None = None,
    strategies: Sequence[IsdPredictionStrategy] | None = None,
) -> Dict[str, PredictorEvaluation]:
    """Compare the standard strategies (or a custom list) on one profile."""
    if strategies is None:
        strategies = [
            AnchoredLogLinearPredictor(decay=decay),
            FlatAnchorPredictor(),
            CalibrationMeanPredictor(calibration_profile or profile),
            LeastSquaresPredictor(),
        ]
    results: Dict[str, PredictorEvaluation] = {}
    for strategy in strategies:
        results[strategy.name] = evaluate_strategy(strategy, profile, skip_range)
    return results


def rank_strategies(evaluations: Dict[str, PredictorEvaluation]) -> List[str]:
    """Strategy names ordered from most to least accurate (mean log error)."""
    return sorted(evaluations, key=lambda name: evaluations[name].mean_abs_log_error)
