"""The HAAN algorithm: ISD skipping, subsampling and quantized normalization.

This package is the paper's primary contribution (Section III): the offline
calibration flow that finds which normalization statistics can be skipped,
the log-linear predictor that replaces them at run time, the subsampled
statistics estimator for the remaining layers, and the
:class:`~repro.core.haan_norm.HaanNormalization` layer that drops into the
LLM substrate of :mod:`repro.llm`.
"""

from repro.core.config import HaanConfig, PAPER_MODEL_SETTINGS, paper_config_for
from repro.core.isd import (
    IsdProfile,
    compute_isd,
    linear_fit,
    pearson_correlation,
    profile_model_isd,
)
from repro.core.skipping import (
    SkipSearchResult,
    cal_decay,
    find_skip_range,
    find_skip_range_from_profile,
    prediction_error,
    window_correlation,
)
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import (
    SubsamplePolicy,
    SubsampleSettings,
    estimation_error,
    select_subsample,
    subsampled_statistics,
)
from repro.core.haan_norm import HaanNormalization
from repro.core.predictors import (
    AnchoredLogLinearPredictor,
    CalibrationMeanPredictor,
    FlatAnchorPredictor,
    LeastSquaresPredictor,
    PredictorEvaluation,
    evaluate_predictors,
    rank_strategies,
)
from repro.core.error_model import (
    ErrorPropagationReport,
    compare_skip_ranges,
    flip_probability,
    isd_relative_errors,
    propagate,
)
from repro.core.calibration import (
    CalibrationResult,
    CalibrationSettings,
    apply_haan,
    build_haan_model,
    build_predictor_for_range,
    calibrate_model,
    restore_reference_norms,
)

__all__ = [
    "AnchoredLogLinearPredictor",
    "CalibrationMeanPredictor",
    "FlatAnchorPredictor",
    "LeastSquaresPredictor",
    "PredictorEvaluation",
    "evaluate_predictors",
    "rank_strategies",
    "ErrorPropagationReport",
    "compare_skip_ranges",
    "flip_probability",
    "isd_relative_errors",
    "propagate",
    "HaanConfig",
    "PAPER_MODEL_SETTINGS",
    "paper_config_for",
    "IsdProfile",
    "compute_isd",
    "linear_fit",
    "pearson_correlation",
    "profile_model_isd",
    "SkipSearchResult",
    "cal_decay",
    "find_skip_range",
    "find_skip_range_from_profile",
    "prediction_error",
    "window_correlation",
    "IsdPredictor",
    "SubsamplePolicy",
    "SubsampleSettings",
    "estimation_error",
    "select_subsample",
    "subsampled_statistics",
    "HaanNormalization",
    "CalibrationResult",
    "CalibrationSettings",
    "apply_haan",
    "build_haan_model",
    "build_predictor_for_range",
    "calibrate_model",
    "restore_reference_norms",
]
