"""Log-linear ISD predictor (paper equation (3)).

Once Algorithm 1 has selected the skip range ``(i_f, j_f)`` and the decay
coefficient ``e``, the ISD of a skipped layer ``k`` is predicted from the
ISD measured at the anchor layer ``i_f`` *for the same token*:

``log(ISD_k) = log(ISD_i) + e * (k - i)``

In the accelerator this prediction is performed by a small scalar unit
(Section IV-B); here :class:`IsdPredictor` is the algorithmic model shared
by the software evaluation and the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.skipping import SkipSearchResult
from repro.llm.hooks import ActivationContext


@dataclass(frozen=True)
class IsdPredictor:
    """Predicts the ISD of skipped layers from the anchor layer's ISD.

    Attributes
    ----------
    anchor_layer:
        ``i_f`` -- the last layer before the skip region whose ISD is
        actually computed.
    last_layer:
        ``j_f`` -- the last layer whose ISD is predicted.
    decay:
        Per-layer slope ``e`` of ``log(ISD)``.
    anchor_log_isd:
        Calibration-set mean ``log(ISD)`` of the anchor layer, used as a
        fallback when a caller cannot supply the runtime anchor ISD.
    """

    anchor_layer: int
    last_layer: int
    decay: float
    anchor_log_isd: float

    def __post_init__(self) -> None:
        if self.last_layer < self.anchor_layer:
            raise ValueError("last_layer must be >= anchor_layer")

    @property
    def skip_range(self) -> tuple[int, int]:
        """The ``(i_f, j_f)`` pair this predictor serves."""
        return (self.anchor_layer, self.last_layer)

    def covers(self, layer_index: int) -> bool:
        """Whether this predictor can produce the ISD of ``layer_index``."""
        return self.anchor_layer < layer_index <= self.last_layer

    def predict_from_anchor(self, anchor_isd: np.ndarray, layer_index: int) -> np.ndarray:
        """Predict the per-token ISD of a layer from the anchor layer's ISD."""
        if not self.covers(layer_index):
            raise ValueError(
                f"layer {layer_index} is outside the skip range {self.skip_range}"
            )
        anchor = np.asarray(anchor_isd, dtype=np.float64)
        offset = layer_index - self.anchor_layer
        return np.exp(np.log(anchor) + self.decay * offset)

    def predict_scalar(self, layer_index: int) -> float:
        """Predict a single ISD value from the calibration anchor (fallback path)."""
        if not self.covers(layer_index):
            raise ValueError(
                f"layer {layer_index} is outside the skip range {self.skip_range}"
            )
        offset = layer_index - self.anchor_layer
        return float(np.exp(self.anchor_log_isd + self.decay * offset))

    def predict_from_context(
        self,
        context: Optional[ActivationContext],
        layer_index: int,
        num_rows: int,
    ) -> np.ndarray:
        """Predict per-token ISDs using the anchor ISD stored in the context.

        Falls back to the calibration-set anchor when the context is absent
        or does not hold the anchor layer (e.g. a unit test calling a single
        normalization layer in isolation).
        """
        anchor_isd = context.isd_of(self.anchor_layer) if context is not None else None
        if anchor_isd is None or anchor_isd.shape[0] != num_rows:
            return np.full(num_rows, self.predict_scalar(layer_index))
        return self.predict_from_anchor(anchor_isd, layer_index)

    @classmethod
    def from_search_result(cls, result: SkipSearchResult) -> "IsdPredictor":
        """Build a predictor from an Algorithm 1 search result."""
        start, end = result.skip_range
        return cls(
            anchor_layer=start,
            last_layer=end,
            decay=result.decay,
            anchor_log_isd=result.anchor_log_isd,
        )
