"""HAAN algorithm configuration.

Collects the three algorithmic knobs the paper exposes (Section III and the
Table II ablation):

* the ISD **skip range** ``(i_f, j_f)`` found by Algorithm 1,
* the **subsample length** ``N_sub`` used for the remaining statistics, and
* the operand **data format** (INT8 / FP16 / FP32).

The per-model settings quoted in Section V-A are reproduced in
:data:`PAPER_MODEL_SETTINGS` so benchmarks can run exactly the
configurations of Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.numerics.quantization import DataFormat


@dataclass(frozen=True)
class HaanConfig:
    """Algorithm-level configuration of HAAN for one model.

    Attributes
    ----------
    skip_range:
        ``(i_f, j_f)`` layer-index pair from Algorithm 1.  Layers with index
        ``i_f < k <= j_f`` have their ISD predicted rather than computed;
        layer ``i_f`` itself is computed because its ISD anchors the
        prediction (equation (3)).  ``None`` disables skipping.
    subsample_length:
        ``N_sub``: number of leading input elements used to estimate the
        statistics of non-skipped layers (equation (4)).  Expressed against
        the *real* model hidden size; ``None`` disables subsampling.
    data_format:
        Storage format of the normalization operands.
    subsample_mean:
        Whether the mean (LayerNorm only) is also estimated from the
        subsample, as Section III-C describes.
    use_hardware_inv_sqrt:
        When True the ISD of computed layers goes through the accelerator's
        fast-inverse-square-root path (bit hack + Newton) instead of an
        exact ``1/sqrt``; used to validate that the hardware numerics do not
        change accuracy.
    newton_iterations:
        Newton refinement steps of the hardware inverse square root.
    """

    skip_range: Optional[Tuple[int, int]] = None
    subsample_length: Optional[int] = None
    data_format: DataFormat = DataFormat.FP32
    subsample_mean: bool = True
    use_hardware_inv_sqrt: bool = False
    newton_iterations: int = 1

    def __post_init__(self) -> None:
        if self.skip_range is not None:
            start, end = self.skip_range
            if start < 0 or end < start:
                raise ValueError(f"invalid skip range {self.skip_range}")
        if self.subsample_length is not None and self.subsample_length <= 0:
            raise ValueError("subsample_length must be positive")
        if self.newton_iterations < 0:
            raise ValueError("newton_iterations must be non-negative")

    @property
    def skipping_enabled(self) -> bool:
        """True when an ISD skip range is configured."""
        return self.skip_range is not None

    @property
    def subsampling_enabled(self) -> bool:
        """True when statistics are estimated from a truncated input."""
        return self.subsample_length is not None

    def num_skipped_layers(self) -> int:
        """Number of layers whose ISD is predicted rather than computed."""
        if self.skip_range is None:
            return 0
        start, end = self.skip_range
        return end - start

    def is_skipped(self, layer_index: int) -> bool:
        """Whether the layer at ``layer_index`` has its ISD predicted."""
        if self.skip_range is None:
            return False
        start, end = self.skip_range
        return start < layer_index <= end

    def with_overrides(self, **kwargs) -> "HaanConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def disabled(cls) -> "HaanConfig":
        """A configuration with every optimization turned off (the baseline)."""
        return cls(skip_range=None, subsample_length=None, data_format=DataFormat.FP32)


#: Per-model settings from Section V-A of the paper.
PAPER_MODEL_SETTINGS: Dict[str, HaanConfig] = {
    # "for the LLaMA-7B model, we utilize the first Nsub = 256 input sample
    #  with a skip range of (50, 60) ... INT8 quantization over the input"
    "llama-7b": HaanConfig(
        skip_range=(50, 60),
        subsample_length=256,
        data_format=DataFormat.INT8,
    ),
    # "For OPT-2.7B model, we utilize the first Nsub = 1280, with the skip
    #  range adjusted to (55, 62), and FP16 precision"
    "opt-2.7b": HaanConfig(
        skip_range=(55, 62),
        subsample_length=1280,
        data_format=DataFormat.FP16,
    ),
    # "The GPT2-1.5B model is configured with a Nsub = 800 and a skip range
    #  of (85, 92), also utilizing FP16 precision."
    "gpt2-1.5b": HaanConfig(
        skip_range=(85, 92),
        subsample_length=800,
        data_format=DataFormat.FP16,
    ),
}


def paper_config_for(model_name: str) -> HaanConfig:
    """The paper's HAAN configuration for a given model name."""
    key = model_name.strip().lower()
    if key not in PAPER_MODEL_SETTINGS:
        raise KeyError(
            f"no paper configuration for {model_name!r}; "
            f"available: {sorted(PAPER_MODEL_SETTINGS)}"
        )
    return PAPER_MODEL_SETTINGS[key]
