"""Analytic propagation of ISD prediction error to model outputs.

Tables I and II of the paper show empirically that skipping ISD computation
barely moves task accuracy when the skip range sits in the deep layers, and
destroys it when the range sits early.  This module provides the analytic
counterpart: given the relative error the predictor makes on the ISD, how
large is the perturbation of the normalized activations, and how likely is
it to flip a multiple-choice decision?

The chain is:

1. A relative ISD error ``delta`` perturbs the normalization output
   multiplicatively: ``s = alpha * (z - mu) * ISD + beta``, so the centred
   part of the output is scaled by exactly ``(1 + delta)``.
2. Each perturbed layer injects that relative error into the residual
   stream; layers closer to the output have fewer opportunities for the
   error to be attenuated (or amplified) downstream, which is captured with
   a per-layer attenuation factor.
3. The accumulated logit perturbation is compared against the model's
   decision margins: a flip happens when the perturbation exceeds the
   margin between the top two choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy import stats

from repro.core.isd import IsdProfile
from repro.core.predictor import IsdPredictor


def isd_relative_errors(profile: IsdProfile, predictor: IsdPredictor) -> np.ndarray:
    """Per-token, per-layer relative ISD error of the paper's predictor.

    Returns an array of shape ``(num_tokens, num_skipped_layers)`` with
    ``|ISD_pred - ISD_true| / ISD_true`` for every layer the predictor
    covers.
    """
    start, end = predictor.skip_range
    layers = np.arange(start + 1, end + 1)
    anchor = profile.isd_matrix[:, start]
    errors = np.zeros((profile.num_tokens, layers.size))
    for column, layer in enumerate(layers):
        predicted = predictor.predict_from_anchor(anchor, int(layer))
        actual = profile.isd_matrix[:, layer]
        errors[:, column] = np.abs(predicted - actual) / actual
    return errors


def output_relative_error(isd_relative_error: np.ndarray) -> np.ndarray:
    """Relative error of the centred normalization output.

    Because the output is linear in the ISD, the relative error of
    ``alpha * (z - mu) * ISD`` equals the relative error of the ISD itself;
    the affine ``beta`` shift is unaffected.
    """
    return np.asarray(isd_relative_error, dtype=np.float64)


def accumulated_logit_perturbation(
    per_layer_relative_error: np.ndarray,
    attenuation: float = 0.5,
) -> float:
    """Combine per-layer output errors into one relative logit perturbation.

    Layer errors are assumed to be independent zero-mean perturbations that
    are attenuated by downstream processing; combining them in quadrature
    with a per-layer ``attenuation`` factor gives

    ``sqrt(sum_l (attenuation * err_l)^2)``

    which is deliberately conservative (no cancellation assumed beyond
    independence).
    """
    if not 0.0 < attenuation <= 1.0:
        raise ValueError("attenuation must be in (0, 1]")
    arr = np.asarray(per_layer_relative_error, dtype=np.float64)
    per_layer = np.mean(arr, axis=0) if arr.ndim == 2 else arr
    return float(np.sqrt(np.sum((attenuation * per_layer) ** 2)))


def flip_probability(
    logit_perturbation: float,
    margin_mean: float,
    margin_std: float,
) -> float:
    """Probability that a perturbation of the logits flips a decision.

    Decision margins (difference between the best and second-best choice
    log-likelihood) are modelled as Gaussian; a flip happens when the margin
    is smaller than the logit perturbation.
    """
    if margin_std <= 0:
        return float(logit_perturbation >= margin_mean)
    return float(stats.norm.cdf((logit_perturbation - margin_mean) / margin_std))


@dataclass(frozen=True)
class ErrorPropagationReport:
    """Summary of the analytic error chain for one skip configuration."""

    skip_range: tuple[int, int]
    mean_isd_relative_error: float
    max_isd_relative_error: float
    logit_perturbation: float
    flip_probability: float

    def as_row(self) -> list:
        """Row representation for the table formatter."""
        return [
            f"({self.skip_range[0]}, {self.skip_range[1]})",
            f"{self.mean_isd_relative_error * 100:.2f}%",
            f"{self.max_isd_relative_error * 100:.2f}%",
            f"{self.logit_perturbation * 100:.2f}%",
            f"{self.flip_probability * 100:.2f}%",
        ]

    @staticmethod
    def header() -> list:
        """Column names matching :meth:`as_row`."""
        return ["skip range", "mean ISD err", "max ISD err", "logit perturbation", "flip prob"]


def propagate(
    profile: IsdProfile,
    predictor: IsdPredictor,
    margin_mean: float = 0.5,
    margin_std: float = 0.25,
    attenuation: float = 0.5,
) -> ErrorPropagationReport:
    """Run the full analytic chain for one predictor on one profile."""
    errors = isd_relative_errors(profile, predictor)
    perturbation = accumulated_logit_perturbation(errors, attenuation=attenuation)
    return ErrorPropagationReport(
        skip_range=predictor.skip_range,
        mean_isd_relative_error=float(np.mean(errors)),
        max_isd_relative_error=float(np.max(errors)),
        logit_perturbation=perturbation,
        flip_probability=flip_probability(perturbation, margin_mean, margin_std),
    )


def compare_skip_ranges(
    profile: IsdProfile,
    ranges_and_decays: Dict[tuple[int, int], float],
    **kwargs,
) -> Dict[tuple[int, int], ErrorPropagationReport]:
    """Propagate the error model for several candidate skip ranges.

    This reproduces the qualitative finding of Table II analytically: early
    skip ranges produce large ISD errors and near-certain decision flips,
    deep ranges produce tiny ones.
    """
    reports: Dict[tuple[int, int], ErrorPropagationReport] = {}
    for skip_range, decay in ranges_and_decays.items():
        start, end = skip_range
        anchor_log = float(np.log(profile.isd_matrix[:, start]).mean())
        predictor = IsdPredictor(
            anchor_layer=start, last_layer=end, decay=decay, anchor_log_isd=anchor_log
        )
        reports[skip_range] = propagate(profile, predictor, **kwargs)
    return reports
