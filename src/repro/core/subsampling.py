"""Subsampled statistics estimation (paper equation (4) and Section III-C).

For normalization layers whose ISD cannot be skipped, HAAN estimates the
statistics from only the first ``N_sub`` elements of each input vector
("To implement the subsampling operation on the input, we simply truncate
the first Nsub elements within the input").  The same truncated view also
feeds the mean computation of LayerNorm.

Besides the paper's truncation policy this module implements a strided
policy used by the ablation benchmark, to quantify how much the choice of
subsampling pattern matters for LLM activations (which can have
position-dependent structure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.llm.config import NormKind
from repro.numerics import kernels


class SubsamplePolicy(enum.Enum):
    """How the ``N_sub`` elements are chosen from the input vector."""

    #: First ``N_sub`` elements -- the paper's policy (cheapest in hardware,
    #: it is a simple truncation of the memory stream).
    TRUNCATE = "truncate"
    #: Every ``ceil(N / N_sub)``-th element -- costs strided memory access
    #: but samples the whole vector.
    STRIDED = "strided"


@dataclass(frozen=True)
class SubsampleSettings:
    """Subsampling configuration for one normalization layer."""

    length: int
    policy: SubsamplePolicy = SubsamplePolicy.TRUNCATE

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("subsample length must be positive")


def select_subsample(rows: np.ndarray, settings: SubsampleSettings) -> np.ndarray:
    """Return the subsampled view of a ``(num_rows, hidden)`` array."""
    arr = np.asarray(rows, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("select_subsample expects a 2-D (rows, hidden) array")
    hidden = arr.shape[1]
    length = min(settings.length, hidden)
    if settings.policy is SubsamplePolicy.TRUNCATE:
        return arr[:, :length]
    stride = max(1, hidden // length)
    picked = arr[:, ::stride]
    return picked[:, :length]


def subsample_indices(hidden: int, settings: SubsampleSettings) -> np.ndarray:
    """Column indices :func:`select_subsample` reads for a given input width.

    The ``haan-serve`` CLI uses this to report how many elements of the
    activation bus the subsampled statistics actually touch, without
    materializing the subsampled view.  Implemented by running the column
    positions through :func:`select_subsample` itself, so the reported
    indices can never drift from the selection the statistics perform.
    """
    if hidden <= 0:
        raise ValueError("hidden must be positive")
    positions = np.arange(hidden, dtype=np.float64)[None, :]
    return select_subsample(positions, settings)[0].astype(np.int64)


def batched_subsampled_statistics(
    stacked_rows: np.ndarray,
    segment_lengths: np.ndarray,
    settings: SubsampleSettings,
    kind: NormKind = NormKind.LAYERNORM,
    eps: float = 1e-5,
    subsample_mean: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row statistics of stacked request segments in one vectorized call.

    The micro-batching scheduler concatenates the rows of many independent
    requests into a single ``(total_rows, hidden)`` matrix.  Because every
    statistic of equation (4) is a per-row reduction, one vectorized
    :func:`subsampled_statistics` call over the stack is bit-identical to
    calling it per request and concatenating the results -- this wrapper
    validates the segment bookkeeping and makes that contract explicit.
    """
    arr = np.asarray(stacked_rows, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("batched_subsampled_statistics expects a 2-D stacked array")
    validate_segment_lengths(segment_lengths, arr.shape[0])
    return subsampled_statistics(
        arr, settings, kind=kind, eps=eps, subsample_mean=subsample_mean
    )


def validate_segment_lengths(segment_lengths: np.ndarray, total_rows: int) -> np.ndarray:
    """Check that per-request segment lengths tile the stacked rows exactly.

    Shared by the unfused batched statistics above and the fused serving
    kernel path, so both raise identically on corrupt segment bookkeeping.
    """
    lengths = np.asarray(segment_lengths, dtype=np.int64)
    if lengths.size and (np.any(lengths <= 0) or int(lengths.sum()) != total_rows):
        raise ValueError(
            f"segment lengths {lengths.tolist()} do not tile the {total_rows} stacked rows"
        )
    return lengths


def subsampled_statistics(
    rows: np.ndarray,
    settings: SubsampleSettings,
    kind: NormKind = NormKind.LAYERNORM,
    eps: float = 1e-5,
    subsample_mean: bool = True,
    workspace: "kernels.KernelWorkspace | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Estimate per-row (mean, ISD) from a subsampled view of the input.

    Implements equation (4): the ISD estimate uses only the ``N_sub``
    selected elements.  For LayerNorm, when ``subsample_mean`` is False the
    mean is still computed over the full vector (more accurate but more
    hardware passes); when True both statistics share the truncated view.

    The reductions run through the :mod:`repro.numerics.kernels` rowwise
    statistics (bit-identical to ``np.mean`` / ``ndarray.var``); passing a
    ``workspace`` reuses its scratch buffers instead of allocating the
    deviation matrix per call.
    """
    arr = np.asarray(rows, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("subsampled_statistics expects a 2-D (rows, hidden) array")
    sub = select_subsample(arr, settings)
    if kind is NormKind.RMSNORM:
        isd = kernels.inv_sqrt_stat(kernels.rowwise_mean_square(sub, workspace), eps)
        return np.zeros(arr.shape[0]), isd
    mean_source = sub if subsample_mean else arr
    mean = mean_source.mean(axis=1)
    isd = kernels.inv_sqrt_stat(kernels.rowwise_variance(sub, workspace), eps)
    return mean, isd


def estimation_error(
    rows: np.ndarray,
    settings: SubsampleSettings,
    kind: NormKind = NormKind.LAYERNORM,
    eps: float = 1e-5,
) -> Tuple[float, float]:
    """Relative RMS error of the subsampled ISD and mean estimates.

    Used by the ablation analysis to justify the ``N_sub`` choices: the
    error should fall roughly as ``1/sqrt(N_sub)``.
    """
    arr = np.asarray(rows, dtype=np.float64)
    sub_mean, sub_isd = subsampled_statistics(arr, settings, kind=kind, eps=eps)
    if kind is NormKind.RMSNORM:
        exact_spread = np.mean(np.square(arr), axis=1)
        exact_mean = np.zeros(arr.shape[0])
    else:
        exact_spread = arr.var(axis=1)
        exact_mean = arr.mean(axis=1)
    exact_isd = 1.0 / np.sqrt(exact_spread + eps)
    isd_err = float(np.sqrt(np.mean(((sub_isd - exact_isd) / exact_isd) ** 2)))
    scale = np.maximum(np.abs(exact_mean), 1e-12)
    mean_err = float(np.sqrt(np.mean(((sub_mean - exact_mean) / scale) ** 2)))
    return isd_err, mean_err
