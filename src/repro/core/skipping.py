"""ISD skipping search (paper Algorithm 1).

Given the per-layer ISD traces of a calibration set, Algorithm 1 scans all
layer windows of width ``M``, computes the Pearson correlation between
``log(ISD)`` and the layer index inside each window, and selects the window
with the most negative correlation -- i.e. the stretch of layers whose ISD
is most linearly predictable from depth.  The ``calDecay`` function then
fits the decay slope ``e`` used by the predictor (equation (3)).

This module implements the algorithm verbatim plus two practical
extensions that the accelerator configuration can use:

* :func:`find_skip_range` optionally grows the winning window outward while
  the correlation stays below a threshold, yielding more skipped layers
  when the linear region is longer than ``M``.
* a ``min_start`` guard keeps the search away from the earliest layers,
  which Table II shows must never be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.isd import IsdProfile, linear_fit, pearson_correlation


@dataclass(frozen=True)
class SkipSearchResult:
    """Outcome of the Algorithm 1 search.

    Attributes
    ----------
    skip_range:
        ``(i_f, j_f)`` -- the selected window, inclusive on both ends in
        layer-index units.
    correlation:
        The Pearson correlation achieved inside the window (``minCor``).
    decay:
        The ``calDecay`` slope ``e`` of ``log(ISD)`` per layer step.
    anchor_log_isd:
        Mean ``log(ISD)`` of the anchor layer ``i_f`` over the calibration
        set, used as a fallback when a runtime context lacks the anchor.
    """

    skip_range: tuple[int, int]
    correlation: float
    decay: float
    anchor_log_isd: float

    @property
    def num_skipped(self) -> int:
        """Number of layers whose ISD computation is skipped (``j_f - i_f``)."""
        return self.skip_range[1] - self.skip_range[0]


def cal_decay(log_isd_window: Sequence[float]) -> float:
    """The paper's ``calDecay``: linear gradient of log-ISD vs layer-index gap."""
    values = np.asarray(log_isd_window, dtype=np.float64)
    if values.size < 2:
        raise ValueError("calDecay needs at least two layers")
    slope, _ = linear_fit(np.arange(values.size), values)
    return float(slope)


def window_correlation(log_isd: Sequence[float], start: int, end: int) -> float:
    """Pearson correlation of ``log(ISD)`` vs layer index over [start, end]."""
    values = np.asarray(log_isd, dtype=np.float64)[start : end + 1]
    indices = np.arange(start, end + 1)
    return pearson_correlation(values, indices)


def find_skip_range(
    log_isd: Sequence[float],
    window: int,
    min_start: int = 0,
    max_end: Optional[int] = None,
    grow_threshold: Optional[float] = None,
) -> SkipSearchResult:
    """Algorithm 1: locate the most negatively-correlated log-ISD window.

    Parameters
    ----------
    log_isd:
        Per-layer mean ``log(ISD)`` over the calibration set (``ISDLists``).
    window:
        The skip-range width ``M``.
    min_start / max_end:
        Restrict the search to ``[min_start, max_end]`` layer indices.
    grow_threshold:
        If given, after the best window is found it is extended one layer at
        a time on either side while the window correlation stays below this
        (negative) threshold.
    """
    values = np.asarray(log_isd, dtype=np.float64)
    num_layers = values.size
    if window < 2:
        raise ValueError("window must span at least two layers")
    if num_layers < window + 1:
        raise ValueError(
            f"model has {num_layers} normalization layers, fewer than window {window} + 1"
        )
    max_end = num_layers - 1 if max_end is None else min(max_end, num_layers - 1)
    # Clamp the search parameters so small models (fewer layers than the
    # requested window allows for) still yield a candidate instead of
    # failing: first shrink the window, then relax the start bound.
    if min_start > max_end - window:
        window = max(2, max_end - min_start)
    if min_start > max_end - window:
        min_start = max(0, max_end - window)

    min_cor = 1.0
    best: Optional[tuple[int, int]] = None
    for start in range(min_start, max_end - window + 1):
        end = start + window
        correlation = window_correlation(values, start, end)
        if correlation < min_cor:
            min_cor = correlation
            best = (start, end)
    if best is None:
        raise ValueError("no candidate window found; widen the search bounds")

    start, end = best
    if grow_threshold is not None:
        # Grow outward while the linearity holds, preferring later layers.
        while end + 1 <= max_end and window_correlation(values, start, end + 1) <= grow_threshold:
            end += 1
        while start - 1 >= min_start and window_correlation(values, start - 1, end) <= grow_threshold:
            start -= 1
        min_cor = window_correlation(values, start, end)

    decay = cal_decay(values[start : end + 1])
    return SkipSearchResult(
        skip_range=(start, end),
        correlation=float(min_cor),
        decay=decay,
        anchor_log_isd=float(values[start]),
    )


def find_skip_range_from_profile(
    profile: IsdProfile,
    window: int,
    min_start: int = 0,
    max_end: Optional[int] = None,
    grow_threshold: Optional[float] = None,
) -> SkipSearchResult:
    """Run Algorithm 1 on an :class:`~repro.core.isd.IsdProfile`."""
    return find_skip_range(
        profile.mean_log_isd(),
        window=window,
        min_start=min_start,
        max_end=max_end,
        grow_threshold=grow_threshold,
    )


def prediction_error(
    log_isd: Sequence[float],
    result: SkipSearchResult,
) -> np.ndarray:
    """Absolute log-domain error of the predictor inside the skip range.

    For each skipped layer ``k`` the predictor produces
    ``log(ISD_i) + e * (k - i)``; the return value is ``|prediction - truth|``
    per skipped layer, a direct measure of how safe the skip is.
    """
    values = np.asarray(log_isd, dtype=np.float64)
    start, end = result.skip_range
    errors = []
    for k in range(start + 1, end + 1):
        predicted = values[start] + result.decay * (k - start)
        errors.append(abs(predicted - values[k]))
    return np.asarray(errors)
