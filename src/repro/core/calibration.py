"""End-to-end HAAN calibration pipeline.

Ties together the pieces of Section III into the offline flow the paper
describes ("HAAN selects skipped normalization layers offline with minimal
accuracy impact"):

1. run a calibration corpus through the model and record per-layer ISDs
   (:func:`repro.core.isd.profile_model_isd`),
2. search for the skip range with Algorithm 1
   (:func:`repro.core.skipping.find_skip_range_from_profile`),
3. build the log-linear :class:`~repro.core.predictor.IsdPredictor`, and
4. install :class:`~repro.core.haan_norm.HaanNormalization` layers into the
   model (:func:`apply_haan`), mapping the paper's ``N_sub`` (specified
   against the real hidden size) onto the simulated hidden width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.isd import IsdProfile, profile_model_isd
from repro.core.predictor import IsdPredictor
from repro.core.skipping import SkipSearchResult, find_skip_range_from_profile, prediction_error
from repro.core.subsampling import SubsamplePolicy, SubsampleSettings
from repro.llm.datasets import calibration_texts
from repro.llm.model import TransformerModel
from repro.llm.normalization import BaseNorm


@dataclass
class CalibrationSettings:
    """Settings of the offline calibration pass."""

    num_samples: int = 100
    max_seq_len: int = 48
    batch_size: int = 8
    window: int = 8
    min_start_fraction: float = 0.5
    grow_threshold: Optional[float] = None
    seed: int = 99

    def min_start(self, num_layers: int) -> int:
        """Earliest layer index Algorithm 1 is allowed to pick as the anchor.

        Table II shows that skipping early layers destroys accuracy, so the
        search is restricted to the later ``(1 - min_start_fraction)`` of the
        network by default.
        """
        return int(num_layers * self.min_start_fraction)


@dataclass
class CalibrationResult:
    """Everything the online phase needs, produced by :func:`calibrate_model`."""

    model_name: str
    profile: IsdProfile
    search: SkipSearchResult
    predictor: IsdPredictor
    settings: CalibrationSettings
    log_isd_prediction_error: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def skip_range(self) -> tuple[int, int]:
        """The selected ``(i_f, j_f)`` skip range."""
        return self.search.skip_range

    @property
    def decay(self) -> float:
        """The calibrated log-ISD decay slope ``e``."""
        return self.search.decay

    def max_prediction_error(self) -> float:
        """Worst-case absolute log-ISD prediction error inside the skip range."""
        if self.log_isd_prediction_error.size == 0:
            return 0.0
        return float(np.max(self.log_isd_prediction_error))


def calibrate_model(
    model: TransformerModel,
    texts: Optional[Sequence[str]] = None,
    settings: Optional[CalibrationSettings] = None,
) -> CalibrationResult:
    """Run the offline calibration flow on a model.

    Parameters
    ----------
    model:
        The model to calibrate (with its reference normalization layers).
    texts:
        Calibration documents; defaults to the synthetic Wikitext stand-in
        with ``settings.num_samples`` documents.
    settings:
        Calibration hyper-parameters.
    """
    settings = settings or CalibrationSettings()
    if texts is None:
        texts = calibration_texts(settings.num_samples, seed=settings.seed)
    profile = profile_model_isd(
        model,
        texts,
        max_seq_len=settings.max_seq_len,
        batch_size=settings.batch_size,
    )
    search = find_skip_range_from_profile(
        profile,
        window=settings.window,
        min_start=settings.min_start(profile.num_layers),
        grow_threshold=settings.grow_threshold,
    )
    predictor = IsdPredictor.from_search_result(search)
    errors = prediction_error(profile.mean_log_isd(), search)
    return CalibrationResult(
        model_name=model.config.name,
        profile=profile,
        search=search,
        predictor=predictor,
        settings=settings,
        log_isd_prediction_error=errors,
    )


def build_predictor_for_range(
    profile: IsdProfile, skip_range: tuple[int, int]
) -> IsdPredictor:
    """Fit a predictor for a *given* skip range (used by the Table II ablation).

    The ablation sweeps skip ranges that Algorithm 1 would not have chosen;
    the predictor coefficients are still fit from the calibration profile
    over that range, exactly as the online phase would use them.
    """
    start, end = skip_range
    log_isd = profile.mean_log_isd()
    if not 0 <= start < end < profile.num_layers:
        raise ValueError(
            f"skip range {skip_range} outside the model's {profile.num_layers} layers"
        )
    from repro.core.skipping import cal_decay  # local import to avoid a cycle

    decay = cal_decay(log_isd[start : end + 1])
    return IsdPredictor(
        anchor_layer=start,
        last_layer=end,
        decay=decay,
        anchor_log_isd=float(log_isd[start]),
    )


def apply_haan(
    model: TransformerModel,
    config: HaanConfig,
    predictor: Optional[IsdPredictor] = None,
    subsample_policy: SubsamplePolicy = SubsamplePolicy.TRUNCATE,
) -> List[HaanNormalization]:
    """Install HAAN normalization layers into a model, in place.

    Every reference normalization layer is replaced by a
    :class:`HaanNormalization` sharing its affine parameters.  Returns the
    list of installed layers (execution order) for inspection.

    ``config.subsample_length`` is interpreted against the real model hidden
    size and mapped proportionally onto the simulation width via
    :meth:`repro.llm.config.ModelConfig.scale_subsample_length`.
    """
    if config.skipping_enabled and predictor is None:
        raise ValueError("a predictor is required when the skip range is enabled")
    subsample = None
    if config.subsampling_enabled:
        sim_length = model.config.scale_subsample_length(config.subsample_length)
        subsample = SubsampleSettings(length=sim_length, policy=subsample_policy)
    installed: List[HaanNormalization] = []
    for layer_index in range(model.num_norm_layers):
        base = model.norm_layer(layer_index)
        haan_layer = HaanNormalization(
            base=base,
            predictor=predictor if config.skipping_enabled else None,
            subsample=subsample,
            data_format=config.data_format,
            subsample_mean=config.subsample_mean,
            use_hardware_inv_sqrt=config.use_hardware_inv_sqrt,
            newton_iterations=config.newton_iterations,
        )
        model.replace_norm_layer(layer_index, haan_layer)
        installed.append(haan_layer)
    return installed


def restore_reference_norms(model: TransformerModel, originals: Sequence[BaseNorm]) -> None:
    """Put back the original normalization layers (undo :func:`apply_haan`)."""
    if len(originals) != model.num_norm_layers:
        raise ValueError("original layer list does not match the model")
    for layer_index, layer in enumerate(originals):
        model.replace_norm_layer(layer_index, layer)


def resolve_config_and_predictor(
    model: TransformerModel,
    calibration: CalibrationResult,
    config: Optional[HaanConfig] = None,
) -> tuple[HaanConfig, IsdPredictor]:
    """Default-config and predictor-refit policy shared by the offline
    :func:`build_haan_model` flow and the serving calibration registry.

    When ``config`` is omitted, the skip range comes from Algorithm 1's own
    choice on the calibration profile and the subsample length defaults to
    half the hidden size (the setting used for GPT-2 in Section V-B).  When
    a config requests a skip range other than the calibrated one, the
    predictor is refit over that range from the same profile.
    """
    if config is None:
        config = HaanConfig(
            skip_range=calibration.skip_range,
            subsample_length=model.config.hidden_size // 2,
        )
    if config.skipping_enabled and config.skip_range != calibration.skip_range:
        predictor = build_predictor_for_range(calibration.profile, config.skip_range)
    else:
        predictor = calibration.predictor
    return config, predictor


def build_haan_model(
    model_name: str,
    config: Optional[HaanConfig] = None,
    calibration: Optional[CalibrationResult] = None,
    settings: Optional[CalibrationSettings] = None,
    **model_overrides,
) -> tuple[TransformerModel, CalibrationResult, HaanConfig]:
    """Convenience entry point: build, calibrate and HAAN-ify a model."""
    model = TransformerModel.from_name(model_name, **model_overrides)
    calibration = calibration or calibrate_model(model, settings=settings)
    config, predictor = resolve_config_and_predictor(model, calibration, config)
    apply_haan(model, config, predictor=predictor)
    return model, calibration, config
