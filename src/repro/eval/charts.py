"""Plain-text charts for terminal-friendly experiment output.

The paper presents Figures 2, 8 and 9 as plots; the benchmark harness runs
in a terminal, so these helpers render the same series as ASCII bar and
line charts that can be embedded in EXPERIMENTS.md or printed by the
examples without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with one row per label.

    Bars are scaled so the largest value spans ``width`` characters; values
    are printed next to each bar.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return title or ""
    arr = np.asarray(values, dtype=np.float64)
    peak = float(np.max(np.abs(arr))) if arr.size else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, arr):
        bar_len = 0 if peak == 0 else int(round(abs(value) / peak * width))
        bar = "#" * bar_len
        lines.append(f"{str(label):>{label_width}} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_line_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: Optional[str] = None,
    log_y: bool = False,
) -> str:
    """Multi-series line chart drawn on a character grid.

    Each series gets its own marker character; the y-axis can be
    logarithmic, which is how the paper plots Figure 2 (log-scale ISD) and
    Figures 8/9 (log-scale normalized latency).
    """
    if not series:
        raise ValueError("at least one series is required")
    markers = "*o+x@%&$"
    x_arr = np.asarray(x, dtype=np.float64)
    all_values = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    if log_y:
        if np.any(all_values <= 0):
            raise ValueError("log_y requires strictly positive values")
        all_values = np.log10(all_values)
    y_min, y_max = float(np.min(all_values)), float(np.max(all_values))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(np.min(x_arr)), float(np.max(x_arr))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        y_arr = np.asarray(values, dtype=np.float64)
        if y_arr.shape != x_arr.shape:
            raise ValueError(f"series {name!r} length does not match x")
        plot_y = np.log10(y_arr) if log_y else y_arr
        for xi, yi in zip(x_arr, plot_y):
            col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    axis_label = "log10(y)" if log_y else "y"
    lines.append(f"{axis_label} in [{y_min:.3g}, {y_max:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x in [{x_min:.3g}, {x_max:.3g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compact one-line trend indicator using block characters."""
    blocks = "▁▂▃▄▅▆▇█"
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    low, high = float(np.min(arr)), float(np.max(arr))
    if high == low:
        return blocks[0] * arr.size
    indices = np.round((arr - low) / (high - low) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in indices)
