"""GPU runtime breakdown of LLM inference (paper Figure 1(b)).

Figure 1(b) profiles GPT-2 and OPT execution on an A100 at sequence length
2048 and reports the share of runtime spent in Matmul, Softmax,
Normalization and Others, both for the original FP16 model and after
applying FlashAttention (softmax) and FP8 quantization (linear layers).
The headline observation is that normalization is ~16% of runtime
originally and becomes the dominant non-matmul cost (>33%) once the other
operations are optimized.

We have no A100, so the breakdown is reproduced in two steps:

1. the amount of *work* per category is derived from the model
   architecture (matmul FLOPs, softmax elements over the causal attention
   matrix, normalization elements, elementwise "other" work);
2. per-category effective throughputs are calibrated so the *original*
   breakdown matches the paper's measured shares for each model
   (:data:`PAPER_ORIGINAL_BREAKDOWN`); the calibrated rates encode the GPU
   efficiency of each kernel class, which we cannot measure offline.

The reproduced quantity is then the *optimized* breakdown: FlashAttention
cuts softmax time by 80% (the reduction the paper quotes) and FP8 halves
matmul time, and the normalization share is recomputed -- showing the same
"normalization becomes the bottleneck" shape as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.llm.config import ModelConfig, get_model_config

#: Categories of the Figure 1(b) breakdown.
CATEGORIES = ("matmul", "softmax", "normalization", "others")

#: Measured original-model runtime shares from Figure 1(b), used to
#: calibrate the per-category effective throughput of the GPU model.
PAPER_ORIGINAL_BREAKDOWN: Dict[str, Dict[str, float]] = {
    "gpt2-117m": {"matmul": 0.572, "softmax": 0.217, "normalization": 0.161, "others": 0.050},
    "opt-2.7b": {"matmul": 0.522, "softmax": 0.201, "normalization": 0.161, "others": 0.116},
}

#: Optimization factors of the "after optimization" bars: FlashAttention
#: reduces softmax latency by 80% (paper Section I), FP8 halves matmul time.
SOFTMAX_OPTIMIZATION_SPEEDUP = 5.0
MATMUL_OPTIMIZATION_SPEEDUP = 2.0


@dataclass(frozen=True)
class WorkloadWork:
    """Architecture-derived work per category for one forward pass."""

    matmul_flops: float
    softmax_elements: float
    normalization_elements: float
    other_elements: float


@dataclass
class LatencyBreakdown:
    """Absolute per-category times and their shares."""

    model_name: str
    times: Dict[str, float]

    @property
    def total(self) -> float:
        """Total runtime (arbitrary units; only shares are meaningful)."""
        return sum(self.times.values())

    def shares(self) -> Dict[str, float]:
        """Per-category share of the total runtime."""
        total = self.total
        if total == 0:
            return {k: 0.0 for k in self.times}
        return {k: v / total for k, v in self.times.items()}

    def share(self, category: str) -> float:
        """Share of one category."""
        return self.shares()[category]


def category_work(config: ModelConfig, seq_len: int) -> WorkloadWork:
    """Work per category of one prefill forward pass of ``seq_len`` tokens.

    Uses the *real* model dimensions (hidden size, block count), since the
    breakdown describes the real GPU workload, not the scaled simulation.
    """
    hidden = config.hidden_size
    blocks = config.num_blocks
    heads = max(1, hidden // 64)
    avg_context = seq_len / 2  # causal attention touches half the matrix on average
    # Projections (Q,K,V,O + MLP in/out with 4x expansion) plus the two
    # attention matmuls, in multiply-accumulate FLOPs (x2).
    proj_flops = 2 * (4 * hidden * hidden + 2 * 4 * hidden * hidden) * seq_len * blocks
    attn_flops = 2 * 2 * hidden * avg_context * seq_len * blocks
    softmax_elements = heads * avg_context * seq_len * blocks
    norm_elements = config.num_norm_layers * hidden * seq_len
    other_elements = (6 * hidden) * seq_len * blocks  # GeLU, residual adds, biases
    return WorkloadWork(
        matmul_flops=proj_flops + attn_flops,
        softmax_elements=softmax_elements,
        normalization_elements=norm_elements,
        other_elements=other_elements,
    )


def calibrated_rates(model_name: str, seq_len: int = 2048) -> Dict[str, float]:
    """Per-category effective throughputs fit to the paper's original shares."""
    key = model_name.strip().lower()
    if key not in PAPER_ORIGINAL_BREAKDOWN:
        raise KeyError(
            f"no measured breakdown for {model_name!r}; available: {sorted(PAPER_ORIGINAL_BREAKDOWN)}"
        )
    config = get_model_config(key)
    work = category_work(config, seq_len)
    shares = PAPER_ORIGINAL_BREAKDOWN[key]
    # Normalise total runtime to 1.0, so rate = work / share.
    return {
        "matmul": work.matmul_flops / shares["matmul"],
        "softmax": work.softmax_elements / shares["softmax"],
        "normalization": work.normalization_elements / shares["normalization"],
        "others": work.other_elements / shares["others"],
    }


def original_breakdown(model_name: str, seq_len: int = 2048) -> LatencyBreakdown:
    """The original (un-optimised) runtime breakdown of a model."""
    config = get_model_config(model_name)
    work = category_work(config, seq_len)
    rates = calibrated_rates(model_name, seq_len)
    times = {
        "matmul": work.matmul_flops / rates["matmul"],
        "softmax": work.softmax_elements / rates["softmax"],
        "normalization": work.normalization_elements / rates["normalization"],
        "others": work.other_elements / rates["others"],
    }
    return LatencyBreakdown(model_name=model_name, times=times)


def optimized_breakdown(
    model_name: str,
    seq_len: int = 2048,
    matmul_speedup: float = MATMUL_OPTIMIZATION_SPEEDUP,
    softmax_speedup: float = SOFTMAX_OPTIMIZATION_SPEEDUP,
) -> LatencyBreakdown:
    """Breakdown after applying FlashAttention and FP8 linear layers."""
    base = original_breakdown(model_name, seq_len)
    times = dict(base.times)
    times["matmul"] = times["matmul"] / matmul_speedup
    times["softmax"] = times["softmax"] / softmax_speedup
    return LatencyBreakdown(model_name=model_name, times=times)


def normalization_share_growth(model_name: str, seq_len: int = 2048) -> tuple[float, float]:
    """(original, optimized) normalization share -- the Figure 1(b) headline."""
    before = original_breakdown(model_name, seq_len).share("normalization")
    after = optimized_breakdown(model_name, seq_len).share("normalization")
    return before, after
