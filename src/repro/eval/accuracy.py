"""Accuracy evaluation harness (paper Tables I and II).

Runs a model (reference or HAAN-configured) over the synthetic task suite
and reports per-task accuracy, mirroring the lm-eval-harness workflow the
paper uses.  The heavy lifting (task construction, labelling against the
reference model, likelihood scoring) lives in :mod:`repro.eval.tasks`; this
module adds the orchestration used by the Table I / Table II benchmarks:

* :func:`evaluate_original` -- the "Original" rows (free, reuses the
  reference scores computed during labelling);
* :func:`evaluate_configuration` -- calibrate, install a
  :class:`~repro.core.config.HaanConfig` into a fresh copy of the model,
  evaluate every task; and
* :class:`AccuracyReport` -- the per-task accuracy table with helpers to
  compare against the original and format paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.calibration import (
    CalibrationResult,
    apply_haan,
    build_predictor_for_range,
    calibrate_model,
)
from repro.core.config import HaanConfig
from repro.eval.tasks import LabeledTask, build_task_suite, evaluate_task
from repro.llm.datasets import TASK_SHORT_NAMES
from repro.llm.model import TransformerModel


@dataclass
class AccuracyReport:
    """Per-task accuracies of one model configuration."""

    label: str
    model_name: str
    accuracies: Dict[str, float] = field(default_factory=dict)

    def accuracy(self, task_name: str) -> float:
        """Accuracy on one task."""
        return self.accuracies[task_name]

    def mean_accuracy(self) -> float:
        """Mean accuracy over all evaluated tasks."""
        if not self.accuracies:
            return 0.0
        return sum(self.accuracies.values()) / len(self.accuracies)

    def degradation_vs(self, other: "AccuracyReport") -> Dict[str, float]:
        """Per-task accuracy drop relative to another report (positive = worse)."""
        return {
            task: other.accuracies[task] - acc
            for task, acc in self.accuracies.items()
            if task in other.accuracies
        }

    def max_degradation_vs(self, other: "AccuracyReport") -> float:
        """Worst per-task accuracy drop relative to another report."""
        drops = self.degradation_vs(other)
        return max(drops.values()) if drops else 0.0

    def as_row(self, task_order: Optional[Sequence[str]] = None) -> list:
        """Format as a paper-style table row (label followed by accuracies)."""
        tasks = list(task_order) if task_order is not None else sorted(self.accuracies)
        return [self.label] + [f"{self.accuracies[t]:.4f}" for t in tasks]

    @staticmethod
    def header(task_order: Sequence[str]) -> list:
        """Header row matching :meth:`as_row`."""
        return ["method"] + [TASK_SHORT_NAMES.get(t, t) for t in task_order]


def evaluate_original(tasks: Dict[str, LabeledTask], model_name: str) -> AccuracyReport:
    """Accuracy of the reference (un-approximated) model on every task.

    This is free: the reference scores were already computed while the
    tasks were labelled.
    """
    report = AccuracyReport(label="Original", model_name=model_name)
    for name, task in tasks.items():
        report.accuracies[name] = task.reference_accuracy()
    return report


def evaluate_model_on_suite(
    model: TransformerModel,
    tasks: Dict[str, LabeledTask],
    label: str,
    max_seq_len: int = 48,
) -> AccuracyReport:
    """Accuracy of an arbitrary model on an existing labeled suite."""
    report = AccuracyReport(label=label, model_name=model.config.name)
    for name, task in tasks.items():
        report.accuracies[name] = evaluate_task(model, task, max_seq_len=max_seq_len)
    return report


def evaluate_configuration(
    model_name: str,
    haan_config: HaanConfig,
    tasks: Dict[str, LabeledTask],
    calibration: CalibrationResult,
    label: Optional[str] = None,
    max_seq_len: int = 48,
    **model_overrides,
) -> AccuracyReport:
    """Accuracy of one HAAN configuration.

    A fresh model is built (same deterministic weights), the HAAN layers are
    installed according to ``haan_config`` using the provided calibration,
    and the suite is evaluated.
    """
    model = TransformerModel.from_name(model_name, **model_overrides)
    predictor = None
    if haan_config.skipping_enabled:
        if haan_config.skip_range == calibration.skip_range:
            predictor = calibration.predictor
        else:
            predictor = build_predictor_for_range(calibration.profile, haan_config.skip_range)
    apply_haan(model, haan_config, predictor=predictor)
    return evaluate_model_on_suite(
        model,
        tasks,
        label=label or f"HAAN({haan_config.data_format.value})",
        max_seq_len=max_seq_len,
    )


def prepare_model_evaluation(
    model_name: str,
    num_items: int = 40,
    max_seq_len: int = 48,
    task_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    calibration_texts_count: int = 24,
    **model_overrides,
):
    """Build the reference model, labeled task suite and calibration result.

    Returns ``(reference_model, tasks, calibration)`` -- the three inputs
    every accuracy experiment needs.  The calibration uses the synthetic
    Wikitext stand-in, mirroring the paper's 100-sample Wikitext pass (the
    count is reduced by default to keep CPU runtimes reasonable; it is
    configurable through ``calibration_texts_count``).
    """
    from repro.core.calibration import CalibrationSettings
    from repro.llm.datasets import calibration_texts

    reference = TransformerModel.from_name(model_name, **model_overrides)
    tasks = build_task_suite(
        reference,
        num_items=num_items,
        max_seq_len=max_seq_len,
        tasks=task_names,
        seed=seed,
    )
    settings = CalibrationSettings(num_samples=calibration_texts_count)
    texts = calibration_texts(calibration_texts_count)
    calibration = calibrate_model(reference, texts=texts, settings=settings)
    return reference, tasks, calibration
