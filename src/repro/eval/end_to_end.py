"""End-to-end speedup estimate (paper Section V-B.2).

The paper reports that attaching HAAN to an FPGA spatial LLM accelerator
(the system of Chen et al. [41], evaluated on GPT-2 355M / 24 layers at
input lengths 128/256/512) yields an average end-to-end speedup of about
1.11x.  The end-to-end gain is an Amdahl's-law consequence: only the
normalization share of the total runtime is accelerated.

Model: take the normalization share ``f`` of the end-to-end runtime from
the latency-breakdown model, take the normalization-only speedup ``s`` of
HAAN over the host accelerator's own normalization path (modelled as the
DFX-style sequential vector engine, the common design in FPGA LLM
overlays), and report ``1 / ((1 - f) + f / s)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.config import HaanConfig
from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.baselines.dfx import DfxBaseline
from repro.hardware.configs import HAAN_V1, AcceleratorConfig
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import get_model_config

#: Normalization share of end-to-end runtime on the host FPGA accelerator.
#: Chen et al. report non-linear operators taking a noticeably smaller share
#: on their spatial dataflow design than on a GPU; we use the GPT-2 GPU
#: share as the upper bound and scale it by the fraction they attribute to
#: normalization-like operators.
DEFAULT_NORMALIZATION_SHARE = 0.13


@dataclass(frozen=True)
class EndToEndResult:
    """End-to-end speedup at one input length."""

    seq_len: int
    normalization_share: float
    normalization_speedup: float
    end_to_end_speedup: float


def amdahl_speedup(fraction: float, speedup: float) -> float:
    """Overall speedup when only ``fraction`` of the runtime is accelerated."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return 1.0 / ((1.0 - fraction) + fraction / speedup)


def normalization_speedup(
    model_name: str,
    seq_len: int,
    haan_config: HaanConfig,
    accelerator_config: AcceleratorConfig = HAAN_V1,
) -> float:
    """HAAN's speedup over the host accelerator's normalization engine."""
    model_config = get_model_config(model_name)
    workload = NormalizationWorkload.from_model(model_config, seq_len=seq_len, haan_config=haan_config)
    haan = HaanAccelerator(accelerator_config).workload_latency(workload)
    host = DfxBaseline().workload_latency(workload)
    return host.latency_seconds / haan.latency_seconds


def end_to_end_speedup(
    model_name: str = "gpt2-355m",
    seq_lens: Sequence[int] = (128, 256, 512),
    haan_config: HaanConfig | None = None,
    normalization_share: float = DEFAULT_NORMALIZATION_SHARE,
    accelerator_config: AcceleratorConfig = HAAN_V1,
) -> Dict[int, EndToEndResult]:
    """End-to-end speedup of attaching HAAN to the host accelerator.

    Returns one :class:`EndToEndResult` per input length; the paper's quoted
    number is the average of the per-length speedups.
    """
    if haan_config is None:
        model_config = get_model_config(model_name)
        # Half-length subsampling and a ten-layer skip in the deep half of
        # the network -- the GPT-2 setting of Section V-B.
        num_norms = model_config.num_norm_layers
        haan_config = HaanConfig(
            skip_range=(num_norms - 11, num_norms - 1),
            subsample_length=model_config.hidden_size // 2,
        )
    results = {}
    for seq_len in seq_lens:
        speedup = normalization_speedup(model_name, seq_len, haan_config, accelerator_config)
        results[seq_len] = EndToEndResult(
            seq_len=seq_len,
            normalization_share=normalization_share,
            normalization_speedup=speedup,
            end_to_end_speedup=amdahl_speedup(normalization_share, speedup),
        )
    return results


def average_end_to_end_speedup(results: Dict[int, EndToEndResult]) -> float:
    """Average of the per-length end-to-end speedups (the paper's headline)."""
    if not results:
        return 1.0
    return sum(r.end_to_end_speedup for r in results.values()) / len(results)
