"""Perplexity evaluation.

Section III-C: "Empirically, a minimal N_sub is chosen to maintain a
negligible impact on perplexity (PPL)."  This module measures perplexity on
the held-out synthetic corpus so the subsample-length selection experiment
can reproduce that trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.llm.datasets import perplexity_texts
from repro.llm.model import TransformerModel


@dataclass
class PerplexityResult:
    """Perplexity of one model over one corpus."""

    label: str
    perplexity: float
    total_tokens: int
    mean_nll: float


def sequence_nll(model: TransformerModel, token_ids: Sequence[int]) -> tuple[float, int]:
    """Total negative log-likelihood and token count of one sequence."""
    ids = np.asarray(token_ids, dtype=np.int64)
    if ids.size < 2:
        return 0.0, 0
    loglik = model.sequence_log_likelihood(ids, score_from=1)
    return -loglik, int(ids.size - 1)


def evaluate_perplexity(
    model: TransformerModel,
    texts: Optional[Sequence[str]] = None,
    max_seq_len: int = 48,
    label: str = "model",
) -> PerplexityResult:
    """Perplexity of a model over a list of documents."""
    if texts is None:
        texts = perplexity_texts()
    total_nll = 0.0
    total_tokens = 0
    for text in texts:
        ids = model.tokenizer.encode(text, add_bos=True, max_len=max_seq_len)
        nll, count = sequence_nll(model, ids)
        total_nll += nll
        total_tokens += count
    mean_nll = total_nll / total_tokens if total_tokens else float("inf")
    return PerplexityResult(
        label=label,
        perplexity=float(np.exp(mean_nll)),
        total_tokens=total_tokens,
        mean_nll=float(mean_nll),
    )


def perplexity_delta(reference: PerplexityResult, candidate: PerplexityResult) -> float:
    """Relative perplexity increase of ``candidate`` over ``reference``."""
    if reference.perplexity == 0:
        return 0.0
    return (candidate.perplexity - reference.perplexity) / reference.perplexity


def subsample_sweep_nsubs(hidden_size: int, fractions: Sequence[float] = (0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0)) -> List[int]:
    """Candidate ``N_sub`` values (as absolute lengths) for the PPL sweep."""
    return sorted({max(1, int(round(hidden_size * f))) for f in fractions})
