"""Command-line entry point: run any paper experiment from the shell.

Installed as the ``haan-experiments`` console script::

    haan-experiments --list
    haan-experiments fig2
    haan-experiments table1 --items 20
    haan-experiments all --items 20

The CLI is a thin wrapper over :mod:`repro.eval.experiments`; the benchmark
suite under ``benchmarks/`` uses the same registry, so numbers printed here
match the recorded EXPERIMENTS.md results (up to the size knobs).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.eval.experiments import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``haan-experiments`` command."""
    parser = argparse.ArgumentParser(
        prog="haan-experiments",
        description="Run the HAAN reproduction experiments (one per paper table/figure).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (see --list), or 'all' to run everything",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--items",
        type=int,
        default=None,
        help="number of items per task for the accuracy experiments (default 40)",
    )
    parser.add_argument(
        "--seq-lens",
        type=str,
        default=None,
        help="comma-separated sequence lengths for the latency sweeps (e.g. 128,256)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend for the norm-executing experiments "
        "(serving, engine, api); see repro.engine.registry (default: vectorized)",
    )
    return parser


def _experiment_kwargs(experiment_id: str, args: argparse.Namespace) -> dict:
    """Translate CLI flags into keyword arguments of one experiment."""
    kwargs: dict = {}
    if args.items is not None and experiment_id in ("table1", "table2"):
        kwargs["num_items"] = args.items
    if args.seq_lens is not None and experiment_id in ("fig8b", "fig9", "end_to_end"):
        kwargs["seq_lens"] = tuple(int(s) for s in args.seq_lens.split(",") if s)
    if args.backend is not None:
        if experiment_id in ("serving", "api"):
            kwargs["backend"] = args.backend
        elif experiment_id == "engine":
            kwargs["backends"] = [args.backend]
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.engine.registry import requires_connection, validate_backend_name

        try:
            # The registry owns the "unknown backend" message (it lists the
            # registered names); validate up front for a clean exit code.
            # A name check, not an instantiation: connection-requiring
            # backends (remote) cannot be built without an address -- and
            # the experiments have no server to dial, so reject them too.
            validate_backend_name(args.backend)
            if requires_connection(args.backend):
                raise ValueError(
                    f"backend {args.backend!r} needs its own connection "
                    f"configuration and cannot run in the experiment sweeps"
                )
        except ValueError as error:
            print(f"haan-experiments: {error}", file=sys.stderr)
            return 2

    if args.list or args.experiment is None:
        print("Available experiments:")
        for experiment_id in available_experiments():
            print(f"  {experiment_id}")
        return 0

    if args.experiment == "all":
        experiment_ids = available_experiments()
    else:
        experiment_ids = [args.experiment]

    for experiment_id in experiment_ids:
        # perf_counter, not time.time(): durations measured on the wall
        # clock jump with NTP steps and DST shifts; the monotonic counter
        # cannot go backwards.
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id, **_experiment_kwargs(experiment_id, args))
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        print(result.formatted())
        print(f"(completed in {elapsed:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
