"""Synthetic downstream tasks and likelihood-based scoring.

The paper evaluates accuracy on PIQA, WinoGrande, HellaSwag, ARC-Easy and
ARC-Challenge through the lm-eval-harness: each item is a context plus
candidate continuations, the model picks the continuation with the highest
(length-normalised) log-likelihood, and accuracy is the fraction of items
where that pick matches the gold label.

Offline we cannot use those datasets, so each task is synthesised in a way
that preserves what the experiment actually measures -- *whether HAAN's
approximate normalization flips the model's likelihood ranking*:

1. raw items (context + choices) come from the deterministic corpus
   generator in :mod:`repro.llm.datasets`;
2. the *reference* (un-approximated) model scores every choice;
3. the gold label of each item is set to the reference model's top choice
   with probability equal to the paper's reported "Original" accuracy for
   that model/task, and to a different choice otherwise.

By construction the Original model then reproduces the paper's accuracy in
expectation, and any configuration that perturbs the model's scores (HAAN
with various skip ranges, subsample lengths, formats) loses exactly the
items whose ranking it flips -- the same signal Tables I and II report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.llm.datasets import (
    TASK_SHORT_NAMES,
    available_tasks,
    generate_choice_items,
)
from repro.llm.model import TransformerModel

#: "Original" accuracies reported in Table I, per model and task.  These set
#: the gold-label agreement rate of the synthetic tasks.
PAPER_ORIGINAL_ACCURACY: Dict[str, Dict[str, float]] = {
    "llama-7b": {
        "winogrande": 0.7017,
        "piqa": 0.7867,
        "hellaswag": 0.5694,
        "arc_easy": 0.7517,
        "arc_challenge": 0.4198,
    },
    "opt-2.7b": {
        "winogrande": 0.6093,
        "piqa": 0.7367,
        "hellaswag": 0.4581,
        "arc_easy": 0.6073,
        "arc_challenge": 0.2696,
    },
    "gpt2-1.5b": {
        "winogrande": 0.5833,
        "piqa": 0.7084,
        "hellaswag": 0.4004,
        "arc_easy": 0.5829,
        "arc_challenge": 0.2500,
    },
}

#: Fallback agreement rate for models without a Table I row (e.g. "tiny").
DEFAULT_TARGET_ACCURACY = 0.65


@dataclass
class LabeledItem:
    """A tokenized multiple-choice item with its gold label."""

    prefix_ids: List[int]
    choice_ids: List[List[int]]
    gold_index: int
    reference_scores: np.ndarray


@dataclass
class LabeledTask:
    """A fully prepared synthetic task for one model."""

    task_name: str
    model_name: str
    items: List[LabeledItem] = field(default_factory=list)
    target_accuracy: float = DEFAULT_TARGET_ACCURACY

    @property
    def short_name(self) -> str:
        """The paper's column label for this task (WG, PQ, HS, A-e, A-c)."""
        return TASK_SHORT_NAMES.get(self.task_name, self.task_name)

    @property
    def num_items(self) -> int:
        return len(self.items)

    def reference_accuracy(self) -> float:
        """Accuracy of the reference model (free: uses the stored scores)."""
        if not self.items:
            return 0.0
        hits = sum(
            1 for item in self.items if int(np.argmax(item.reference_scores)) == item.gold_index
        )
        return hits / len(self.items)


def target_accuracy_for(model_name: str, task_name: str) -> float:
    """The paper's Original accuracy for a model/task pair (with fallback)."""
    return PAPER_ORIGINAL_ACCURACY.get(model_name, {}).get(task_name, DEFAULT_TARGET_ACCURACY)


def score_choices(
    model: TransformerModel,
    prefix_ids: Sequence[int],
    choice_ids: Sequence[Sequence[int]],
    max_seq_len: int,
) -> np.ndarray:
    """Length-normalised log-likelihood of each choice given the prefix."""
    prefix = list(prefix_ids)
    longest = max(len(c) for c in choice_ids)
    if len(prefix) + longest > max_seq_len:
        # Trim the prefix from the left; the continuations must survive.
        overflow = len(prefix) + longest - max_seq_len
        prefix = prefix[overflow:] if overflow < len(prefix) else prefix[-1:]
    return model.score_continuations(prefix, choice_ids, normalize_by_length=True)


def build_labeled_task(
    reference_model: TransformerModel,
    task_name: str,
    num_items: int = 40,
    max_seq_len: int = 48,
    target_accuracy: Optional[float] = None,
    seed: int = 0,
) -> LabeledTask:
    """Generate, score and label a synthetic task against a reference model."""
    if task_name not in available_tasks():
        raise KeyError(f"unknown task {task_name!r}")
    model_name = reference_model.config.name
    if target_accuracy is None:
        target_accuracy = target_accuracy_for(model_name, task_name)
    raw_items = generate_choice_items(task_name, num_items, seed_offset=seed)
    rng = np.random.default_rng(hash((task_name, model_name, seed)) % (2**31))
    tokenizer = reference_model.tokenizer

    labeled = LabeledTask(task_name=task_name, model_name=model_name, target_accuracy=target_accuracy)
    for item in raw_items:
        prefix_ids = tokenizer.encode(item.context, add_bos=True, max_len=max_seq_len // 2)
        choice_ids = [
            tokenizer.encode(choice, add_bos=False, max_len=max_seq_len // 3)
            for choice in item.choices
        ]
        choice_ids = [ids if ids else [tokenizer.unk_id] for ids in choice_ids]
        scores = score_choices(reference_model, prefix_ids, choice_ids, max_seq_len)
        best = int(np.argmax(scores))
        if rng.random() < target_accuracy:
            gold = best
        else:
            others = [i for i in range(len(choice_ids)) if i != best]
            gold = int(rng.choice(others))
        labeled.items.append(
            LabeledItem(
                prefix_ids=prefix_ids,
                choice_ids=choice_ids,
                gold_index=gold,
                reference_scores=scores,
            )
        )
    return labeled


def evaluate_task(
    model: TransformerModel,
    task: LabeledTask,
    max_seq_len: int = 48,
) -> float:
    """Accuracy of ``model`` on a labeled task (lm-eval style argmax pick)."""
    if not task.items:
        return 0.0
    hits = 0
    for item in task.items:
        scores = score_choices(model, item.prefix_ids, item.choice_ids, max_seq_len)
        if int(np.argmax(scores)) == item.gold_index:
            hits += 1
    return hits / len(task.items)


def build_task_suite(
    reference_model: TransformerModel,
    num_items: int = 40,
    max_seq_len: int = 48,
    tasks: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Dict[str, LabeledTask]:
    """Build the full five-task suite (or a subset) for one model."""
    names = list(tasks) if tasks is not None else available_tasks()
    return {
        name: build_labeled_task(
            reference_model,
            name,
            num_items=num_items,
            max_seq_len=max_seq_len,
            seed=seed,
        )
        for name in names
    }
