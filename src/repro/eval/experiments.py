"""Experiment registry: one callable per table / figure of the paper.

Every experiment of the evaluation section (plus the end-to-end estimate
and the ablations DESIGN.md lists) is expressed as a function returning an
:class:`ExperimentResult` -- a titled table of rows that mirrors what the
paper reports.  The benchmark harnesses under ``benchmarks/`` and the
``haan-experiments`` CLI are thin wrappers over this module, so the same
code path produces the numbers recorded in EXPERIMENTS.md.

Experiments accept size knobs (number of task items, sequence lengths, ...)
so the unit tests can exercise them at a reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import HaanConfig, paper_config_for
from repro.eval.accuracy import (
    AccuracyReport,
    evaluate_configuration,
    evaluate_original,
    prepare_model_evaluation,
)
from repro.eval.end_to_end import average_end_to_end_speedup, end_to_end_speedup
from repro.eval.latency_breakdown import (
    normalization_share_growth,
    optimized_breakdown,
    original_breakdown,
)
from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.baselines import all_baselines
from repro.hardware.configs import HAAN_V1, HAAN_V2, HAAN_V3, TABLE3_CONFIGS
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import get_model_config
from repro.llm.datasets import calibration_texts
from repro.llm.model import TransformerModel
from repro.numerics.quantization import DataFormat
from repro.utils.tables import format_table

TASK_ORDER = ("winogrande", "piqa", "hellaswag", "arc_easy", "arc_challenge")


@dataclass
class ExperimentResult:
    """A titled table of results, mirroring one paper table or figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def formatted(self) -> str:
        """Aligned plain-text rendering of the result table."""
        return format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")

    def row_dict(self, key_column: int = 0) -> Dict[object, List[object]]:
        """Rows keyed by the value in ``key_column`` (for programmatic checks)."""
        return {row[key_column]: row for row in self.rows}


# ---------------------------------------------------------------------------
# Figure 1(b): GPU latency breakdown
# ---------------------------------------------------------------------------

def run_fig1b(seq_len: int = 2048) -> ExperimentResult:
    """Runtime breakdown of GPT-2 and OPT before / after optimization."""
    result = ExperimentResult(
        experiment_id="fig1b",
        title="GPU runtime breakdown (original vs FlashAttention+FP8)",
        headers=["model", "variant", "matmul", "softmax", "normalization", "others"],
    )
    for model_name in ("gpt2-117m", "opt-2.7b"):
        for variant, breakdown in (
            ("original", original_breakdown(model_name, seq_len)),
            ("optimized", optimized_breakdown(model_name, seq_len)),
        ):
            shares = breakdown.shares()
            result.rows.append(
                [model_name, variant]
                + [f"{shares[c] * 100:.1f}%" for c in ("matmul", "softmax", "normalization", "others")]
            )
        before, after = normalization_share_growth(model_name, seq_len)
        result.metadata[f"{model_name}_norm_share"] = (before, after)
    return result


# ---------------------------------------------------------------------------
# Figure 2: ISD profile across layers
# ---------------------------------------------------------------------------

def run_fig2(
    model_name: str = "llama-7b",
    num_documents: int = 12,
    max_seq_len: int = 32,
    **model_overrides,
) -> ExperimentResult:
    """Per-layer log-ISD profile of the LLaMA-7B analogue (Figure 2)."""
    from repro.core.isd import profile_model_isd

    model = TransformerModel.from_name(model_name, **model_overrides)
    texts = calibration_texts(num_documents)
    profile = profile_model_isd(model, texts, max_seq_len=max_seq_len)
    log_isd = profile.mean_log_isd()
    tail_start = int(profile.num_layers * 2 / 3)
    result = ExperimentResult(
        experiment_id="fig2",
        title=f"log(ISD) vs normalization-layer index ({model_name})",
        headers=["layer", "mean log ISD"],
        rows=[[i, f"{value:.4f}"] for i, value in enumerate(log_isd)],
        metadata={
            "num_layers": profile.num_layers,
            "tail_correlation": profile.correlation_with_depth(start=tail_start),
            "overall_decay": float(log_isd[-1] - log_isd[0]),
            "profile": profile,
        },
    )
    return result


# ---------------------------------------------------------------------------
# Table I: accuracy of HAAN vs the original models
# ---------------------------------------------------------------------------

def run_table1(
    models: Sequence[str] = ("llama-7b", "opt-2.7b", "gpt2-1.5b"),
    num_items: int = 25,
    max_seq_len: int = 48,
    task_names: Optional[Sequence[str]] = None,
    calibration_texts_count: int = 24,
    model_overrides: Optional[Dict[str, Dict[str, object]]] = None,
) -> ExperimentResult:
    """Original vs HAAN accuracy on the five downstream tasks (Table I)."""
    task_names = list(task_names) if task_names is not None else list(TASK_ORDER)
    model_overrides = model_overrides or {}
    result = ExperimentResult(
        experiment_id="table1",
        title="Accuracy of HAAN vs the original models",
        headers=["model", "method"] + [t for t in task_names],
    )
    reports: Dict[str, Dict[str, AccuracyReport]] = {}
    for model_name in models:
        overrides = model_overrides.get(model_name, {})
        _, tasks, calibration = prepare_model_evaluation(
            model_name,
            num_items=num_items,
            max_seq_len=max_seq_len,
            task_names=task_names,
            calibration_texts_count=calibration_texts_count,
            **overrides,
        )
        original = evaluate_original(tasks, model_name)
        try:
            haan_config = paper_config_for(model_name)
        except KeyError:
            # Models without a Table I row (e.g. the tiny test configs) use
            # the calibration's own skip range and half-length subsampling.
            haan_config = HaanConfig(
                skip_range=calibration.skip_range,
                subsample_length=get_model_config(model_name, **overrides).hidden_size // 2,
                data_format=DataFormat.FP16,
            )
        haan = evaluate_configuration(
            model_name,
            haan_config,
            tasks,
            calibration,
            label="HAAN",
            max_seq_len=max_seq_len,
            **overrides,
        )
        reports[model_name] = {"original": original, "haan": haan}
        for report in (original, haan):
            result.rows.append(
                [model_name, report.label]
                + [f"{report.accuracies[t]:.4f}" for t in task_names]
            )
    result.metadata["reports"] = reports
    result.metadata["max_degradation"] = max(
        reports[m]["haan"].max_degradation_vs(reports[m]["original"]) for m in reports
    )
    return result


# ---------------------------------------------------------------------------
# Table II: LLaMA-7B ablations (subsample length, data format, skip range)
# ---------------------------------------------------------------------------

def _fractional_skip_range(num_layers: int, start_frac: float, end_frac: float) -> tuple[int, int]:
    """Map a paper skip range (expressed on 64 layers) onto this model's layers."""
    start = int(round(start_frac * (num_layers - 1)))
    end = int(round(end_frac * (num_layers - 1)))
    return (max(0, min(start, num_layers - 2)), max(1, min(end, num_layers - 1)))


def run_table2(
    model_name: str = "llama-7b",
    num_items: int = 25,
    max_seq_len: int = 48,
    task_names: Optional[Sequence[str]] = None,
    calibration_texts_count: int = 24,
    subsample_lengths: Sequence[int] = (128, 256, 512),
    data_formats: Sequence[DataFormat] = (DataFormat.INT8, DataFormat.FP16, DataFormat.FP32),
    skip_ranges: Sequence[tuple[int, int]] = ((10, 20), (30, 40), (50, 60)),
    **model_overrides,
) -> ExperimentResult:
    """LLaMA-7B accuracy across HAAN configurations (Table II)."""
    task_names = list(task_names) if task_names is not None else list(TASK_ORDER)
    _, tasks, calibration = prepare_model_evaluation(
        model_name,
        num_items=num_items,
        max_seq_len=max_seq_len,
        task_names=task_names,
        calibration_texts_count=calibration_texts_count,
        **model_overrides,
    )
    base_config = paper_config_for(model_name)
    num_layers = get_model_config(model_name, **model_overrides).num_norm_layers
    result = ExperimentResult(
        experiment_id="table2",
        title=f"{model_name} accuracy across configurations",
        headers=["method", "config"] + [t for t in task_names],
    )

    def evaluate(config: HaanConfig, group: str, label: str) -> AccuracyReport:
        report = evaluate_configuration(
            model_name,
            config,
            tasks,
            calibration,
            label=f"{group}:{label}",
            max_seq_len=max_seq_len,
            **model_overrides,
        )
        result.rows.append(
            [group, label] + [f"{report.accuracies[t]:.4f}" for t in task_names]
        )
        return report

    reports: Dict[str, AccuracyReport] = {}
    original = evaluate_original(tasks, model_name)
    result.rows.append(
        ["original", "-"] + [f"{original.accuracies[t]:.4f}" for t in task_names]
    )
    reports["original"] = original

    for n_sub in subsample_lengths:
        cfg = base_config.with_overrides(subsample_length=n_sub)
        reports[f"nsub={n_sub}"] = evaluate(cfg, "Subsample length", str(n_sub))
    for fmt in data_formats:
        cfg = base_config.with_overrides(data_format=fmt)
        reports[f"format={fmt.value}"] = evaluate(cfg, "Data format", fmt.value.upper())
    # The paper's skip ranges are quoted against LLaMA-7B's 64 layers; map
    # them proportionally when the analogue has a different layer count.
    for start, end in skip_ranges:
        mapped = _fractional_skip_range(num_layers, start / 63.0, end / 63.0) if num_layers != 64 else (start, end)
        cfg = base_config.with_overrides(skip_range=mapped)
        reports[f"skip=({start},{end})"] = evaluate(cfg, "Skip range", f"({start},{end})")

    result.metadata["reports"] = reports
    result.metadata["calibration_skip_range"] = calibration.skip_range
    return result


# ---------------------------------------------------------------------------
# Table III: FPGA resource and power cost
# ---------------------------------------------------------------------------

def run_table3(
    workload_model: str = "gpt2-1.5b",
    seq_lens: Sequence[int] = (16, 128, 256),
) -> ExperimentResult:
    """Hardware cost of the HAAN accelerator across formats and widths."""
    model_config = get_model_config(workload_model)
    result = ExperimentResult(
        experiment_id="table3",
        title="HAAN accelerator FPGA cost (Alveo U280)",
        headers=["input format", "(p_d, p_n)", "LUT", "FF", "DSP", "Power (W)"],
    )
    estimates = {}
    for config in TABLE3_CONFIGS:
        accelerator = HaanAccelerator(config)
        resources = accelerator.resources()
        # The reduced-p_d builds are meant to run with subsampling that keeps
        # the pipeline balanced (paper Section V-B.1); size N_sub accordingly.
        if config.stats_width < config.norm_width:
            subsample = model_config.hidden_size * config.stats_width // config.norm_width
        else:
            subsample = None
        haan_config = HaanConfig(subsample_length=subsample)
        workload = NormalizationWorkload.from_model(model_config, seq_len=seq_lens[0], haan_config=haan_config)
        power = accelerator.table3_power(workload, seq_lens=tuple(seq_lens))
        row = resources.as_table_row()
        result.rows.append(
            [
                config.data_format.value.upper(),
                f"({config.stats_width}, {config.norm_width})",
                row["LUT"],
                row["FF"],
                row["DSP"],
                f"{power.total_w:.3f}",
            ]
        )
        estimates[config.name] = {"resources": resources, "power": power}
    result.metadata["estimates"] = estimates
    return result


# ---------------------------------------------------------------------------
# Figures 8 and 9: latency / power vs baselines
# ---------------------------------------------------------------------------

def _haan_gpt2_config() -> HaanConfig:
    """GPT-2 HAAN setting of Section V-B: 10 skipped layers, half-length subsample."""
    gpt2 = get_model_config("gpt2-1.5b")
    num_norms = gpt2.num_norm_layers
    return HaanConfig(
        skip_range=(num_norms - 12, num_norms - 2),
        subsample_length=gpt2.hidden_size // 2,
        data_format=DataFormat.FP16,
    ).with_overrides(skip_range=(num_norms - 12, num_norms - 2))


def run_fig8a(seq_len: int = 128) -> ExperimentResult:
    """Normalized power of HAAN vs SOLE / DFX / MHAA on GPT-2 (Figure 8(a))."""
    gpt2 = get_model_config("gpt2-1.5b")
    haan_config = _haan_gpt2_config()
    workload = NormalizationWorkload.from_model(gpt2, seq_len=seq_len, haan_config=haan_config)
    v1 = HaanAccelerator(HAAN_V1)
    v2 = HaanAccelerator(HAAN_V2)
    v1_power = v1.power(workload).total_w
    rows = [
        ["HAAN-v1", f"{v1_power:.3f}", "1.00x"],
        ["HAAN-v2", f"{v2.power(workload).total_w:.3f}", f"{v2.power(workload).total_w / v1_power:.2f}x"],
    ]
    powers = {"HAAN-v1": v1_power, "HAAN-v2": v2.power(workload).total_w}
    for name, baseline in all_baselines().items():
        if name == "GPU":
            continue  # the paper's power figure compares accelerators only
        watts = baseline.power_watts(workload)
        powers[name] = watts
        rows.append([name, f"{watts:.3f}", f"{watts / v1_power:.2f}x"])
    return ExperimentResult(
        experiment_id="fig8a",
        title="Normalized power, GPT-2 normalization layers",
        headers=["design", "power (W)", "normalized"],
        rows=rows,
        metadata={"powers": powers, "dfx_reduction": 1.0 - v1_power / powers["DFX"]},
    )


def _latency_comparison(
    model_name: str,
    haan_config: HaanConfig,
    haan_configs,
    seq_lens: Sequence[int],
    experiment_id: str,
    title: str,
) -> ExperimentResult:
    """Shared implementation of the Figure 8(b) / Figure 9 latency sweeps."""
    model_config = get_model_config(model_name)
    baselines = all_baselines()
    headers = ["design"] + [f"seq={s}" for s in seq_lens]
    rows = []
    ratios: Dict[str, Dict[int, float]] = {}
    reference_latencies: Dict[int, float] = {}
    reference = HaanAccelerator(haan_configs[0])
    for seq in seq_lens:
        workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
        reference_latencies[seq] = reference.workload_latency(workload).latency_seconds
    for accel_config in haan_configs:
        accelerator = HaanAccelerator(accel_config)
        label = accel_config.name.upper().replace("HAAN", "HAAN")
        per_seq = {}
        for seq in seq_lens:
            workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
            latency = accelerator.workload_latency(workload).latency_seconds
            per_seq[seq] = latency / reference_latencies[seq]
        ratios[accel_config.name] = per_seq
        rows.append([accel_config.name] + [f"{per_seq[s]:.2f}x" for s in seq_lens])
    for name, baseline in baselines.items():
        per_seq = {}
        for seq in seq_lens:
            workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
            latency = baseline.workload_latency(workload).latency_seconds
            per_seq[seq] = latency / reference_latencies[seq]
        ratios[name] = per_seq
        rows.append([name] + [f"{per_seq[s]:.2f}x" for s in seq_lens])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        metadata={"ratios": ratios, "reference_latencies_s": reference_latencies},
    )


def run_fig8b(seq_lens: Sequence[int] = (128, 256, 512, 1024)) -> ExperimentResult:
    """Normalized latency on OPT-2.7B: HAAN-v1/v3 vs baselines (Figure 8(b))."""
    return _latency_comparison(
        model_name="opt-2.7b",
        haan_config=paper_config_for("opt-2.7b"),
        haan_configs=(HAAN_V1, HAAN_V3),
        seq_lens=seq_lens,
        experiment_id="fig8b",
        title="Normalized latency, OPT-2.7B normalization layers",
    )


def run_fig9(seq_lens: Sequence[int] = (128, 256, 512, 1024)) -> ExperimentResult:
    """Normalized latency on GPT2-1.5B: HAAN-v1/v2 vs baselines (Figure 9)."""
    return _latency_comparison(
        model_name="gpt2-1.5b",
        haan_config=_haan_gpt2_config(),
        haan_configs=(HAAN_V1, HAAN_V2),
        seq_lens=seq_lens,
        experiment_id="fig9",
        title="Normalized latency, GPT2-1.5B normalization layers",
    )


# ---------------------------------------------------------------------------
# End-to-end speedup
# ---------------------------------------------------------------------------

def run_end_to_end(seq_lens: Sequence[int] = (128, 256, 512)) -> ExperimentResult:
    """End-to-end speedup of HAAN on the GPT-2 355M host accelerator."""
    results = end_to_end_speedup(seq_lens=seq_lens)
    rows = [
        [seq, f"{r.normalization_share:.3f}", f"{r.normalization_speedup:.2f}x", f"{r.end_to_end_speedup:.3f}x"]
        for seq, r in sorted(results.items())
    ]
    return ExperimentResult(
        experiment_id="end_to_end",
        title="End-to-end speedup on GPT-2 355M (FPGA host accelerator)",
        headers=["seq len", "norm share", "norm speedup", "end-to-end speedup"],
        rows=rows,
        metadata={"average": average_end_to_end_speedup(results), "results": results},
    )


# ---------------------------------------------------------------------------
# Ablations beyond the paper's tables
# ---------------------------------------------------------------------------

def run_invsqrt_ablation(newton_iterations: Sequence[int] = (0, 1, 2, 3)) -> ExperimentResult:
    """Accuracy of the fast inverse square root vs Newton iteration count."""
    from repro.numerics.fast_inv_sqrt import fast_inv_sqrt

    rng = np.random.default_rng(7)
    variances = np.concatenate([
        rng.uniform(1e-4, 1.0, size=4000),
        rng.uniform(1.0, 1e4, size=4000),
    ])
    exact = 1.0 / np.sqrt(variances)
    rows = []
    errors = {}
    for iterations in newton_iterations:
        approx = fast_inv_sqrt(variances, newton_iterations=iterations)
        rel = np.abs(approx - exact) / exact
        errors[iterations] = (float(np.max(rel)), float(np.mean(rel)))
        rows.append([iterations, f"{np.max(rel) * 100:.4f}%", f"{np.mean(rel) * 100:.5f}%"])
    return ExperimentResult(
        experiment_id="ablation_invsqrt",
        title="Fast inverse square root error vs Newton iterations",
        headers=["newton iterations", "max rel error", "mean rel error"],
        rows=rows,
        metadata={"errors": errors},
    )


def run_pipeline_balance_ablation(
    model_name: str = "gpt2-1.5b",
    seq_len: int = 128,
    widths: Sequence[tuple[int, int]] = ((128, 128), (80, 160), (64, 128), (32, 128), (256, 128)),
) -> ExperimentResult:
    """Latency / power / balance across (p_d, p_n) choices (design ablation)."""
    from repro.hardware.configs import AcceleratorConfig

    model_config = get_model_config(model_name)
    haan_config = _haan_gpt2_config() if model_name == "gpt2-1.5b" else paper_config_for(model_name)
    workload = NormalizationWorkload.from_model(model_config, seq_len=seq_len, haan_config=haan_config)
    rows = []
    details = {}
    for stats_width, norm_width in widths:
        config = AcceleratorConfig(
            name=f"pd{stats_width}-pn{norm_width}", stats_width=stats_width, norm_width=norm_width
        )
        accelerator = HaanAccelerator(config)
        latency = accelerator.workload_latency(workload)
        power = accelerator.power(workload)
        schedule = accelerator.layer_schedule(workload)
        rows.append(
            [
                f"({stats_width}, {norm_width})",
                f"{latency.latency_us:.1f}",
                f"{power.total_w:.2f}",
                schedule.bottleneck_stage,
                f"{schedule.balance():.2f}",
            ]
        )
        details[(stats_width, norm_width)] = {
            "latency_us": latency.latency_us,
            "power_w": power.total_w,
            "balance": schedule.balance(),
        }
    return ExperimentResult(
        experiment_id="ablation_pipeline",
        title=f"Pipeline balance across (p_d, p_n), {model_name}",
        headers=["(p_d, p_n)", "latency (us)", "power (W)", "bottleneck", "balance"],
        rows=rows,
        metadata={"details": details},
    )


def run_engine_backends(
    hidden: int = 96,
    rows_per_request: int = 8,
    requests: int = 6,
    seed: int = 0,
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Cross-backend sweep of the normalization execution engine.

    Iterates the **registered** local backends of
    :mod:`repro.engine.registry` (never a hand-rolled if/else over known
    names, so a newly registered backend automatically joins the sweep --
    including the costed baseline variants ``simulated-sole`` /
    ``simulated-dfx`` / ``simulated-mhaa``; connection-requiring backends
    like ``remote`` are excluded because the sweep has no server to dial)
    over a computed and a skipped HAAN configuration compiled from one
    :class:`~repro.engine.spec` description each.  Reports per-backend
    wall-clock, the exact maximum deviation from the ``reference`` backend
    (the golden contract demands 0), and -- for backends that emit cost
    records -- the modelled cycles, energy and per-stage latency breakdown
    of the accelerator.
    """
    import time as _time

    from repro.core.haan_norm import HaanNormalization
    from repro.core.predictor import IsdPredictor
    from repro.core.subsampling import SubsampleSettings
    from repro.engine.registry import local_backends
    from repro.llm.normalization import LayerNorm

    backend_names = list(backends) if backends is not None else local_backends()
    rng = np.random.default_rng(seed)
    base = LayerNorm(hidden_size=hidden, layer_index=3, name="engine.bench")
    base.load_affine(rng.normal(1.0, 0.1, hidden), rng.normal(0.0, 0.1, hidden))
    predictor = IsdPredictor(anchor_layer=1, last_layer=5, decay=-0.05, anchor_log_isd=0.2)
    computed = HaanNormalization(
        base, subsample=SubsampleSettings(length=max(1, hidden // 4)), data_format=DataFormat.INT8
    )
    skipped = HaanNormalization(
        computed.base, predictor=predictor, data_format=DataFormat.FP16
    )
    payloads = [rng.normal(size=(rows_per_request, hidden)) for _ in range(requests)]
    stacked = np.concatenate(payloads, axis=0)
    starts = np.cumsum([0] + [rows_per_request] * (requests - 1))
    anchor = rng.uniform(0.5, 2.0, stacked.shape[0])

    result = ExperimentResult(
        experiment_id="engine",
        title="Normalization engine backends: wall clock, equivalence, hardware cost",
        headers=["backend", "config", "wall (us)", "max |d| vs reference", "cycles", "energy (nJ)"],
    )
    details: Dict[str, Dict[str, object]] = {}
    golden: Dict[str, np.ndarray] = {}
    for label, layer, anchor_isd in (("computed", computed, None), ("skipped", skipped, anchor)):
        # engine_for compiles the layer's plan (spec + its real affine
        # parameters), so the sweep exercises the full gamma/beta path.
        golden[label] = layer.engine_for("reference").run(stacked, starts, anchor_isd)[0]
    for name in backend_names:
        for label, layer, anchor_isd in (
            ("computed", computed, None),
            ("skipped", skipped, anchor),
        ):
            engine = layer.engine_for(name)
            times = []
            output = None
            for _ in range(max(1, repeats) + 1):  # first run is warmup
                start = _time.perf_counter()
                output, _, _ = engine.run(stacked, starts, anchor_isd)
                times.append(_time.perf_counter() - start)
            deviation = float(np.max(np.abs(output - golden[label]))) if output.size else 0.0
            record = getattr(engine.backend, "last_record", None)
            result.rows.append(
                [
                    name,
                    label,
                    f"{min(times[1:]) * 1e6:.1f}",
                    f"{deviation:.1e}",
                    "-" if record is None else str(record.total_cycles),
                    "-" if record is None else f"{record.energy_nj:.1f}",
                ]
            )
            details[f"{name}:{label}"] = {
                "wall_seconds": min(times[1:]),
                "max_abs_deviation": deviation,
                "cost_record": record,
                "stage_shares": None if record is None else record.stage_shares(),
            }
    result.metadata["details"] = details
    result.metadata["backends"] = backend_names
    return result


def run_serving_throughput(
    model_name: str = "tiny",
    batch_sizes: Sequence[int] = (1, 8, 32, 128),
    rows_per_request: int = 1,
    requests: int = 256,
    repeats: int = 3,
    seed: int = 0,
    dataset: str = "default",
    backend: str = "vectorized",
    loader=None,
) -> ExperimentResult:
    """Requests/sec of the micro-batched serving path vs a per-request loop.

    Backs ``benchmarks/bench_serving_throughput.py`` and the ``haan-serve``
    CLI's ``--compare-loop`` report.  The batched side runs through the full
    inline :class:`~repro.serving.service.NormalizationService` (queueing,
    coalescing, response splitting), so the speedup is end-to-end.
    """
    from repro.serving.throughput import measure_serving_throughput

    points = measure_serving_throughput(
        model=model_name,
        batch_sizes=batch_sizes,
        rows_per_request=rows_per_request,
        requests=requests,
        repeats=repeats,
        seed=seed,
        dataset=dataset,
        backend=backend,
        loader=loader,
    )
    rows = [
        [
            point.batch_size,
            f"{point.loop_rps:.0f}",
            f"{point.batched_rps:.0f}",
            f"{point.speedup:.2f}x",
        ]
        for point in points
    ]
    return ExperimentResult(
        experiment_id="serving",
        title=f"Serving throughput, micro-batched vs per-request loop ({model_name})",
        headers=["max batch", "loop req/s", "batched req/s", "speedup"],
        rows=rows,
        metadata={
            "points": points,
            "speedup_by_batch": {point.batch_size: point.speedup for point in points},
        },
    )


def run_api_roundtrip(
    model_name: str = "tiny",
    layer_index: int = 0,
    requests: int = 4,
    rows_per_request: int = 2,
    seed: int = 0,
    backend: str = "vectorized",
    dataset: str = "default",
    loader=None,
) -> ExperimentResult:
    """Transport parity of the public API: every wire path vs direct.

    Every consumer enters the system through
    :class:`~repro.api.client.NormClient`; this experiment proves the
    transports and framings are interchangeable by running the same
    payloads through

    * the service directly (the golden path),
    * ``NormClient`` over :class:`InProcessTransport`,
    * ``NormClient`` over :class:`SocketTransport` against a live
      :class:`~repro.api.server.NormServer` -- lock-step with v3 binary
      frames (the default) and with legacy base64 JSON frames, pipelined
      (depth 8, many requests in flight on one connection), and bulk (all
      payloads in one ``normalize_bulk`` frame),
    * ``NormClient`` over the same-host
      :class:`~repro.api.shm.SharedMemoryTransport` (tensor buffers in
      shared-memory slabs, control frames on the socket),

    and reporting per-path wall clock plus the exact maximum deviation
    from the direct path (the contract demands 0 for all of them).
    """
    import time as _time

    from repro.api.client import NormClient
    from repro.api.server import NormServer
    from repro.serving.registry import CalibrationRegistry
    from repro.serving.service import NormalizationService

    registry = CalibrationRegistry(loader=loader)
    rng = np.random.default_rng(seed)
    artifact = registry.get(model_name, dataset)
    hidden = artifact.hidden_size
    payloads = [
        rng.normal(0.0, 1.0, size=(rows_per_request, hidden)) for _ in range(requests)
    ]

    def _run_direct():
        with NormalizationService(registry=registry, threaded=False) as service:
            return [
                service.normalize(
                    payload,
                    model_name,
                    layer_index=layer_index,
                    dataset=dataset,
                    backend=backend,
                ).output
                for payload in payloads
            ]

    def _run_client(client: NormClient, encoding=None):
        return [
            client.normalize(
                payload,
                model_name,
                layer_index=layer_index,
                dataset=dataset,
                backend=backend,
                encoding=encoding,
            ).output
            for payload in payloads
        ]

    start = _time.perf_counter()
    golden = _run_direct()
    direct_seconds = _time.perf_counter() - start

    start = _time.perf_counter()
    with NormClient.in_process(registry=registry) as client:
        in_process = _run_client(client)
    in_process_seconds = _time.perf_counter() - start

    shared = dict(layer_index=layer_index, dataset=dataset, backend=backend)
    outputs = {}
    timings = {"direct": direct_seconds, "in-process": in_process_seconds}
    with NormalizationService(registry=registry) as service:
        with NormServer(service) as server:
            # Time only the request span on every socket path (connect +
            # hello handshake excluded), so the rows compare like for like.
            with NormClient.connect(server.host, server.port) as client:
                client.wait_until_ready()
                # Default encoding: zero-copy v3 binary frames.
                start = _time.perf_counter()
                outputs["socket-binary"] = _run_client(client)
                timings["socket-binary"] = _time.perf_counter() - start

                # Legacy framing, same connection: base64 JSON frames.
                start = _time.perf_counter()
                outputs["socket-base64"] = _run_client(client, encoding="base64")
                timings["socket-base64"] = _time.perf_counter() - start

            # Same-host shared memory: tensors through slabs, frames on TCP.
            with NormClient.connect(server.host, server.port, transport="shm") as client:
                client.wait_until_ready()
                start = _time.perf_counter()
                outputs["shm"] = _run_client(client)
                timings["shm"] = _time.perf_counter() - start

            with NormClient.connect(server.host, server.port) as client:
                client.wait_until_ready()
                start = _time.perf_counter()
                outputs["socket-pipelined"] = [
                    result.output
                    for result in client.normalize_many(
                        payloads, model_name, depth=8, **shared
                    )
                ]
                timings["socket-pipelined"] = _time.perf_counter() - start

                start = _time.perf_counter()
                outputs["socket-bulk"] = [
                    result.output
                    for result in client.normalize_bulk(payloads, model_name, **shared)
                ]
                timings["socket-bulk"] = _time.perf_counter() - start

    def _deviation(results) -> float:
        return max(
            float(np.max(np.abs(out - ref))) if out.size else 0.0
            for out, ref in zip(results, golden)
        )

    deviations = {"direct": 0.0, "in-process": _deviation(in_process)}
    deviations.update({name: _deviation(results) for name, results in outputs.items()})
    order = (
        "direct",
        "in-process",
        "socket-binary",
        "socket-base64",
        "shm",
        "socket-pipelined",
        "socket-bulk",
    )
    result = ExperimentResult(
        experiment_id="api",
        title=f"Public API transport parity ({model_name}, backend {backend})",
        headers=["transport", "requests", "wall (ms)", "max |d| vs direct"],
        rows=[
            [name, requests, f"{timings[name] * 1e3:.1f}", f"{deviations[name]:.1e}"]
            for name in order
        ],
        metadata={"deviations": deviations, "timings": timings, "backend": backend},
    )
    return result


def run_fleet_parity(
    model_name: str = "tiny",
    layer_index: int = 0,
    requests: int = 8,
    rows_per_request: int = 2,
    replicas: int = 2,
    seed: int = 0,
    backend: str = "vectorized",
    dataset: str = "default",
    loader=None,
) -> ExperimentResult:
    """Replica-fleet parity: every fleet dispatch path vs the direct service.

    The fleet tier's contract is that N replicas behind
    :class:`~repro.fleet.transport.FleetTransport` are indistinguishable --
    bit-for-bit -- from one server.  This experiment runs the same payloads
    through

    * the service directly (the golden path),
    * the fleet, pipelined (consistent-hash routing + hedged requests),
    * the fleet, bulk (scatter-gather across the healthy shards),
    * the fleet **degraded**: one replica closed mid-experiment, the same
      traffic again (failover + breaker ejection),

    and reports per-path wall clock plus the exact maximum deviation from
    the direct path (the contract demands 0 everywhere, replica loss
    included).
    """
    import time as _time

    from repro.api.client import NormClient
    from repro.api.server import NormServer
    from repro.fleet.transport import FleetTransport
    from repro.serving.registry import CalibrationRegistry
    from repro.serving.service import NormalizationService

    registry = CalibrationRegistry(loader=loader)
    rng = np.random.default_rng(seed)
    artifact = registry.get(model_name, dataset)
    hidden = artifact.hidden_size
    payloads = [
        rng.normal(0.0, 1.0, size=(rows_per_request, hidden)) for _ in range(requests)
    ]
    shared = dict(layer_index=layer_index, dataset=dataset, backend=backend)

    start = _time.perf_counter()
    with NormalizationService(registry=registry, threaded=False) as service:
        golden = [
            service.normalize(payload, model_name, **shared).output
            for payload in payloads
        ]
    timings = {"direct": _time.perf_counter() - start}
    outputs = {}

    services = [NormalizationService(registry=registry) for _ in range(replicas)]
    servers = [NormServer(service) for service in services]
    try:
        for server in servers:
            server.start()
        addresses = [f"{server.host}:{server.port}" for server in servers]
        with NormClient(FleetTransport(addresses)) as client:
            client.wait_until_ready()
            start = _time.perf_counter()
            outputs["fleet-pipelined"] = [
                result.output
                for result in client.normalize_many(
                    payloads, model_name, depth=8, **shared
                )
            ]
            timings["fleet-pipelined"] = _time.perf_counter() - start

            start = _time.perf_counter()
            outputs["fleet-bulk"] = [
                result.output
                for result in client.normalize_bulk(payloads, model_name, **shared)
            ]
            timings["fleet-bulk"] = _time.perf_counter() - start

            # Kill a replica (ungracefully, mid-session) and repeat: the
            # surviving shards must absorb the traffic bit-identically.
            if replicas > 1:
                servers[0].close()
                start = _time.perf_counter()
                outputs["fleet-degraded"] = [
                    result.output
                    for result in client.normalize_many(
                        payloads, model_name, depth=4, **shared
                    )
                ]
                timings["fleet-degraded"] = _time.perf_counter() - start
            fleet_stats = client.transport.stats()
    finally:
        for server in servers:
            server.close()
        for service in services:
            service.close()

    def _deviation(results) -> float:
        return max(
            float(np.max(np.abs(out - ref))) if out.size else 0.0
            for out, ref in zip(results, golden)
        )

    deviations = {"direct": 0.0}
    deviations.update({name: _deviation(results) for name, results in outputs.items()})
    order = ["direct", "fleet-pipelined", "fleet-bulk"]
    if "fleet-degraded" in outputs:
        order.append("fleet-degraded")
    return ExperimentResult(
        experiment_id="fleet",
        title=f"Replica-fleet parity ({model_name}, {replicas} replicas)",
        headers=["path", "requests", "wall (ms)", "max |d| vs direct"],
        rows=[
            [name, requests, f"{timings[name] * 1e3:.1f}", f"{deviations[name]:.1e}"]
            for name in order
        ],
        metadata={
            "deviations": deviations,
            "timings": timings,
            "replicas": replicas,
            "dispatch": {
                key: value for key, value in fleet_stats.items() if key != "replicas"
            },
        },
    )


#: Registry of all experiments, keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1b": run_fig1b,
    "fig2": run_fig2,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "end_to_end": run_end_to_end,
    "ablation_invsqrt": run_invsqrt_ablation,
    "ablation_pipeline": run_pipeline_balance_ablation,
    "serving": run_serving_throughput,
    "engine": run_engine_backends,
    "api": run_api_roundtrip,
    "fleet": run_fleet_parity,
}


def available_experiments() -> List[str]:
    """Ids of all registered experiments."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)
