"""Evaluation harnesses and the experiment registry.

Accuracy (Tables I-II), perplexity, the GPU latency breakdown (Figure 1(b)),
the hardware comparisons (Table III, Figures 8-9), the end-to-end speedup
estimate and additional ablations -- each exposed as a callable in
:mod:`repro.eval.experiments` and through the ``haan-experiments`` CLI.
"""

from repro.eval.accuracy import (
    AccuracyReport,
    evaluate_configuration,
    evaluate_model_on_suite,
    evaluate_original,
    prepare_model_evaluation,
)
from repro.eval.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.eval.perplexity import PerplexityResult, evaluate_perplexity, perplexity_delta
from repro.eval.tasks import (
    LabeledItem,
    LabeledTask,
    build_labeled_task,
    build_task_suite,
    evaluate_task,
    score_choices,
)
from repro.eval.latency_breakdown import (
    LatencyBreakdown,
    normalization_share_growth,
    optimized_breakdown,
    original_breakdown,
)
from repro.eval.end_to_end import (
    EndToEndResult,
    amdahl_speedup,
    average_end_to_end_speedup,
    end_to_end_speedup,
)
from repro.eval.charts import ascii_bar_chart, ascii_line_chart, sparkline
from repro.eval.generalization import (
    TransferResult,
    generalization_study,
    transfer_penalty,
)
from repro.eval.reports import ReportSection, ReproductionReport, build_report

__all__ = [
    "ReportSection",
    "ReproductionReport",
    "build_report",
    "ascii_bar_chart",
    "ascii_line_chart",
    "sparkline",
    "TransferResult",
    "generalization_study",
    "transfer_penalty",
    "AccuracyReport",
    "evaluate_configuration",
    "evaluate_model_on_suite",
    "evaluate_original",
    "prepare_model_evaluation",
    "EXPERIMENTS",
    "ExperimentResult",
    "available_experiments",
    "run_experiment",
    "PerplexityResult",
    "evaluate_perplexity",
    "perplexity_delta",
    "LabeledItem",
    "LabeledTask",
    "build_labeled_task",
    "build_task_suite",
    "evaluate_task",
    "score_choices",
    "LatencyBreakdown",
    "normalization_share_growth",
    "optimized_breakdown",
    "original_breakdown",
    "EndToEndResult",
    "amdahl_speedup",
    "average_end_to_end_speedup",
    "end_to_end_speedup",
]
