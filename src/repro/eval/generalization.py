"""Cross-dataset generalization of the ISD predictor.

Section III-B of the paper claims the ISD predictor "exhibits high
generalizability across different datasets": the skip range and decay
coefficient calibrated on Wikitext transfer to the downstream tasks.  With
the synthetic substrate the equivalent experiment is:

1. profile the model's ISD on a *calibration* corpus and run Algorithm 1
   there;
2. profile the same model on a *disjoint* corpus (different documents,
   different seed, optionally a different task's text);
3. apply the calibration-time skip range and decay to the new profile and
   measure the log-domain prediction error.

A small transfer penalty (prediction error on the unseen corpus close to
the error on the calibration corpus) reproduces the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.isd import IsdProfile, profile_model_isd
from repro.core.predictor import IsdPredictor
from repro.core.skipping import find_skip_range_from_profile
from repro.llm.datasets import SyntheticCorpus, CorpusConfig, calibration_texts
from repro.llm.model import TransformerModel


@dataclass(frozen=True)
class TransferResult:
    """Prediction error of one calibrated predictor on one corpus."""

    corpus_name: str
    mean_abs_log_error: float
    max_abs_log_error: float
    mean_relative_isd_error: float

    def as_row(self) -> list:
        """Row representation for the table formatter."""
        return [
            self.corpus_name,
            f"{self.mean_abs_log_error:.4f}",
            f"{self.max_abs_log_error:.4f}",
            f"{self.mean_relative_isd_error * 100:.2f}%",
        ]

    @staticmethod
    def header() -> list:
        """Column names matching :meth:`as_row`."""
        return ["corpus", "mean |log err|", "max |log err|", "mean ISD err"]


def prediction_error_on_profile(profile: IsdProfile, predictor: IsdPredictor) -> TransferResult:
    """Log-domain prediction error of a predictor over one measured profile."""
    start, end = predictor.skip_range
    layers = np.arange(start + 1, end + 1)
    anchor = profile.isd_matrix[:, start]
    log_errors = []
    rel_errors = []
    for layer in layers:
        predicted = predictor.predict_from_anchor(anchor, int(layer))
        actual = profile.isd_matrix[:, layer]
        log_errors.append(np.abs(np.log(predicted) - np.log(actual)))
        rel_errors.append(np.abs(predicted - actual) / actual)
    log_matrix = np.stack(log_errors, axis=1)
    rel_matrix = np.stack(rel_errors, axis=1)
    return TransferResult(
        corpus_name="",
        mean_abs_log_error=float(np.mean(log_matrix)),
        max_abs_log_error=float(np.max(log_matrix)),
        mean_relative_isd_error=float(np.mean(rel_matrix)),
    )


def alternative_corpora(num_samples: int = 6, max_words: int = 40) -> Dict[str, Sequence[str]]:
    """Disjoint synthetic corpora standing in for the downstream task texts."""
    corpora: Dict[str, Sequence[str]] = {}
    for name, seed in (("held-out", 1234), ("task-style", 777), ("shifted-topic", 4242)):
        corpus = SyntheticCorpus(CorpusConfig(seed=seed))
        corpora[name] = corpus.documents(num_samples, sentences_per_doc=3, seed=seed)
    return corpora


def generalization_study(
    model: TransformerModel,
    calibration_samples: int = 6,
    corpus_samples: int = 6,
    max_seq_len: int = 24,
    skip_window: int | None = None,
    min_start_fraction: float = 0.3,
) -> Dict[str, TransferResult]:
    """Calibrate once, then measure transfer error on disjoint corpora.

    Returns a mapping from corpus name to its :class:`TransferResult`; the
    ``"calibration"`` entry is the in-sample error every other entry should
    stay close to.
    """
    calibration = calibration_texts(calibration_samples, seed=99)
    calibration_profile = profile_model_isd(model, calibration, max_seq_len=max_seq_len)
    num_layers = calibration_profile.num_layers
    window = skip_window if skip_window is not None else max(2, num_layers // 4)
    min_start = int(num_layers * min_start_fraction)
    search = find_skip_range_from_profile(calibration_profile, window=window, min_start=min_start)
    predictor = IsdPredictor.from_search_result(search)

    results: Dict[str, TransferResult] = {}
    in_sample = prediction_error_on_profile(calibration_profile, predictor)
    results["calibration"] = TransferResult(
        corpus_name="calibration",
        mean_abs_log_error=in_sample.mean_abs_log_error,
        max_abs_log_error=in_sample.max_abs_log_error,
        mean_relative_isd_error=in_sample.mean_relative_isd_error,
    )
    for name, texts in alternative_corpora(corpus_samples).items():
        profile = profile_model_isd(model, texts, max_seq_len=max_seq_len)
        transfer = prediction_error_on_profile(profile, predictor)
        results[name] = TransferResult(
            corpus_name=name,
            mean_abs_log_error=transfer.mean_abs_log_error,
            max_abs_log_error=transfer.max_abs_log_error,
            mean_relative_isd_error=transfer.mean_relative_isd_error,
        )
    return results


def transfer_penalty(results: Dict[str, TransferResult]) -> float:
    """Worst-case increase in mean log error relative to the calibration corpus."""
    baseline = results["calibration"].mean_abs_log_error
    others = [r.mean_abs_log_error for name, r in results.items() if name != "calibration"]
    if not others:
        return 0.0
    return float(max(others) - baseline)
