"""Command-line entry point of the serving runtime.

Installed as the ``haan-serve`` console script, next to
``haan-experiments`` (:mod:`repro.eval.cli`)::

    haan-serve --model tiny --requests 512
    haan-serve --model tiny --rows 4 --max-batch-size 64 --max-wait-ms 1
    haan-serve --model tiny --backend simulated --accelerator haan-v2
    haan-serve --model tiny --compare-loop
    haan-serve --model tiny --listen 127.0.0.1:8471

The command calibrates the model through the
:class:`~repro.serving.registry.CalibrationRegistry` (cache miss on first
use, Algorithm 1 runs once), fires synthetic activation traffic through the
threaded micro-batching service, cross-checks a sample of responses against
the single-request golden path bit-for-bit, and prints the telemetry
summary.  ``--compare-loop`` additionally measures requests/sec of the
micro-batched path against the per-request loop.

``--listen HOST:PORT`` switches to server mode: instead of synthetic
traffic, the service is exposed over the versioned wire protocol
(:mod:`repro.api`) until SIGINT/SIGTERM, then shuts down cleanly and prints
the telemetry summary.  ``haan-client`` is the matching client.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

import numpy as np

from repro.core.subsampling import subsample_indices
from repro.engine.registry import requires_connection, validate_backend_name
from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``haan-serve`` command."""
    parser = argparse.ArgumentParser(
        prog="haan-serve",
        description="Serve batched HAAN normalization traffic and report telemetry.",
    )
    parser.add_argument("--model", default="tiny", help="model name to calibrate and serve")
    parser.add_argument("--dataset", default="default", help="calibration dataset key")
    parser.add_argument("--requests", type=int, default=256, help="number of requests to fire")
    parser.add_argument("--rows", type=int, default=1, help="activation rows per request")
    parser.add_argument(
        "--layer",
        type=int,
        default=None,
        help="serve only this normalization layer (default: spread over all layers)",
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        help="execution backend for the served requests "
        "(see repro.engine.registry; default: vectorized)",
    )
    parser.add_argument(
        "--accelerator",
        default=None,
        help="accelerator config for cost-modelling backends: haan-v1/v2/v3 "
        "or a baseline (sole, dfx, mhaa)",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the wire protocol on this address instead of firing "
        "synthetic traffic (stop with SIGINT/SIGTERM)",
    )
    parser.add_argument(
        "--core",
        choices=("async", "threads"),
        default="async",
        help="server core in --listen mode: 'async' (default; asyncio event "
        "loop, continuous cross-connection batching, cheap idle "
        "connections) or 'threads' (the previous thread-per-connection "
        "core with the fixed-trigger micro-batcher, kept for one release)",
    )
    parser.add_argument(
        "--aging-window-ms",
        type=float,
        default=20.0,
        help="continuous scheduler's starvation bound (ms): a queued "
        "request is released at most this long after older traffic, "
        "however hot the competing buckets (async core only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="request-handling worker threads in --listen mode (the "
        "server-side pipelining depth across all connections)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="per-connection bound on pipelined requests being handled "
        "concurrently in --listen mode (excess becomes TCP backpressure)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=256,
        help="admission-control queue bound in --listen mode: work beyond "
        "it (or that cannot meet its deadline_ms) is shed before decode "
        "with a typed overloaded error",
    )
    parser.add_argument(
        "--degrade",
        action="store_true",
        help="enable the adaptive degradation ladder in --listen mode: "
        "under sustained queue pressure, serving ops step down the "
        "paper's fidelity knobs (subsampled stats, then the skip-eligible "
        "fast path) instead of shedding; responses are stamped with the "
        "level applied",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="refuse shared-memory attach requests in --listen mode: shm "
        "clients fall back to binary frames over TCP (use when the "
        "server must not map client-created segments)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to drain in-flight frames on SIGINT/SIGTERM before "
        "connections are closed (0: immediate close)",
    )
    parser.add_argument(
        "--tenants",
        default=None,
        metavar="PATH",
        help="tenant file (JSON: tiers + tenants with bearer tokens) "
        "enabling auth, per-tenant quotas and metered cost accounting "
        "in --listen mode",
    )
    parser.add_argument(
        "--require-auth",
        action="store_true",
        help="reject work from connections that did not present a valid "
        "tenant bearer token in the hello handshake (needs --tenants)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus-style text endpoint on "
        "http://127.0.0.1:PORT/metrics in --listen mode (0: ephemeral "
        "port, printed at startup)",
    )
    parser.add_argument("--max-batch-size", type=int, default=32, help="micro-batch size trigger")
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch latency trigger (ms)"
    )
    parser.add_argument(
        "--registry-capacity",
        type=int,
        default=4,
        help="LRU capacity of the calibration-artifact cache; size it to the "
        "number of live (model, dataset) pairs or cold recalibration will "
        "dominate the serving path",
    )
    parser.add_argument("--seed", type=int, default=0, help="payload RNG seed")
    parser.add_argument(
        "--no-golden-check",
        action="store_true",
        help="skip the bit-identity cross-check against the per-request path",
    )
    parser.add_argument(
        "--compare-loop",
        action="store_true",
        help="also benchmark requests/sec vs the per-request loop",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.requests < 1 or args.rows < 1:
        parser.error("--requests and --rows must be positive")
    if args.workers < 1 or args.max_inflight < 1:
        parser.error("--workers and --max-inflight must be positive")
    if args.max_queue_depth < 1:
        parser.error("--max-queue-depth must be positive")
    if args.drain_timeout < 0:
        parser.error("--drain-timeout must be >= 0")
    if args.require_auth and args.tenants is None:
        parser.error("--require-auth needs a tenant file (--tenants PATH)")
    if args.tenants is not None and args.listen is None:
        parser.error("--tenants applies to --listen mode")
    if args.metrics_port is not None and (
        args.listen is None or args.metrics_port < 0
    ):
        parser.error("--metrics-port needs --listen mode and a port >= 0")
    if args.registry_capacity < 1:
        parser.error("--registry-capacity must be positive")
    if args.aging_window_ms <= 0:
        parser.error("--aging-window-ms must be positive")
    try:
        # The registry owns the "unknown backend" message (it lists the
        # registered names); validate up front for a clean exit code.
        validate_backend_name(args.backend)
        if requires_connection(args.backend):
            raise ValueError(
                f"backend {args.backend!r} needs its own connection "
                f"configuration and cannot be served by haan-serve"
            )
        if args.accelerator is not None:
            from repro.hardware.configs import resolve_accelerator_config

            resolve_accelerator_config(args.accelerator)
    except ValueError as error:
        print(f"haan-serve: {error}", file=sys.stderr)
        return 2

    registry = CalibrationRegistry(capacity=args.registry_capacity)
    print(f"calibrating {args.model!r} (dataset {args.dataset!r})...")
    try:
        artifact = registry.get(args.model, args.dataset)
    except KeyError as error:
        print(f"haan-serve: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    print(
        f"  {artifact.num_layers} normalization layers, hidden size "
        f"{artifact.hidden_size}, skip range {artifact.config.skip_range}"
    )
    subsample = artifact.haan_layers[0].subsample if artifact.haan_layers else None
    if subsample is not None:
        columns = subsample_indices(artifact.hidden_size, subsample)
        print(
            f"  subsampled statistics read {columns.size}/{artifact.hidden_size} "
            f"columns ({subsample.policy.value})"
        )
    if args.layer is not None and not 0 <= args.layer < artifact.num_layers:
        print(
            f"haan-serve: --layer {args.layer} out of range; {args.model} has "
            f"{artifact.num_layers} normalization layers",
            file=sys.stderr,
        )
        return 2

    config = BatcherConfig(
        max_batch_size=args.max_batch_size, max_wait=args.max_wait_ms / 1000.0
    )
    if args.listen is not None:
        return _serve_forever(args, registry, config)

    rng = np.random.default_rng(args.seed)
    if args.layer is not None:
        layer_indices = np.full(args.requests, args.layer)
    else:
        layer_indices = rng.integers(0, artifact.num_layers, size=args.requests)
    payloads = [
        rng.normal(0.0, 1.0, size=(args.rows, artifact.hidden_size))
        for _ in range(args.requests)
    ]

    with NormalizationService(registry=registry, config=config) as service:
        futures = [
            service.submit(
                payload,
                args.model,
                layer_index=int(index),
                dataset=args.dataset,
                backend=args.backend,
                accelerator=args.accelerator,
            )
            for payload, index in zip(payloads, layer_indices)
        ]
        responses = [future.result(timeout=60.0) for future in futures]

    if not args.no_golden_check:
        sample = rng.choice(args.requests, size=min(8, args.requests), replace=False)
        for position in sample:
            layer = artifact.layer(int(layer_indices[position]))
            reference = layer(payloads[position])
            if not np.array_equal(responses[position].output, reference):
                print("GOLDEN CHECK FAILED: batched output differs from the "
                      "single-request path", file=sys.stderr)
                return 1
        print(f"golden check: {sample.size} sampled responses bit-identical "
              "to the per-request path")

    print()
    print(service.telemetry.format_table())
    registry_state = registry.snapshot()
    print(
        f"registry: {registry_state['entries']}/{registry_state['capacity']} artifacts, "
        f"{registry_state['hits']} hits / {registry_state['misses']} misses"
    )

    if args.compare_loop:
        from repro.eval.experiments import run_serving_throughput

        print()
        result = run_serving_throughput(
            model_name=args.model,
            batch_sizes=sorted({1, 8, args.max_batch_size}),
            rows_per_request=args.rows,
            requests=args.requests,
            seed=args.seed,
            dataset=args.dataset,
            backend=args.backend,
            loader=lambda name, dataset: registry.get(name, dataset),
        )
        print(result.formatted())
    return 0


def _serve_forever(
    args: argparse.Namespace, registry: CalibrationRegistry, config: BatcherConfig
) -> int:
    """Server mode: expose the service over the wire protocol until signalled.

    The calibration artifact is already warm (main() resolved it), so the
    first remote request never pays Algorithm 1.  SIGINT and SIGTERM both
    trigger a *graceful* shutdown: the listener stops, in-flight frames
    drain for up to ``--drain-timeout`` seconds (new work is answered
    with a typed overloaded error while draining), then connections are
    closed, queued requests flushed, telemetry printed -- and exit code 0,
    which the CI smoke job asserts.
    """
    from repro.api.server import NormServer, parse_address

    try:
        host, port = parse_address(args.listen)
    except ValueError as error:
        print(f"haan-serve: {error}", file=sys.stderr)
        return 2

    stop = threading.Event()

    def _signal_handler(_signum, _frame):
        stop.set()

    previous = {
        signum: signal.signal(signum, _signal_handler)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    # The async core pairs with the continuous scheduler (engine-tick
    # draining across all connections); the threaded core keeps the PR-1
    # fixed-trigger micro-batcher, preserving last release's behavior.
    service = NormalizationService(
        registry=registry,
        config=config,
        scheduler="continuous" if args.core == "async" else "micro",
        aging_window=args.aging_window_ms / 1000.0,
    )
    ladder = None
    if args.degrade:
        from repro.serving.degrade import DegradationLadder

        ladder = DegradationLadder()
    tenancy = None
    if args.tenants is not None:
        from repro.tenancy import TenancyController

        try:
            tenancy = TenancyController.from_file(
                args.tenants, require_auth=args.require_auth
            )
        except (OSError, ValueError) as error:
            print(f"haan-serve: bad tenant file {args.tenants}: {error}", file=sys.stderr)
            return 2
    metrics = None
    if args.core == "async":
        from repro.api.aserver import AsyncNormServer as server_cls
    else:
        server_cls = NormServer
    try:
        try:
            server = server_cls(
                service,
                host=host,
                port=port,
                workers=args.workers,
                max_inflight=args.max_inflight,
                max_queue_depth=args.max_queue_depth,
                ladder=ladder,
                enable_shm=not args.no_shm,
                tenancy=tenancy,
            )
        except OSError as error:
            print(f"haan-serve: cannot bind {args.listen}: {error}", file=sys.stderr)
            return 2
        if args.metrics_port is not None:
            from repro.tenancy import MetricsServer, render_prometheus

            telemetry = service.telemetry

            def _exposition() -> str:
                return render_prometheus(
                    telemetry.snapshot(), telemetry.histogram_export()
                )

            try:
                metrics = MetricsServer(_exposition, port=args.metrics_port).start()
            except OSError as error:
                print(
                    f"haan-serve: cannot bind metrics port {args.metrics_port}: {error}",
                    file=sys.stderr,
                )
                server.close()
                return 2
        with server:
            print(
                f"haan-serve: listening on {server.host}:{server.port} "
                f"(model {args.model!r}, dataset {args.dataset!r}; "
                f"{args.core} core, "
                f"{args.workers} workers, {args.max_inflight} in-flight "
                f"per connection, queue bound {args.max_queue_depth}"
                f"{', degradation ladder on' if ladder is not None else ''}"
                f"{', shm attach refused' if args.no_shm else ''}"
                + (
                    f", {len(tenancy.directory)} tenant(s)"
                    f"{', auth required' if tenancy.require_auth else ''}"
                    if tenancy is not None
                    else ""
                )
                + "; stop with SIGINT/SIGTERM)",
                flush=True,
            )
            if metrics is not None:
                print(
                    f"haan-serve: metrics on http://{metrics.host}:{metrics.port}/metrics",
                    flush=True,
                )
            while not stop.wait(0.2):
                pass
            # Graceful drain: stop accepting, let in-flight frames finish
            # (bounded), then the context manager's close() is a no-op.
            server.close(drain_timeout=args.drain_timeout)
            print(f"haan-serve: shutting down after {server.requests_served} request(s)")
    finally:
        if metrics is not None:
            metrics.close()
        service.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print()
    print(service.telemetry.format_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
