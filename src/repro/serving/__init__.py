"""Batched normalization serving runtime (the online counterpart of `core`).

The offline reproduction runs HAAN one request at a time; this package
turns it into a serving system:

* :class:`~repro.serving.service.NormalizationService` -- front door for
  single, bulk and streaming normalization requests.
* :class:`~repro.serving.batcher.MicroBatcher` -- dynamic micro-batching
  (size trigger + latency trigger, FIFO size-bucketed queues) coalescing
  requests into single vectorized kernel calls.
* :class:`~repro.serving.registry.CalibrationRegistry` -- LRU cache of
  calibrated artifacts so Algorithm 1 never runs in the request path.
* :mod:`~repro.serving.telemetry` -- latency histograms, skip/subsample
  rate counters and throughput gauges, surfaced by the ``haan-serve`` CLI.
* :mod:`~repro.serving.throughput` -- micro-batched vs per-request-loop
  throughput measurement backing ``benchmarks/bench_serving_throughput.py``.

The batched path is bit-identical to the per-request
:class:`~repro.core.haan_norm.HaanNormalization` pipeline; the golden-model
tests in ``tests/test_serving.py`` enforce that contract.
"""

from repro.serving.batcher import BatcherConfig, MicroBatcher, PendingRequest
from repro.serving.registry import (
    CalibrationArtifact,
    CalibrationRegistry,
    RegistryStats,
    default_artifact_loader,
    default_calibration_settings,
)
from repro.serving.request import NormRequest, NormResponse, RequestKey
from repro.serving.service import NormalizationService
from repro.serving.telemetry import Counter, LatencyHistogram, ServingTelemetry
from repro.serving.throughput import ThroughputPoint, measure_serving_throughput

__all__ = [
    "BatcherConfig",
    "MicroBatcher",
    "PendingRequest",
    "CalibrationArtifact",
    "CalibrationRegistry",
    "RegistryStats",
    "default_artifact_loader",
    "default_calibration_settings",
    "NormRequest",
    "NormResponse",
    "RequestKey",
    "NormalizationService",
    "Counter",
    "LatencyHistogram",
    "ServingTelemetry",
    "ThroughputPoint",
    "measure_serving_throughput",
]
