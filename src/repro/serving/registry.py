"""Calibration registry: cached HAAN artifacts per (model, dataset) key.

Algorithm 1 (skip-range search) and the predictor fit are offline costs the
serving runtime must never pay per request.  The registry runs them once
per ``(model, dataset)`` pair, caches the resulting artifact -- the
calibrated model with HAAN layers installed, plus the untouched reference
layers for golden-model comparison -- and evicts least-recently-used
entries once ``capacity`` is exceeded (multi-tenant deployments rotate
through more models than fit in memory).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.calibration import (
    CalibrationResult,
    CalibrationSettings,
    apply_haan,
    calibrate_model,
    resolve_config_and_predictor,
)
from repro.core.config import HaanConfig, PAPER_MODEL_SETTINGS
from repro.core.haan_norm import HaanNormalization
from repro.llm.model import TransformerModel
from repro.llm.normalization import BaseNorm


@dataclass
class CalibrationArtifact:
    """Everything the serving runtime needs for one (model, dataset) pair."""

    model_name: str
    dataset: str
    model: TransformerModel
    config: HaanConfig
    calibration: CalibrationResult
    haan_layers: List[HaanNormalization]
    reference_layers: List[BaseNorm]

    @property
    def num_layers(self) -> int:
        """Number of servable normalization layers."""
        return len(self.haan_layers)

    @property
    def hidden_size(self) -> int:
        """Width of the activation vectors this artifact normalizes.

        Falls back to the layers' width for model-less artifact stubs
        (tests and synthetic loaders build those).
        """
        if self.model is not None:
            return self.model.config.sim_hidden_size
        layers = self.haan_layers or self.reference_layers
        if not layers:
            raise ValueError("artifact has neither a model nor layers")
        return layers[0].hidden_size

    def layer(self, layer_index: int, reference: bool = False) -> BaseNorm:
        """The HAAN (or exact reference) layer at an execution-order index."""
        layers = self.reference_layers if reference else self.haan_layers
        if not 0 <= layer_index < len(layers):
            raise IndexError(
                f"layer {layer_index} out of range for {self.model_name} "
                f"({len(layers)} normalization layers)"
            )
        return layers[layer_index]


def _dataset_seed(dataset: str) -> int:
    """Deterministic calibration seed derived from the dataset name."""
    return zlib.crc32(dataset.encode("utf-8")) % (2**31)


def default_calibration_settings(
    model: TransformerModel, dataset: str = "default"
) -> CalibrationSettings:
    """Serving-grade calibration settings scaled to the model's depth.

    Smaller than the offline-experiment defaults: the registry may calibrate
    on a cache miss in the serving path, so the pass is sized to finish in
    seconds while still fitting the log-linear decay on a real profile.
    """
    num_layers = model.num_norm_layers
    return CalibrationSettings(
        num_samples=8,
        max_seq_len=32,
        batch_size=4,
        window=max(2, min(8, num_layers // 3)),
        min_start_fraction=0.3,
        seed=_dataset_seed(dataset),
    )


def default_artifact_loader(
    model_name: str,
    dataset: str = "default",
    settings: Optional[CalibrationSettings] = None,
) -> CalibrationArtifact:
    """Build, calibrate and HAAN-ify a model for serving.

    Uses the paper's per-model configuration when one exists (clamped to
    the simulated layer count) and otherwise the shared
    :func:`repro.core.calibration.resolve_config_and_predictor` policy, so
    offline experiments and the serving registry always calibrate a model
    identically.
    """
    model = TransformerModel.from_name(model_name)
    reference_layers = list(model.norm_layers)
    settings = settings or default_calibration_settings(model, dataset)
    calibration = calibrate_model(model, settings=settings)
    config = PAPER_MODEL_SETTINGS.get(model_name.strip().lower())
    if (
        config is not None
        and config.skipping_enabled
        and config.skip_range[1] >= model.num_norm_layers
    ):
        config = config.with_overrides(skip_range=calibration.skip_range)
    config, predictor = resolve_config_and_predictor(model, calibration, config)
    haan_layers = apply_haan(model, config, predictor=predictor)
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=model,
        config=config,
        calibration=calibration,
        haan_layers=haan_layers,
        reference_layers=reference_layers,
    )


ArtifactLoader = Callable[[str, str], CalibrationArtifact]


@dataclass
class RegistryStats:
    """Cache effectiveness counters of the registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CalibrationRegistry:
    """Thread-safe LRU cache of calibration artifacts.

    Parameters
    ----------
    loader:
        ``(model_name, dataset) -> CalibrationArtifact`` factory invoked on a
        miss; defaults to :func:`default_artifact_loader`.  Tests inject a
        cheap loader.
    capacity:
        Maximum number of cached artifacts; the least recently *used* entry
        is evicted when a miss would exceed it.
    known_models:
        The model names this registry can load: a list, a zero-argument
        callable returning one, or ``None`` when the valid set is unknowable
        (custom loaders accept arbitrary names, so validation is skipped
        for them).  Defaults to the built-in model zoo when the default
        loader is used, which lets :meth:`validate_model` fail a bad name
        at ``submit()`` time instead of deep inside the batch executor.
    """

    def __init__(
        self,
        loader: Optional[ArtifactLoader] = None,
        capacity: int = 4,
        known_models=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if known_models is None and loader is None:
            from repro.llm.config import available_models

            known_models = available_models
        self._known_models = known_models
        #: Cached membership set for the submit()-time hot path; refreshed
        #: on a miss so newly registered models are picked up lazily.
        self._known_model_set: Optional[frozenset] = None
        self._loader = loader or default_artifact_loader
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], CalibrationArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self._build_done = threading.Condition(self._lock)
        self._in_flight: set = set()
        self.stats = RegistryStats()

    def get(self, model_name: str, dataset: str = "default") -> CalibrationArtifact:
        """Fetch (or build) the artifact for a (model, dataset) pair.

        Calibration can take seconds, so it runs outside the registry lock
        (cache hits for other models are never blocked behind a cold miss)
        with single-flight arbitration: concurrent misses for the same key
        run Algorithm 1 exactly once and the stragglers reuse the result.
        A failed build wakes the waiters and the next one retries --
        serialized, and without leaking per-key state.
        """
        key = (model_name, dataset)
        with self._lock:
            while True:
                artifact = self._entries.get(key)
                if artifact is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return artifact
                if key not in self._in_flight:
                    self._in_flight.add(key)
                    self.stats.misses += 1
                    break
                self._build_done.wait()
        try:
            artifact = self._loader(model_name, dataset)
        except BaseException:
            with self._lock:
                self._in_flight.discard(key)
                self._build_done.notify_all()
            raise
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            self._in_flight.discard(key)
            self._build_done.notify_all()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return artifact

    def known_model_names(self) -> Optional[List[str]]:
        """Sorted loadable model names, or None when unknowable."""
        known = self._known_models
        if known is None:
            return None
        return sorted(known() if callable(known) else known)

    def validate_model(self, model_name: str) -> None:
        """Fail fast on a model this registry can never load.

        Raises ``ValueError`` listing the registered names; a no-op when
        the valid set is unknowable (custom loader without
        ``known_models``).  The membership set is cached (submit() calls
        this per request) and refreshed once on a miss, so models
        registered after construction are still honored.
        """
        if self._known_models is None:
            return
        key = model_name.strip().lower()
        cached = self._known_model_set
        if cached is not None and key in cached:
            return
        names = self.known_model_names()
        self._known_model_set = frozenset(names)
        if key not in self._known_model_set:
            raise ValueError(
                f"unknown model {model_name!r}; "
                f"registered models: {', '.join(names)}"
            )

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cached_keys(self) -> List[Tuple[str, str]]:
        """Cached (model, dataset) keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def snapshot(self) -> Dict[str, object]:
        """Registry state for the telemetry endpoint."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "keys": [f"{m}/{d}" for m, d in self._entries],
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "hit_rate": self.stats.hit_rate,
            }
