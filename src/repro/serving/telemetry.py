"""Serving telemetry: latency histograms, rate counters, throughput gauges.

Everything is in-process and lock-protected; the CLI renders
:meth:`ServingTelemetry.format_table` after a run and tests assert on
:meth:`ServingTelemetry.snapshot`.  Histograms use log-spaced buckets (the
Prometheus idiom for latency) so tail percentiles stay resolvable across
six decades without per-observation storage.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.utils.tables import format_table


class LatencyHistogram:
    """Fixed log-spaced-bucket histogram of durations in seconds."""

    def __init__(
        self,
        lower: float = 1e-6,
        upper: float = 10.0,
        buckets_per_decade: int = 5,
    ):
        if not 0 < lower < upper:
            raise ValueError("need 0 < lower < upper")
        decades = np.log10(upper / lower)
        num_edges = int(np.ceil(decades * buckets_per_decade)) + 1
        #: Upper bounds of the finite buckets; one overflow bucket follows.
        self.edges = lower * np.power(10.0, np.arange(num_edges) / buckets_per_decade)
        self.counts = np.zeros(num_edges + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0
        self.max_value = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        value = float(seconds)
        index = int(np.searchsorted(self.edges, value, side="left"))
        self.counts[index] += 1
        self.total += value
        self.count += 1
        if value > self.max_value:
            self.max_value = value

    def observe_many(self, seconds: np.ndarray) -> None:
        """Record a batch of durations in one vectorized pass."""
        values = np.asarray(seconds, dtype=np.float64)
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="left")
        self.counts += np.bincount(indices, minlength=self.counts.size)
        self.total += float(values.sum())
        self.count += int(values.size)
        peak = float(values.max())
        if peak > self.max_value:
            self.max_value = peak

    @property
    def mean(self) -> float:
        """Mean of the recorded durations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile.

        Histogram percentiles are bucket-resolution estimates: the true
        value lies at or below the returned bound.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = np.ceil(self.count * p / 100.0)
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, max(rank, 1)))
        if index >= self.edges.size:
            return self.max_value
        return float(self.edges[index])

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics for reporting."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def prometheus_export(self) -> Dict[str, object]:
        """Cumulative buckets in Prometheus histogram shape.

        ``buckets`` is a list of ``(le, cumulative_count)`` pairs whose
        ``le`` values are the finite upper bounds (rendered as strings)
        plus the terminal ``"+Inf"`` overflow bucket -- exactly what a
        ``_bucket{le="..."}`` family needs, straight from the log-spaced
        counts this histogram already keeps.
        """
        cumulative = np.cumsum(self.counts)
        buckets: list = [
            (f"{float(edge):.9g}", int(total))
            for edge, total in zip(self.edges, cumulative[:-1])
        ]
        buckets.append(("+Inf", int(cumulative[-1])))
        return {"buckets": buckets, "sum": self.total, "count": self.count}


class LatencyReservoir:
    """Bounded ring buffer of the most recent raw latency samples.

    The histograms above are the unbounded-horizon aggregate: fixed memory,
    but bucket-resolution percentiles.  The reservoir complements them with
    *exact* percentiles over a recent window while staying strictly
    bounded -- a long-running ``haan-serve`` session holds at most
    ``capacity`` float64 samples per reservoir, never an ever-growing
    sample list.  Older samples are overwritten ring-style.
    """

    __slots__ = ("_samples", "_next", "_filled")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least 1")
        self._samples = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._filled = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples (the memory bound)."""
        return int(self._samples.size)

    @property
    def count(self) -> int:
        """Number of samples currently in the window."""
        return self._filled

    def observe(self, seconds: float) -> None:
        """Record one duration, evicting the oldest once full."""
        samples = self._samples
        samples[self._next] = seconds
        self._next = (self._next + 1) % samples.size
        if self._filled < samples.size:
            self._filled += 1

    def observe_many(self, seconds: np.ndarray) -> None:
        """Record a batch of durations in one vectorized ring write."""
        values = np.asarray(seconds, dtype=np.float64).reshape(-1)
        capacity = self._samples.size
        if values.size >= capacity:
            # Only the newest `capacity` samples survive anyway.
            self._samples[:] = values[-capacity:]
            self._next = 0
            self._filled = capacity
            return
        first = min(values.size, capacity - self._next)
        self._samples[self._next : self._next + first] = values[:first]
        remainder = values.size - first
        if remainder:
            self._samples[:remainder] = values[first:]
        self._next = (self._next + values.size) % capacity
        self._filled = min(self._filled + values.size, capacity)

    def values(self) -> np.ndarray:
        """Copy of the retained window (unordered)."""
        return self._samples[: self._filled].copy()

    def percentile(self, p: float) -> float:
        """Exact ``p``-th percentile of the retained window (0 when empty)."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self._filled == 0:
            return 0.0
        return float(np.percentile(self._samples[: self._filled], p))

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics of the recent window."""
        window = self._samples[: self._filled]
        return {
            "count": self._filled,
            "capacity": self.capacity,
            "p50": float(np.percentile(window, 50)) if self._filled else 0.0,
            "p99": float(np.percentile(window, 99)) if self._filled else 0.0,
            "max": float(np.max(window)) if self._filled else 0.0,
        }


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class ServingTelemetry:
    """Aggregated metrics of one :class:`NormalizationService` instance.

    Tracks request/row/batch counts, the share of rows served by the
    predicted-ISD (skip) and subsampled paths, queue-wait and kernel-latency
    histograms, the micro-batch size distribution, and wall-clock
    throughput over the observed window.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sample_capacity: int = 4096,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        self.requests_total = Counter()
        self.rows_total = Counter()
        self.batches_total = Counter()
        self.rows_predicted = Counter()
        self.rows_subsampled = Counter()
        self.errors_total = Counter()
        #: Per-backend request / row / batch counters, keyed by the engine
        #: registry name that executed each micro-batch.
        self.backend_counts: Dict[str, Dict[str, int]] = {}
        #: Modelled hardware cost aggregates, fed by the NormCostRecords
        #: the simulated backends emit (zero until a costed batch runs).
        self.cost_batches = 0
        self.cost_rows = 0
        self.cost_cycles = 0
        self.cost_energy_nj = 0.0
        #: Per accelerator-config cost breakdown, keyed by config name
        #: (haan-v1, sole, ...), so a mixed-accelerator session stays
        #: attributable.
        self.cost_by_config: Dict[str, Dict[str, float]] = {}
        self.queue_wait = LatencyHistogram()
        self.batch_latency = LatencyHistogram()
        #: Bounded raw-sample windows (exact recent percentiles at fixed
        #: memory; `sample_capacity` caps what a long-running session holds).
        self.recent_queue_wait = LatencyReservoir(sample_capacity)
        self.recent_batch_latency = LatencyReservoir(sample_capacity)
        self.max_batch_size = 0
        self._first_at: Optional[float] = None
        self._last_at: Optional[float] = None
        #: External snapshot sections (name -> provider), e.g. the wire
        #: server's pipelining gauges.  Providers run outside the lock.
        self._sections: Dict[str, Callable[[], Dict[str, object]]] = {}

    def attach_section(
        self, name: str, provider: Callable[[], Dict[str, object]]
    ) -> None:
        """Merge ``provider()`` into every snapshot under key ``name``.

        Lets the transport layer (e.g. :class:`~repro.api.server.NormServer`)
        surface its pipelining/pool gauges next to the serving metrics
        without the telemetry module knowing about sockets.  Re-attaching a
        name replaces the provider (a restarted server re-registers).
        """
        if name in ("requests_total", "rows_total"):  # guard core keys
            raise ValueError(f"section name {name!r} collides with a core metric")
        self._sections[name] = provider

    def detach_section(self, name: str) -> None:
        """Remove an attached section (missing names are ignored)."""
        self._sections.pop(name, None)

    # -- recording ---------------------------------------------------------

    def observe_batch(
        self,
        num_requests: int,
        num_rows: int,
        queue_waits: np.ndarray,
        batch_seconds: float,
        rows_predicted: int,
        rows_subsampled: int,
        backend: str = "vectorized",
        cost=None,
    ) -> None:
        """Fold one executed micro-batch into the aggregates.

        ``cost`` is the batch's
        :class:`~repro.engine.backends.NormCostRecord` when a cost-modelling
        backend executed it (None otherwise); modelled cycles and energy
        aggregate next to the wall-clock metrics.
        """
        now = self._clock()
        with self._lock:
            if self._first_at is None:
                self._first_at = now - batch_seconds
            self._last_at = now
            self.requests_total.increment(num_requests)
            self.rows_total.increment(num_rows)
            self.batches_total.increment()
            per_backend = self.backend_counts.setdefault(
                backend, {"requests": 0, "rows": 0, "batches": 0}
            )
            per_backend["requests"] += num_requests
            per_backend["rows"] += num_rows
            per_backend["batches"] += 1
            if cost is not None:
                self.cost_batches += 1
                self.cost_rows += cost.num_rows
                self.cost_cycles += cost.total_cycles
                self.cost_energy_nj += cost.energy_nj
                per_config = self.cost_by_config.setdefault(
                    cost.config_name,
                    {"batches": 0, "rows": 0, "cycles": 0, "energy_nj": 0.0},
                )
                per_config["batches"] += 1
                per_config["rows"] += cost.num_rows
                per_config["cycles"] += cost.total_cycles
                per_config["energy_nj"] += cost.energy_nj
            self.rows_predicted.increment(rows_predicted)
            self.rows_subsampled.increment(rows_subsampled)
            if num_requests > self.max_batch_size:
                self.max_batch_size = num_requests
            self.batch_latency.observe(batch_seconds)
            self.queue_wait.observe_many(queue_waits)
            self.recent_batch_latency.observe(batch_seconds)
            self.recent_queue_wait.observe_many(queue_waits)

    def observe_error(self) -> None:
        """Record one failed batch."""
        with self._lock:
            self.errors_total.increment()

    def histogram_export(self) -> Dict[str, Dict[str, object]]:
        """Bucketed latency families for the Prometheus ``/metrics`` endpoint."""
        with self._lock:
            return {
                "queue_wait": self.queue_wait.prometheus_export(),
                "batch_latency": self.batch_latency.prometheus_export(),
            }

    # -- derived gauges ----------------------------------------------------

    @property
    def skip_rate(self) -> float:
        """Fraction of rows whose ISD was predicted rather than computed."""
        total = self.rows_total.value
        return self.rows_predicted.value / total if total else 0.0

    @property
    def subsample_rate(self) -> float:
        """Fraction of rows whose statistics used the subsampled estimator."""
        total = self.rows_total.value
        return self.rows_subsampled.value / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per micro-batch."""
        batches = self.batches_total.value
        return self.requests_total.value / batches if batches else 0.0

    def observed_window(self) -> float:
        """Wall-clock span (seconds) between the first and last batch."""
        if self._first_at is None or self._last_at is None:
            return 0.0
        return max(self._last_at - self._first_at, 0.0)

    def requests_per_second(self) -> float:
        """Request throughput over the observed window."""
        window = self.observed_window()
        return self.requests_total.value / window if window > 0 else 0.0

    def rows_per_second(self) -> float:
        """Row (token) throughput over the observed window."""
        window = self.observed_window()
        return self.rows_total.value / window if window > 0 else 0.0

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All aggregates as one plain dictionary."""
        # Section providers run outside the lock (a provider may itself
        # take locks, e.g. the wire server's connection registry).
        sections = {name: provider() for name, provider in self._sections.items()}
        with self._lock:
            sections.update({
                "requests_total": self.requests_total.value,
                "rows_total": self.rows_total.value,
                "batches_total": self.batches_total.value,
                "errors_total": self.errors_total.value,
                "mean_batch_size": self.mean_batch_size,
                "max_batch_size": self.max_batch_size,
                "skip_rate": self.skip_rate,
                "subsample_rate": self.subsample_rate,
                "backends": {
                    name: dict(counts) for name, counts in self.backend_counts.items()
                },
                "modelled_cost": {
                    "batches": self.cost_batches,
                    "rows": self.cost_rows,
                    "total_cycles": self.cost_cycles,
                    "energy_nj": self.cost_energy_nj,
                    "by_config": {
                        name: dict(counts)
                        for name, counts in self.cost_by_config.items()
                    },
                },
                "requests_per_second": self.requests_per_second(),
                "rows_per_second": self.rows_per_second(),
                "queue_wait": self.queue_wait.snapshot(),
                "batch_latency": self.batch_latency.snapshot(),
                "recent_queue_wait": self.recent_queue_wait.snapshot(),
                "recent_batch_latency": self.recent_batch_latency.snapshot(),
            })
            return sections

    def format_table(self) -> str:
        """Aligned plain-text rendering (the ``haan-serve`` summary)."""
        snap = self.snapshot()
        rows = [
            ["requests", f"{snap['requests_total']}"],
            ["rows (tokens)", f"{snap['rows_total']}"],
            ["micro-batches", f"{snap['batches_total']}"],
            ["errors", f"{snap['errors_total']}"],
            ["mean batch size", f"{snap['mean_batch_size']:.2f}"],
            ["skip rate", f"{100.0 * snap['skip_rate']:.1f}%"],
            ["subsample rate", f"{100.0 * snap['subsample_rate']:.1f}%"],
            ["requests/sec", f"{snap['requests_per_second']:.0f}"],
            ["rows/sec", f"{snap['rows_per_second']:.0f}"],
            ["queue wait p50/p99", _format_pair(snap["queue_wait"])],
            ["batch latency p50/p99", _format_pair(snap["batch_latency"])],
            ["recent queue wait p50/p99", _format_pair(snap["recent_queue_wait"])],
            ["recent batch latency p50/p99", _format_pair(snap["recent_batch_latency"])],
        ]
        for name in sorted(snap["backends"]):
            counts = snap["backends"][name]
            rows.append(
                [
                    f"backend[{name}]",
                    f"{counts['requests']} req / {counts['rows']} rows / "
                    f"{counts['batches']} batches",
                ]
            )
        wire = snap.get("wire")
        if isinstance(wire, dict) and wire.get("frames_received"):
            rows.append(
                [
                    "wire pipelining",
                    f"{wire['frames_received']} frames / "
                    f"{wire['connections_total']} conns / "
                    f"peak inflight {wire['peak_inflight']}",
                ]
            )
            rows.append(
                [
                    "wire pool",
                    f"{wire['workers']} workers / "
                    f"max inflight {wire['max_inflight']} per conn",
                ]
            )
            # Per-connection gauges arrived with the fleet tier; older
            # frozen snapshots may lack them, so render only when present.
            if "backpressure_waits" in wire:
                rows.append(
                    [
                        "wire backpressure",
                        f"{wire['backpressure_waits']} reader stalls / "
                        f"inflight now {wire.get('inflight_current', 0)}",
                    ]
                )
            # Codec gauges arrived with the binary wire format; older
            # frozen snapshots may predate them.
            if "bytes_received" in wire:
                rows.append(
                    [
                        "wire codec",
                        f"{wire['bytes_received']} B in / "
                        f"{wire['bytes_sent']} B out / "
                        f"{wire.get('frames_binary', 0)} binary + "
                        f"{wire.get('frames_json', 0)} json frames",
                    ]
                )
            for conn in wire.get("per_connection", []):
                codec_suffix = ""
                if "encoding" in conn:
                    codec_suffix = (
                        f" / {conn['encoding']} "
                        f"{conn.get('bytes_in', 0)}B>{conn.get('bytes_out', 0)}B"
                    )
                rows.append(
                    [
                        f"wire conn[{conn['id']}]",
                        f"{conn['frames']} frames / inflight {conn['inflight']} "
                        f"(peak {conn['peak_inflight']}) / "
                        f"{conn['backpressure_waits']} stalls"
                        f"{codec_suffix}",
                    ]
                )
        cost = snap["modelled_cost"]
        if cost["batches"]:
            rows.append(["modelled cycles", f"{cost['total_cycles']}"])
            rows.append(["modelled energy", f"{cost['energy_nj'] / 1e3:.2f} uJ"])
            for name in sorted(cost["by_config"]):
                per_config = cost["by_config"][name]
                rows.append(
                    [
                        f"cost[{name}]",
                        f"{per_config['cycles']} cycles / "
                        f"{per_config['energy_nj']:.0f} nJ / "
                        f"{per_config['rows']} rows",
                    ]
                )
        return format_table(["metric", "value"], rows, title="haan-serve telemetry")


def _format_pair(hist_snapshot: Dict[str, float]) -> str:
    """Render a histogram's p50/p99 pair in microseconds."""
    return (
        f"{1e6 * hist_snapshot['p50']:.0f}us / {1e6 * hist_snapshot['p99']:.0f}us"
    )
