"""Request / response envelopes of the normalization serving runtime.

A request asks the service to normalize one activation tensor with one
normalization layer of a calibrated model.  The payload may be a single
``(hidden,)`` vector (one token) or a ``(rows, hidden)`` matrix (a chunk of
a sequence); the response restores the payload's original shape.

Requests optionally carry an :class:`~repro.llm.hooks.ActivationContext`.
Reusing one context across the requests of a single activation stream gives
the batched runtime the same cross-layer ISD visibility a single-request
forward pass has: skipped layers read the anchor ISD the stream's earlier
request deposited.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.llm.hooks import ActivationContext

_request_ids = itertools.count()


@dataclass(frozen=True)
class RequestKey:
    """Coalescing key: requests sharing a key may ride one micro-batch.

    Two requests can only be stacked when they resolve to the *same*
    normalization layer object -- same calibrated model artifact, same layer
    index, same path (HAAN or the exact reference layer used as the golden
    model) -- *and* the same execution backend
    (:mod:`repro.engine.registry` name), so a micro-batch always runs on
    one machine and telemetry can attribute it.

    ``accelerator`` selects a named :class:`AcceleratorConfig` for
    cost-modelling backends (``simulated`` and its baseline variants), so
    one service prices traffic on HAAN-v1 and HAAN-v2 -- or on SOLE / DFX /
    MHAA -- side by side; requests priced on different datapaths never share
    a batch (the cost record must attribute to exactly one config).
    """

    model: str
    layer_index: int
    dataset: str = "default"
    reference: bool = False
    backend: str = "vectorized"
    accelerator: Optional[str] = None
    #: Degradation-ladder level this request executes at (0 = full
    #: fidelity).  Degraded requests compile to a *different* engine
    #: (forced subsampling / skip fast path), so they must never share a
    #: micro-batch with full-fidelity traffic.
    degrade: int = 0


class NormRequest:
    """One normalization request submitted to the service.

    A hand-rolled ``__slots__`` class rather than a dataclass: requests are
    created once per served payload, so construction is a hot path and a
    single ``__init__`` call (no ``__post_init__`` / default-factory hops)
    measurably matters.
    """

    __slots__ = (
        "key",
        "payload",
        "context",
        "request_id",
        "rows",
        "num_rows",
        "tenant",
        "deadline_ms",
    )

    def __init__(
        self,
        key: RequestKey,
        payload: np.ndarray,
        context: Optional[ActivationContext] = None,
        tenant: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ):
        arr = np.asarray(payload)
        if arr.dtype.kind not in "fiub":
            # np.asarray(..., float64) would *silently truncate* complex
            # payloads (ComplexWarning, not an exception) and mis-parse
            # mixed/object rows; a serving system must reject them loudly.
            raise ValueError(
                f"payload dtype {arr.dtype} is not real-numeric "
                "(float/int/bool); refusing lossy float64 coercion"
            )
        arr = np.asarray(arr, dtype=np.float64)
        ndim = arr.ndim
        if ndim == 2:
            rows, num_rows = arr, arr.shape[0]
        elif ndim == 1:
            rows, num_rows = arr.reshape(1, -1), 1
        else:
            raise ValueError(
                f"payload must be (hidden,) or (rows, hidden); got shape {arr.shape}"
            )
        if arr.size == 0:
            # A zero-row (or zero-width) payload has nothing to normalize and
            # would corrupt the micro-batch's segment bookkeeping.
            raise ValueError(f"payload must be non-empty; got shape {arr.shape}")
        self.key = key
        self.payload = arr
        self.context = context
        #: Tenant name this request is metered against (None = anonymous).
        #: Attribution only -- tenancy never affects the computation, so
        #: requests of different tenants still share micro-batches.
        self.tenant = tenant
        #: Client latency budget in milliseconds (None = no deadline).  A
        #: deadline-aware scheduler sheds the request once the budget is
        #: exhausted instead of executing work nobody will wait for.
        self.deadline_ms = deadline_ms
        self.request_id = next(_request_ids)
        #: The payload viewed as a 2-D ``(rows, hidden)`` matrix.
        self.rows = rows
        #: Number of vectors this request normalizes.
        self.num_rows = num_rows

    def __repr__(self) -> str:
        return (
            f"NormRequest(id={self.request_id}, key={self.key}, "
            f"rows={self.num_rows})"
        )


@dataclass(slots=True)
class NormResponse:
    """Result of one request, shaped like its payload."""

    request_id: int
    key: RequestKey
    output: np.ndarray
    mean: np.ndarray
    isd: np.ndarray
    was_predicted: bool
    was_subsampled: bool
    batch_size: int
    queue_wait: float
    batch_latency: float
    #: Degradation-ladder level actually applied (0 = full fidelity).
    #: Responses are stamped so a degraded result is never silently
    #: substituted for a full-fidelity one.
    degradation: int = 0
