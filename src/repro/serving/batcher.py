"""Dynamic micro-batching scheduler.

Requests accumulate in per-bucket FIFO queues; a bucket is one
:class:`~repro.serving.request.RequestKey` (model / dataset / layer / path)
plus a payload size class, so single-token traffic never queues behind
large sequence chunks while chunks of similar size still coalesce.

A batch is released when either

* the oldest bucket holds ``max_batch_size`` requests (size trigger), or
* the oldest waiting request has aged past ``max_wait`` (latency trigger),

whichever comes first -- the classic dynamic-batching contract.  Buckets
are served oldest-head-first, which preserves arrival order within a bucket
and approximates global FIFO across buckets.

The batcher runs either threaded (a worker drains continuously; submitters
block on futures) or inline (no thread; callers pump :meth:`drain_once` /
:meth:`drain_all`).  Inline mode gives deterministic scheduling for tests
and benchmarks that must not measure thread wakeup noise.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.serving.request import NormRequest, RequestKey


#: Sentinel marking a future whose done-callbacks already fired; callbacks
#: registered afterwards run immediately on the registering thread.
_CALLBACKS_FIRED = object()


class ResponseFuture:
    """Minimal future resolved exactly once by the batch executor.

    ``concurrent.futures.Future`` allocates a condition variable per
    instance, which at micro-batch request rates costs more than the
    normalization kernel itself.  This future is a plain attribute cell:
    the waiter's event is created lazily and only when a caller actually
    blocks before the result lands (the threaded path), so the inline fast
    path pays two attribute writes per request.
    """

    __slots__ = ("_value", "_error", "_done", "_event", "_callbacks")

    #: Guards lazy event creation when several threads wait on one future
    #: (and the callback handoff); class-level so the per-request fast path
    #: allocates nothing.
    _EVENT_LOCK = threading.Lock()

    def __init__(self) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        self._done = False
        self._event: Optional[threading.Event] = None
        self._callbacks = None

    def _finish(self) -> None:
        """Wake waiters and fire callbacks after the result landed."""
        event = self._event
        if event is not None:
            event.set()
        callbacks = None
        if self._callbacks is not None:
            with ResponseFuture._EVENT_LOCK:
                callbacks = self._callbacks
                self._callbacks = _CALLBACKS_FIRED
        if callbacks is not None and callbacks is not _CALLBACKS_FIRED:
            for callback in callbacks:
                callback(self)

    def set_result(self, value) -> None:
        """Resolve the future (executor side)."""
        self._value = value
        self._done = True
        self._finish()

    def set_exception(self, error: BaseException) -> None:
        """Fail the future (executor side)."""
        self._error = error
        self._done = True
        self._finish()

    def done(self) -> bool:
        """Whether a result or exception has been set."""
        return self._done

    def exception(self) -> Optional[BaseException]:
        """The stored exception, if the future failed (non-blocking)."""
        return self._error

    def add_done_callback(self, callback) -> None:
        """Run ``callback(self)`` once resolved (immediately if already done).

        Callbacks registered before resolution run on the resolving thread
        (the batch executor); ones registered after run on the registering
        thread.  The asyncio server core bridges these futures onto its
        event loop through this hook (``loop.call_soon_threadsafe`` inside
        the callback), so callbacks must never block.
        """
        with ResponseFuture._EVENT_LOCK:
            if self._callbacks is not _CALLBACKS_FIRED:
                if self._done:
                    # Resolved before any callback list existed: the setter
                    # saw _callbacks None and skipped the handoff.  Mark
                    # fired so later registrations take the fast path too.
                    self._callbacks = _CALLBACKS_FIRED
                else:
                    if self._callbacks is None:
                        self._callbacks = []
                    self._callbacks.append(callback)
                    return
        callback(self)

    def result(self, timeout: Optional[float] = None):
        """Block until resolved; raises the stored exception if any."""
        if not self._done:
            if self._event is None:
                with ResponseFuture._EVENT_LOCK:
                    if self._event is None:
                        self._event = threading.Event()
            # Re-check after publishing the event: a setter that missed the
            # event has already flipped _done by now (GIL ordering).
            if not self._done and not self._event.wait(timeout):
                # A timed-out wait is not proof of an unresolved future:
                # the setter may have flipped _done between wait() giving
                # up and this raise (it sets _done before set()), so
                # re-check once more -- raising here would be a *spurious*
                # timeout on a request that actually completed in time.
                if not self._done:
                    raise TimeoutError("normalization request timed out")
        if self._error is not None:
            raise self._error
        return self._value


@dataclass(frozen=True)
class BatcherConfig:
    """Scheduling knobs of the micro-batcher."""

    #: Size trigger: a bucket reaching this many requests is released.
    max_batch_size: int = 32
    #: Latency trigger (seconds): the oldest request never waits longer.
    max_wait: float = 0.002
    #: Cap on stacked rows per batch (bounds kernel working-set size).
    max_batch_rows: int = 8192
    #: Round payload row counts to a power of two when forming buckets.
    size_bucketing: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if self.max_batch_rows < 1:
            raise ValueError("max_batch_rows must be at least 1")

    def size_class(self, num_rows: int) -> int:
        """Bucket id of a payload size (next power of two, or 0 when off)."""
        if not self.size_bucketing:
            return 0
        return 1 << (max(1, num_rows) - 1).bit_length()


class PendingRequest(ResponseFuture):
    """A queued request that IS its own completion future.

    Folding the future into the queue record halves the per-request object
    allocations on the hot submit path; callers treat the returned object
    purely as a future (``result()`` / ``done()``).
    """

    __slots__ = ("request", "enqueued_at", "deadline_at")

    def __init__(self, request: NormRequest, enqueued_at: float):
        # Future state inlined (instead of super().__init__()): one function
        # call per request on the hot submit path.
        self._value = None
        self._error = None
        self._done = False
        self._event = None
        self._callbacks = None
        self.request = request
        self.enqueued_at = enqueued_at
        deadline_ms = request.deadline_ms
        # Deadlines are wall-budget offsets on the wire; anchor them to the
        # batcher clock at enqueue so the scheduler compares like with like.
        self.deadline_at = (
            None if deadline_ms is None else enqueued_at + deadline_ms / 1000.0
        )

    @property
    def future(self) -> "PendingRequest":
        """Backwards-compatible alias: the pending request is the future."""
        return self


BucketKey = Tuple[RequestKey, int]
#: Batch executor callback: ``(request_key, batch, total_rows)``.  The
#: batcher already sums the stacked row count while forming the batch, so
#: the executor can size its staging buffers without re-walking the batch.
ExecuteFn = Callable[[RequestKey, List[PendingRequest], int], None]


class MicroBatcher:
    """Coalesces normalization requests into micro-batches.

    Parameters
    ----------
    execute:
        Callback receiving ``(request_key, batch, total_rows)``; it must
        resolve every pending future (the batcher fails them if the
        callback raises).
    config:
        Scheduling configuration.
    clock:
        Monotonic time source (injectable for deterministic timeout tests).
    """

    #: Worker thread name; subclasses override so operators can tell the
    #: schedulers apart in thread dumps.
    _THREAD_NAME = "haan-micro-batcher"

    def __init__(
        self,
        execute: ExecuteFn,
        config: Optional[BatcherConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BatcherConfig()
        self._execute = execute
        self._clock = clock
        self._queues: "OrderedDict[BucketKey, Deque[PendingRequest]]" = OrderedDict()
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._closed = False
        self.batches_executed = 0
        self.requests_executed = 0

    # -- submission --------------------------------------------------------

    def submit(self, request: NormRequest) -> ResponseFuture:
        """Enqueue a request; the returned future resolves to a NormResponse."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence[NormRequest]) -> List[ResponseFuture]:
        """Enqueue a burst of requests under a single lock acquisition."""
        now = self._clock()
        size_class = self.config.size_class
        pendings = [PendingRequest(request, now) for request in requests]
        with self._cond:
            if self._closed:
                # A submit racing stop() must be rejected, not silently
                # queued after the final drain -- its future would never
                # resolve and a caller without a timeout would hang.
                raise RuntimeError("batcher is stopped; no new requests accepted")
            queues = self._queues
            # Bursts overwhelmingly share one bucket; memoize the last lookup
            # (by key identity) so the hot path skips hashing the RequestKey
            # per request.
            last_key = last_class = None
            queue: Optional[Deque[PendingRequest]] = None
            for pending in pendings:
                request = pending.request
                sclass = size_class(request.num_rows)
                if request.key is not last_key or sclass != last_class:
                    bucket = (request.key, sclass)
                    queue = queues.get(bucket)
                    if queue is None:
                        queue = queues[bucket] = deque()
                    last_key, last_class = request.key, sclass
                queue.append(pending)
            self._cond.notify_all()
        return pendings

    @property
    def pending_count(self) -> int:
        """Number of requests currently queued."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    # -- batch formation ---------------------------------------------------

    def _pop_batch_locked(
        self, now: float, force: bool
    ) -> Tuple[Optional[Tuple[RequestKey, List[PendingRequest], int]], Optional[float]]:
        """Pop a releasable batch, or report how long the head may still wait.

        The size trigger is checked across *every* bucket (oldest full
        bucket first) so a full batch never stalls behind an older,
        still-filling bucket; the latency trigger applies to the globally
        oldest head.
        """
        full_bucket: Optional[BucketKey] = None
        full_time = float("inf")
        oldest_bucket: Optional[BucketKey] = None
        oldest_time = float("inf")
        for bucket, queue in self._queues.items():
            if not queue:
                continue
            head = queue[0].enqueued_at
            if head < oldest_time:
                oldest_bucket, oldest_time = bucket, head
            if len(queue) >= self.config.max_batch_size and head < full_time:
                full_bucket, full_time = bucket, head
        if oldest_bucket is None:
            return None, None
        bucket = full_bucket
        if bucket is None:
            age = now - oldest_time
            if not force and age < self.config.max_wait:
                return None, self.config.max_wait - age
            bucket = oldest_bucket
        queue = self._queues[bucket]
        batch: List[PendingRequest] = [queue.popleft()]
        rows = batch[0].request.num_rows
        while (
            queue
            and len(batch) < self.config.max_batch_size
            and rows + queue[0].request.num_rows <= self.config.max_batch_rows
        ):
            pending = queue.popleft()
            batch.append(pending)
            rows += pending.request.num_rows
        if not queue:
            del self._queues[bucket]
        return (bucket[0], batch, rows), None

    def _run_batch(self, key: RequestKey, batch: List[PendingRequest], rows: int) -> None:
        try:
            self._execute(key, batch, rows)
        except BaseException as error:  # noqa: BLE001 -- never strand a future
            for pending in batch:
                if not pending.done():
                    pending.set_exception(error)
            if not isinstance(error, Exception):
                raise  # KeyboardInterrupt / SystemExit still propagate
        self.batches_executed += 1
        self.requests_executed += len(batch)

    # -- inline draining ---------------------------------------------------

    def drain_once(self, force: bool = True) -> int:
        """Form and execute one batch inline; returns requests executed."""
        with self._cond:
            ready, _ = self._pop_batch_locked(self._clock(), force=force)
        if ready is None:
            return 0
        key, batch, rows = ready
        self._run_batch(key, batch, rows)
        return len(batch)

    def drain_all(self) -> int:
        """Execute every queued request inline; returns requests executed."""
        total = 0
        while True:
            executed = self.drain_once(force=True)
            if executed == 0:
                return total
            total += executed

    # -- threaded mode -----------------------------------------------------

    def start(self) -> None:
        """Start the background worker (idempotent; a stopped batcher is final)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is stopped and cannot be restarted")
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._worker, name=self._THREAD_NAME, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the worker, reject new submissions, flush everything queued."""
        with self._cond:
            was_running = self._running
            self._running = False
            self._closed = True
            self._cond.notify_all()
        if was_running and self._thread is not None:
            self._thread.join()
            self._thread = None
        self.drain_all()

    def _worker(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
                ready, wait_hint = self._pop_batch_locked(self._clock(), force=False)
                if ready is None:
                    # wait_hint is None when the queues are empty (block
                    # until a submit arrives) and a deadline otherwise.
                    self._cond.wait(timeout=wait_hint)
                    continue
            key, batch, rows = ready
            self._run_batch(key, batch, rows)
