"""Throughput measurement: micro-batched serving vs a per-request loop.

The per-request baseline calls the HAAN layer once per request -- exactly
what the offline experiments do.  The batched path pushes the same requests
through an inline :class:`~repro.serving.service.NormalizationService`
(queueing, coalescing, telemetry and response splitting included), so the
reported speedup is end-to-end honest, not a kernel-only number.  Inline
mode is used so thread wakeup jitter never pollutes the timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.serving.batcher import BatcherConfig
from repro.serving.registry import ArtifactLoader, CalibrationRegistry
from repro.serving.service import NormalizationService


@dataclass(frozen=True)
class ThroughputPoint:
    """Requests/sec of both paths at one micro-batch size."""

    batch_size: int
    requests: int
    loop_seconds: float
    batched_seconds: float

    @property
    def loop_rps(self) -> float:
        """Requests/sec of the per-request loop."""
        return self.requests / self.loop_seconds if self.loop_seconds > 0 else 0.0

    @property
    def batched_rps(self) -> float:
        """Requests/sec of the micro-batched service."""
        return self.requests / self.batched_seconds if self.batched_seconds > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Batched over per-request throughput ratio."""
        return self.batched_rps / self.loop_rps if self.loop_rps > 0 else 0.0


def measure_serving_throughput(
    model: str = "tiny",
    batch_sizes: Sequence[int] = (1, 8, 32, 128),
    layer_index: int = 0,
    rows_per_request: int = 1,
    requests: int = 256,
    repeats: int = 3,
    seed: int = 0,
    dataset: str = "default",
    backend: str = "vectorized",
    loader: Optional[ArtifactLoader] = None,
) -> List[ThroughputPoint]:
    """Measure both paths over identical request sets.

    For each micro-batch size the same ``requests`` payloads are timed
    through (a) a Python loop of single-request layer calls and (b) the
    inline service configured with that ``max_batch_size``.  Each
    measurement repeats ``repeats`` times and keeps the fastest run (the
    standard microbenchmark policy); one warmup run absorbs lazy
    allocations.  The registry is shared across points, so calibration runs
    once and every timed run hits the artifact cache.
    """
    registry = CalibrationRegistry(loader=loader)
    artifact = registry.get(model, dataset)
    layer = artifact.layer(layer_index)
    rng = np.random.default_rng(seed)
    payloads = [
        rng.normal(0.0, 1.0, size=(rows_per_request, artifact.hidden_size))
        for _ in range(requests)
    ]

    points: List[ThroughputPoint] = []
    for batch_size in batch_sizes:
        # The loop baseline is re-measured interleaved with every batched
        # measurement (not hoisted out): alternating the two paths exposes
        # them to the same CPU frequency / thermal window, which keeps the
        # reported ratio stable run to run.
        loop_seconds, batched_seconds = _interleaved_best_of(
            repeats,
            lambda: _run_loop(layer, payloads),
            lambda: _run_service(
                registry, model, dataset, layer_index, batch_size, payloads, backend
            ),
        )
        points.append(
            ThroughputPoint(
                batch_size=batch_size,
                requests=requests,
                loop_seconds=loop_seconds,
                batched_seconds=batched_seconds,
            )
        )
    return points


def _interleaved_best_of(repeats: int, run_a, run_b) -> tuple:
    """Fastest wall-clock time of each path, measured alternately.

    One warmup of each absorbs lazy allocations; the fastest of ``repeats``
    alternating measurements is kept per path (the standard microbenchmark
    policy).
    """
    run_a()
    run_b()
    times_a: List[float] = []
    times_b: List[float] = []
    for _ in range(max(1, repeats)):
        times_a.append(_timed(run_a))
        times_b.append(_timed(run_b))
    return min(times_a), min(times_b)


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def _run_loop(layer, payloads) -> None:
    for payload in payloads:
        layer(payload)


def _run_service(
    registry, model, dataset, layer_index, batch_size, payloads, backend="vectorized"
) -> None:
    service = NormalizationService(
        registry=registry,
        config=BatcherConfig(max_batch_size=batch_size, max_wait=0.0),
        threaded=False,
    )
    futures = service.submit_many(
        payloads, model, layer_index=layer_index, dataset=dataset, backend=backend
    )
    service.batcher.drain_all()
    for future in futures:
        future.result()
