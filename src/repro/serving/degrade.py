"""Adaptive graceful degradation: shed *precision* before shedding requests.

The paper's whole premise is that normalization statistics tolerate
controlled fidelity loss -- subsampled statistics (equation (4)) and
predicted ISDs for skip-eligible layers (equation (3)) trade accuracy for
cost.  That gives this serving stack a degradation ladder no generic
system has: under sustained overload an opt-in server steps requests down
those same knobs instead of rejecting them outright.

Ladder levels:

======  ==============================================================
level   meaning
======  ==============================================================
0       full fidelity -- the spec exactly as calibrated
1       forced subsampled statistics (equation (4), ``hidden // 4``
        columns or the calibrated length, whichever is smaller)
2       skip-eligible fast path -- the ISD is *predicted* (equation
        (3)) instead of computed; falls back to level 1 for layers
        with no predictor coefficients available
======  ==============================================================

Every degraded response is stamped with the level actually applied
(``NormResponse.degradation`` / the wire ``degradation`` field), so a
degraded result is never silently substituted for a full-fidelity one:
if the spec the level produces is identical to the calibrated spec, the
stamp stays at the calibrated level's number only when a real change was
made -- :func:`degraded_spec` returns the *applied* level alongside the
spec.

:class:`DegradationLadder` is the controller: it watches the admission
controller's queue-pressure signal and steps the level up under sustained
pressure / down when pressure clears, with hysteresis on both edges so a
noisy queue does not flap the fidelity of adjacent requests.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.engine.spec import EngineSpec

__all__ = ["MAX_LEVEL", "DegradationLadder", "degraded_spec"]

#: Highest ladder level (see the table above).
MAX_LEVEL = 2


def degraded_spec(
    spec: EngineSpec,
    level: int,
    predictor_source: Optional[EngineSpec] = None,
) -> Tuple[EngineSpec, int]:
    """Compile ``spec`` down to ``level``; returns ``(spec, applied_level)``.

    ``applied_level`` is the level whose knobs actually changed the spec
    -- it is what the response must be stamped with.  A level-2 request
    against a layer with no predictor coefficients (own or borrowed via
    ``predictor_source``, typically the spec of one of the artifact's
    calibrated skip-range layers) degrades to level 1 instead; a level
    whose transformation is a no-op (the calibrated spec already ran that
    way) reports the calibrated behaviour as level 0.
    """
    if not 0 <= level <= MAX_LEVEL:
        raise ValueError(f"degradation level must be in [0, {MAX_LEVEL}], got {level}")
    if level == 0:
        return spec, 0

    applied = spec
    if level >= 2:
        skipped = _force_skipped(spec, predictor_source)
        if skipped is not None:
            if skipped == spec:
                return spec, 0
            return skipped, 2
        # No predictor coefficients anywhere: the fast path does not
        # exist for this layer, fall through to level 1.

    target = max(1, spec.hidden_size // 4)
    if spec.subsample_length is not None:
        target = min(target, spec.subsample_length)
    applied = spec.with_overrides(subsample_length=target)
    if applied == spec:
        return spec, 0
    return applied, 1


def _force_skipped(
    spec: EngineSpec, predictor_source: Optional[EngineSpec]
) -> Optional[EngineSpec]:
    """``spec`` with ``skipped=True``, or ``None`` without coefficients."""
    if spec.skipped:
        return spec
    if spec.predictor_anchor_log_isd is not None:
        source = spec
    elif (
        predictor_source is not None
        and predictor_source.predictor_anchor_log_isd is not None
    ):
        source = predictor_source
    else:
        return None
    # Extend the coefficient window to cover this layer: equation (3)
    # extrapolates from the anchor, and the borrowed window may have been
    # calibrated for a different skip range.
    last = max(int(source.predictor_last_layer), spec.layer_index)
    anchor = min(int(source.predictor_anchor_layer), spec.layer_index)
    return spec.with_overrides(
        skipped=True,
        predictor_anchor_layer=anchor,
        predictor_last_layer=last,
        predictor_decay=source.predictor_decay,
        predictor_anchor_log_isd=source.predictor_anchor_log_isd,
    )


class DegradationLadder:
    """Hysteresis controller stepping the ladder level with queue pressure.

    ``observe(pressure)`` is called once per admitted request with the
    admission controller's queue occupancy (0.0 empty .. 1.0 at the shed
    bound).  The level steps **up** after ``up_after`` consecutive
    observations above ``high_watermark`` and **down** after
    ``down_after`` consecutive observations below ``low_watermark``; the
    dead band between the watermarks holds the level steady.  Down is
    slower than up by default: recovering fidelity too eagerly re-enters
    overload immediately.

    Thread-safe; shared by every connection's reader thread.
    """

    def __init__(
        self,
        max_level: int = MAX_LEVEL,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        up_after: int = 8,
        down_after: int = 32,
    ):
        if not 0 <= max_level <= MAX_LEVEL:
            raise ValueError(f"max_level must be in [0, {MAX_LEVEL}], got {max_level}")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError(
                f"need 0 <= low_watermark < high_watermark <= 1, got "
                f"{low_watermark!r} / {high_watermark!r}"
            )
        if up_after < 1 or down_after < 1:
            raise ValueError("up_after and down_after must be >= 1")
        self.max_level = max_level
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.up_after = up_after
        self.down_after = down_after
        self._lock = threading.Lock()
        self._level = 0
        self._above = 0
        self._below = 0
        self._step_ups = 0
        self._step_downs = 0
        self._degraded_responses = [0] * (MAX_LEVEL + 1)

    @property
    def level(self) -> int:
        """The ladder level new requests are admitted at."""
        with self._lock:
            return self._level

    def observe(self, pressure: float) -> int:
        """Feed one pressure sample; returns the level to apply."""
        with self._lock:
            if pressure >= self.high_watermark:
                self._above += 1
                self._below = 0
                if self._above >= self.up_after and self._level < self.max_level:
                    self._level += 1
                    self._step_ups += 1
                    self._above = 0
            elif pressure <= self.low_watermark:
                self._below += 1
                self._above = 0
                if self._below >= self.down_after and self._level > 0:
                    self._level -= 1
                    self._step_downs += 1
                    self._below = 0
            else:
                self._above = 0
                self._below = 0
            return self._level

    def record_applied(self, applied_level: int) -> None:
        """Count one response stamped with ``applied_level``."""
        with self._lock:
            self._degraded_responses[applied_level] += 1

    def snapshot(self) -> Dict[str, Any]:
        """Counters for the ``degradation`` telemetry section."""
        with self._lock:
            return {
                "level": self._level,
                "max_level": self.max_level,
                "step_ups": self._step_ups,
                "step_downs": self._step_downs,
                "responses_by_level": {
                    str(lvl): count
                    for lvl, count in enumerate(self._degraded_responses)
                    if count or lvl == 0
                },
            }

    def __repr__(self) -> str:
        return f"DegradationLadder(level={self.level}, max_level={self.max_level})"
