"""Continuous cross-connection batching scheduler.

The PR-1 :class:`~repro.serving.batcher.MicroBatcher` releases a batch on
fixed triggers: a bucket filling to ``max_batch_size`` or the oldest head
aging past ``max_wait``.  Below saturation that *adds* latency -- a lone
request always waits out ``max_wait`` hoping for company that never comes.

:class:`ContinuousBatcher` replaces the triggers with an engine-tick
discipline: whenever the engine is free, drain the best releasable batch
immediately.  Requests only queue while a batch is executing, which is
exactly the window in which coalescing is free -- continuous batching
never trades latency for batch size, it only harvests batching that
concurrency already paid for.  Because every server connection submits
into one scheduler, batches form *across* connections each tick.

Bucket selection is earliest-deadline-first with an aging bound:

``urgency(head) = min(deadline_at, enqueued_at + aging_window)``

and the bucket whose head has the smallest urgency wins the tick.  The
``enqueued_at + aging_window`` term is the starvation-freedom guarantee:
a request with no (or a distant) deadline acquires an urgency bound that
is *fixed* at enqueue time, while every later arrival's bound is strictly
larger -- so under a sustained flood of hot-bucket traffic the oldest
bucket still wins every tick after ``aging_window`` seconds of waiting.

Deadline expiry is enforced at release time: a head whose ``deadline_at``
has passed is shed with a typed
:class:`~repro.api.envelopes.DeadlineExceededError` *before* execution --
the engine never burns a tick on work nobody is waiting for.

Batch *composition* is inherited unchanged from the base class (same
bucket, ``max_batch_size`` / ``max_batch_rows`` caps), and batch
composition never affects outputs (row-independent kernels, the PR-1
golden contract) -- so the continuous scheduler is bit-identical to the
micro-batcher on every successfully served request.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.api.envelopes import DeadlineExceededError
from repro.serving.batcher import (
    BatcherConfig,
    BucketKey,
    ExecuteFn,
    MicroBatcher,
    PendingRequest,
)
from repro.serving.request import RequestKey


class ContinuousBatcher(MicroBatcher):
    """Deadline-aware, starvation-free continuous batching scheduler.

    Drop-in replacement for :class:`MicroBatcher` (same submit / drain /
    start / stop surface); only batch *release* policy differs.

    Parameters
    ----------
    execute, config, clock:
        As for :class:`MicroBatcher`.
    aging_window:
        Seconds after which a deadline-less (or distant-deadline) request
        becomes at least as urgent as any deadline could make it.  Bounds
        worst-case queueing delay under adversarial hot-bucket floods.
    """

    _THREAD_NAME = "haan-continuous-batcher"

    def __init__(
        self,
        execute: ExecuteFn,
        config: Optional[BatcherConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        aging_window: float = 0.020,
    ):
        if aging_window <= 0:
            raise ValueError("aging_window must be positive")
        super().__init__(execute, config, clock)
        self.aging_window = aging_window
        #: Requests shed at release time because their deadline expired.
        self.requests_shed = 0

    # -- batch formation ---------------------------------------------------

    def _urgency(self, head: PendingRequest) -> float:
        """Scheduling priority of a bucket head (smaller = sooner)."""
        aged = head.enqueued_at + self.aging_window
        deadline = head.deadline_at
        return aged if deadline is None else min(deadline, aged)

    def _shed_expired_locked(self, queue, now: float) -> List[PendingRequest]:
        """Pop expired requests off a queue head; caller resolves them."""
        expired: List[PendingRequest] = []
        while queue and (
            queue[0].deadline_at is not None and queue[0].deadline_at <= now
        ):
            expired.append(queue.popleft())
        return expired

    @staticmethod
    def _fail_expired(expired: List[PendingRequest]) -> None:
        for pending in expired:
            budget_ms = pending.request.deadline_ms
            pending.set_exception(
                DeadlineExceededError(
                    f"deadline_ms={budget_ms:g} expired before request "
                    f"{pending.request.request_id} reached the engine"
                )
            )

    def _pop_batch_locked(
        self, now: float, force: bool
    ) -> Tuple[Optional[Tuple[RequestKey, List[PendingRequest], int]], Optional[float]]:
        """Pop the most urgent releasable batch, shedding expired heads.

        Unlike the base class this never returns a wait hint: the engine
        tick *is* the trigger, so whenever anything is queued a batch is
        released immediately (``force`` is irrelevant).  An empty return
        means the queues are truly empty and the worker should block until
        the next submit.

        Expired requests are failed inside the scheduling pass (their
        ``set_exception`` fires done-callbacks, which must not block -- the
        :class:`~repro.serving.batcher.ResponseFuture` contract) so a
        deadline-blown head can never delay, nor ride along with, live
        work.
        """
        shed: List[PendingRequest] = []
        try:
            while True:
                best_bucket: Optional[BucketKey] = None
                best_urgency = float("inf")
                for bucket, queue in self._queues.items():
                    if not queue:
                        continue
                    urgency = self._urgency(queue[0])
                    if urgency < best_urgency:
                        best_bucket, best_urgency = bucket, urgency
                if best_bucket is None:
                    return None, None
                queue = self._queues[best_bucket]
                shed.extend(self._shed_expired_locked(queue, now))
                if not queue:
                    del self._queues[best_bucket]
                    continue  # whole bucket expired; rescore the rest
                batch: List[PendingRequest] = [queue.popleft()]
                rows = batch[0].request.num_rows
                while queue and len(batch) < self.config.max_batch_size:
                    head = queue[0]
                    if head.deadline_at is not None and head.deadline_at <= now:
                        shed.append(queue.popleft())
                        continue
                    if rows + head.request.num_rows > self.config.max_batch_rows:
                        break
                    batch.append(queue.popleft())
                    rows += head.request.num_rows
                if not queue:
                    del self._queues[best_bucket]
                return (best_bucket[0], batch, rows), None
        finally:
            if shed:
                self.requests_shed += len(shed)
                self._fail_expired(shed)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Scheduler counters for the telemetry ``scheduler`` section."""
        with self._cond:
            pending = sum(len(q) for q in self._queues.values())
            buckets = len(self._queues)
        return {
            "policy": "continuous",
            "aging_window_ms": self.aging_window * 1000.0,
            "pending": pending,
            "buckets": buckets,
            "batches_executed": self.batches_executed,
            "requests_executed": self.requests_executed,
            "requests_shed": self.requests_shed,
        }
