"""`NormalizationService`: the serving front door.

Accepts single, bulk and streaming normalization requests, coalesces them
through the :class:`~repro.serving.batcher.MicroBatcher`, resolves each
micro-batch against a :class:`~repro.serving.registry.CalibrationRegistry`
artifact, and executes the layer's compiled
:class:`~repro.engine.registry.Engine` on the backend the request selected
(``vectorized`` by default) -- one ndarray call per batch instead of one
per request.  Outputs are bit-identical to running every request alone
through the per-request layer regardless of backend (the golden-model
contract ``tests/test_serving.py`` / ``tests/test_engine.py`` enforce),
and telemetry tags every batch with the backend that ran it.

Two execution modes:

* **threaded** (default): a background worker drains the queues; callers
  block on futures and the latency/size triggers of the batcher apply.
* **inline** (``threaded=False``): nothing runs until the caller drains;
  deterministic, used by tests and benchmarks.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.engine.registry import validate_backend_name
from repro.engine.spec import spec_for_layer
from repro.llm.hooks import ActivationContext, scatter_isd, stack_anchor_isds
from repro.numerics.kernels import KernelWorkspace
from repro.serving.degrade import MAX_LEVEL, degraded_spec
from repro.serving.batcher import (
    BatcherConfig,
    MicroBatcher,
    PendingRequest,
    ResponseFuture,
)
from repro.serving.registry import CalibrationRegistry
from repro.serving.request import NormRequest, NormResponse, RequestKey
from repro.serving.telemetry import ServingTelemetry


class NormalizationService:
    """Batched normalization serving runtime."""

    def __init__(
        self,
        registry: Optional[CalibrationRegistry] = None,
        config: Optional[BatcherConfig] = None,
        telemetry: Optional[ServingTelemetry] = None,
        threaded: bool = True,
        scheduler: str = "micro",
        aging_window: float = 0.020,
    ):
        # `is not None`, not truthiness: an empty registry has len() == 0.
        self.registry = registry if registry is not None else CalibrationRegistry()
        self.telemetry = telemetry if telemetry is not None else ServingTelemetry()
        # Per-service scratch pool for the fused kernel.  Everything a
        # response keeps -- output rows, mean, isd -- lives in per-batch
        # result arrays, so pooled scratch can never leak into a response
        # across batches.  The execute lock serializes batch execution:
        # normally batches already run one at a time (the worker thread, or
        # the inline-draining caller), but a caller manually draining a
        # *threaded* service would otherwise share the workspace with the
        # worker mid-kernel and corrupt both batches.
        self._workspace = KernelWorkspace()
        self._execute_lock = threading.Lock()
        # Engines compiled for degraded requests (forced subsampling /
        # forced skip fast path): the layer's own engine cache only knows
        # its calibrated spec, so degraded variants live here, keyed by
        # the full request key.  Guarded by the execute lock (the only
        # place the cache is read or written).
        self._degraded_engines = {}
        self._queue_clock = time.monotonic
        #: Optional per-batch cost-attribution hook
        #: ``(tenants, counts, cost_record) -> None`` called after a
        #: cost-modelling backend executed a micro-batch: ``tenants`` and
        #: ``counts`` are the per-request tenant names (None = anonymous)
        #: and row counts, in batch order, and ``cost_record`` is the
        #: batch's :class:`~repro.engine.backends.NormCostRecord`.  The
        #: tenancy ledger wires itself here (``haan-serve --tenants``) to
        #: split modelled cycles/energy across tenants exactly.
        self.cost_observer = None
        if scheduler == "micro":
            self.batcher = MicroBatcher(
                self._execute_batch, config, clock=self._queue_clock
            )
        elif scheduler == "continuous":
            from repro.serving.continuous import ContinuousBatcher

            self.batcher = ContinuousBatcher(
                self._execute_batch,
                config,
                clock=self._queue_clock,
                aging_window=aging_window,
            )
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick 'micro' (fixed "
                f"size+wait triggers) or 'continuous' (engine-tick draining, "
                f"deadline-aware)"
            )
        self.scheduler = scheduler
        snapshot = getattr(self.batcher, "snapshot", None)
        if snapshot is not None:
            self.telemetry.attach_section("scheduler", snapshot)
        self._threaded = threaded
        if threaded:
            self.batcher.start()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop the batcher (flushing every queued request) in both modes.

        ``MicroBatcher.stop`` handles the never-started inline case too, so
        a post-close submit raises instead of queueing a request nothing
        will ever drain.
        """
        self.batcher.stop()

    def __enter__(self) -> "NormalizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request API -------------------------------------------------------

    def submit(
        self,
        payload: np.ndarray,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        context: Optional[ActivationContext] = None,
        degrade: int = 0,
        tenant: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> ResponseFuture:
        """Enqueue one request; returns a future of :class:`NormResponse`.

        ``backend`` selects the execution backend per request
        (:func:`repro.engine.registry.available_backends` lists the valid
        names) and ``accelerator`` optionally pins a named
        :class:`AcceleratorConfig` for cost-modelling backends; requests
        only coalesce with requests sharing both.  ``degrade`` runs the
        request at a :mod:`~repro.serving.degrade` ladder level (the
        response is stamped with the level actually applied).  Unknown
        backend, model or accelerator names fail *here*, synchronously,
        with the registry contents in the message -- never deep inside
        the batch executor.  ``tenant`` names the account this request is
        metered against (attribution only; it never affects execution or
        batching).
        """
        key = RequestKey(
            model=model,
            layer_index=layer_index,
            dataset=dataset,
            reference=reference,
            backend=backend,
            accelerator=accelerator,
            degrade=degrade,
        )
        self._validate_key(key)
        return self.batcher.submit(
            NormRequest(
                key=key,
                payload=payload,
                context=context,
                tenant=tenant,
                deadline_ms=deadline_ms,
            )
        )

    def submit_many(
        self,
        payloads: Sequence[np.ndarray],
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        context: Optional[ActivationContext] = None,
        degrade: int = 0,
        tenant: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[ResponseFuture]:
        """Enqueue a burst of requests under one scheduler lock acquisition."""
        key = RequestKey(
            model=model,
            layer_index=layer_index,
            dataset=dataset,
            reference=reference,
            backend=backend,
            accelerator=accelerator,
            degrade=degrade,
        )
        self._validate_key(key)
        return self.batcher.submit_many(
            [
                NormRequest(
                    key=key,
                    payload=payload,
                    context=context,
                    tenant=tenant,
                    deadline_ms=deadline_ms,
                )
                for payload in payloads
            ]
        )

    def _validate_key(self, key: RequestKey) -> None:
        """Front-door name validation: backend, model, accelerator.

        Each check raises ``ValueError`` listing the registered names.
        Model validation is skipped when the registry's loadable set is
        unknowable (custom loaders); backend names always validate against
        the engine registry.
        """
        validate_backend_name(key.backend)
        self.registry.validate_model(key.model)
        if not 0 <= key.degrade <= MAX_LEVEL:
            raise ValueError(
                f"degrade level {key.degrade} out of range; the ladder has "
                f"levels 0..{MAX_LEVEL}"
            )
        if key.accelerator is not None:
            from repro.hardware.configs import resolve_accelerator_config

            resolve_accelerator_config(key.accelerator)

    def normalize(self, payload: np.ndarray, model: str, **kwargs) -> NormResponse:
        """Normalize one tensor synchronously."""
        future = self.submit(payload, model, **kwargs)
        if not self._threaded:
            self.batcher.drain_all()
        return future.result()

    def normalize_many(
        self, payloads: Sequence[np.ndarray], model: str, **kwargs
    ) -> List[NormResponse]:
        """Normalize a bulk of independent tensors, coalesced into batches."""
        futures = self.submit_many(payloads, model, **kwargs)
        if not self._threaded:
            self.batcher.drain_all()
        return [future.result() for future in futures]

    def stream(
        self,
        chunks: Iterable[np.ndarray],
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        context: Optional[ActivationContext] = None,
        degrade: int = 0,
        tenant: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Iterator[NormResponse]:
        """Normalize a stream of activation chunks, yielding results in order.

        By default every chunk gets its own fresh
        :class:`ActivationContext` (chunks are independent token groups, so
        cross-layer ISD state must stay per-chunk).  Pass ``context`` to
        share one across all chunks -- the batched equivalent of calling the
        layer sequentially with a shared context, which is only meaningful
        when the stream re-sends the *same* tokens through successive
        layers one chunk at a time: like the sequential per-request path, a
        later chunk's stored ISD overwrites an earlier chunk's.
        """
        futures = [
            self.submit(
                chunk,
                model,
                layer_index=layer_index,
                dataset=dataset,
                reference=reference,
                backend=backend,
                accelerator=accelerator,
                context=context if context is not None else ActivationContext(),
                degrade=degrade,
                tenant=tenant,
                deadline_ms=deadline_ms,
            )
            for chunk in chunks
        ]
        if not self._threaded:
            self.batcher.drain_all()
        for future in futures:
            yield future.result()

    # -- batch execution ---------------------------------------------------

    def _execute_batch(
        self, key: RequestKey, batch: List[PendingRequest], total_rows: int
    ) -> None:
        """Resolve one micro-batch against the registry and run the kernel."""
        with self._execute_lock:
            self._execute_batch_locked(key, batch, total_rows)

    def _degraded_engine(self, artifact, layer, key: RequestKey):
        """``(engine, applied_level)`` for a degraded request key.

        Degraded engines are compiled from the layer's calibrated spec with
        the ladder level's knobs forced (:func:`degraded_spec`) and cached
        per full key -- the layer's own engine cache only ever holds the
        calibrated spec.  Called under the execute lock.
        """
        cache_key = key
        cached = self._degraded_engines.get(cache_key)
        if cached is not None:
            return cached
        spec = spec_for_layer(layer)
        source = None
        if key.degrade >= 2 and spec.predictor_anchor_log_isd is None:
            # Borrow equation (3) coefficients from one of the artifact's
            # calibrated skip-range layers (any will do: the window is
            # re-anchored onto this layer by degraded_spec).
            for other in artifact.haan_layers:
                predictor = getattr(other, "predictor", None)
                if predictor is not None and predictor.covers(other.layer_index):
                    source = spec_for_layer(other)
                    break
        dspec, applied_level = degraded_spec(spec, key.degrade, predictor_source=source)
        if applied_level == 0:
            engine = layer.engine_for(key.backend, accelerator=key.accelerator)
        else:
            from repro.engine.registry import build

            kwargs = {}
            if key.accelerator is not None:
                from repro.hardware.configs import resolve_accelerator_config

                kwargs["accelerator_config"] = resolve_accelerator_config(key.accelerator)
            try:
                engine = build(
                    dspec,
                    backend=key.backend,
                    gamma=layer.gamma,
                    beta=layer.beta,
                    **kwargs,
                )
            except TypeError as error:
                raise ValueError(
                    f"backend {key.backend!r} does not accept an accelerator "
                    f"config; pick a cost-modelling backend (simulated*) "
                    f"or drop accelerator={key.accelerator!r}"
                ) from error
        self._degraded_engines[cache_key] = (engine, applied_level)
        return engine, applied_level

    def _execute_batch_locked(
        self, key: RequestKey, batch: List[PendingRequest], total_rows: int
    ) -> None:
        try:
            artifact = self.registry.get(key.model, key.dataset)
            layer = artifact.layer(key.layer_index, reference=key.reference)
            # The layer's compiled plan + the request's backend name resolve
            # through the engine registry; the name itself was validated at
            # submit() time, so failures here mean construction problems
            # (e.g. an accelerator selection on a cost-less backend).
            if key.degrade == 0:
                engine = layer.engine_for(key.backend, accelerator=key.accelerator)
                applied_level = 0
            else:
                engine, applied_level = self._degraded_engine(artifact, layer, key)
        except Exception as error:  # noqa: BLE001 -- fail the whole batch
            self.telemetry.observe_error()
            for pending in batch:
                pending.set_exception(error)
            return

        good: List[PendingRequest] = []
        rows_list: List[np.ndarray] = []
        for pending in batch:
            rows = pending.request.rows
            if rows.shape[1] != layer.hidden_size:
                total_rows -= rows.shape[0]
                pending.set_exception(
                    ValueError(
                        f"payload width {rows.shape[1]} does not match hidden "
                        f"size {layer.hidden_size} of {key.model}/{key.dataset} "
                        f"layer {key.layer_index}"
                    )
                )
            else:
                good.append(pending)
                rows_list.append(rows)
        if not good:
            return

        counts = [rows.shape[0] for rows in rows_list]
        contexts = [pending.request.context for pending in good]
        starts = np.cumsum([0] + counts[:-1])
        # Stack the request segments into pooled staging instead of
        # `np.concatenate`: the size-bucketed queues make batch shapes
        # recur, so steady-state serving re-fills the same buffer.  Only
        # the output matrix (owned by the responses) is allocated per batch.
        stacked = self._workspace.matrix("service.staging", total_rows, layer.hidden_size)
        np.concatenate(rows_list, axis=0, out=stacked)
        output = np.empty((total_rows, layer.hidden_size))
        spec = engine.spec
        anchor = None
        if spec.skipped:
            anchor = stack_anchor_isds(contexts, spec.predictor_anchor_layer, counts)

        released_at = self._queue_clock()
        start_time = time.perf_counter()
        try:
            output, mean, isd = engine.run(
                stacked, starts, anchor, workspace=self._workspace, out=output
            )
        except Exception as error:  # noqa: BLE001
            self.telemetry.observe_error()
            for pending in good:
                pending.set_exception(error)
            return
        batch_seconds = time.perf_counter() - start_time
        # Cost-modelling backends (`simulated` and its accelerator-pinned
        # variants) record one NormCostRecord per run; fold it into the
        # telemetry snapshot so `haan-serve --backend simulated` reports
        # modelled cycles/energy alongside wall clock.  Reading right after
        # the run under the execute lock ties the record to this batch.
        cost_record = getattr(engine.backend, "last_record", None)
        scatter_isd(contexts, layer.layer_index, isd, counts)

        # Path flags come from the compiled plan -- configuration, not
        # per-call mutable state: services sharing a registry may run the
        # same layer object concurrently.
        was_predicted, was_subsampled = engine.path_flags()
        queue_waits = [released_at - pending.enqueued_at for pending in good]
        batch_size = len(good)
        # Responses are disjoint row views of the batch arrays: a caller
        # mutating its own output can never touch a sibling's rows (the
        # cost is that a live response pins its batch's buffer).  The
        # statistics are additionally frozen read-only, and contexts store
        # copies (scatter_isd), so no response aliases cross-request or
        # cross-layer state.
        mean.flags.writeable = False
        isd.flags.writeable = False
        offset = 0
        for pending, count, wait in zip(good, counts, queue_waits):
            segment = slice(offset, offset + count)
            offset += count
            request = pending.request
            pending.set_result(
                NormResponse(  # positional: field order of NormResponse
                    request.request_id,
                    key,
                    output[segment].reshape(request.payload.shape),
                    mean[segment],
                    isd[segment],
                    was_predicted,
                    was_subsampled,
                    batch_size,
                    wait,
                    batch_seconds,
                    applied_level,
                )
            )
        self.telemetry.observe_batch(
            num_requests=len(good),
            num_rows=int(stacked.shape[0]),
            queue_waits=queue_waits,
            batch_seconds=batch_seconds,
            rows_predicted=int(stacked.shape[0]) if was_predicted else 0,
            rows_subsampled=int(stacked.shape[0]) if was_subsampled else 0,
            backend=key.backend,
            cost=cost_record,
        )
        observer = self.cost_observer
        if observer is not None and cost_record is not None:
            # Per-tenant attribution of the batch's modelled cost.  The
            # observer receives the whole batch (tenant names and row
            # counts in batch order) so the split can be made *exact*:
            # summed per-tenant cycles/energy reproduce the record's
            # totals bit-for-bit, regardless of how requests shared the
            # batch.
            observer(
                [pending.request.tenant for pending in good], counts, cost_record
            )
