"""Small shared utilities (table formatting, timing)."""

from repro.utils.tables import format_table, format_markdown_table

__all__ = ["format_table", "format_markdown_table"]
