"""Plain-text and markdown table formatting for the benchmark harnesses.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; these helpers keep that output aligned and readable without
pulling in a dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(row: Sequence[object]) -> List[str]:
    return ["" if cell is None else str(cell) for cell in row]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Format rows as an aligned plain-text table."""
    str_rows = [_stringify(row) for row in rows]
    str_headers = _stringify(headers)
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for col, cell in enumerate(row):
            if col >= len(widths):
                widths.append(len(cell))
            else:
                widths[col] = max(widths[col], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[col]) for col, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(str_headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format rows as a GitHub-flavoured markdown table."""
    str_headers = _stringify(headers)
    lines = ["| " + " | ".join(str_headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in str_headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row)) + " |")
    return "\n".join(lines)
