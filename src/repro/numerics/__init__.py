"""Bit-accurate numeric formats used by the HAAN accelerator model.

The HAAN datapath (paper Section IV) mixes floating-point I/O with
fixed-point intermediate computation.  This subpackage provides:

* :mod:`repro.numerics.fixedpoint` -- signed Q-format fixed-point arithmetic
  with saturation and configurable rounding, vectorised over NumPy arrays.
* :mod:`repro.numerics.floating` -- IEEE-754 FP16/FP32 bit-level encoding and
  field extraction (sign / exponent / mantissa), required by the fast inverse
  square root derivation in Section IV-B.
* :mod:`repro.numerics.convert` -- the FP2FX and FX2FP converter units that
  appear in Figures 4 and 6 of the paper.
* :mod:`repro.numerics.fast_inv_sqrt` -- the fast inverse square root
  (constant ``0x5f3759df``) plus Newton refinement of equations (8)-(9).
* :mod:`repro.numerics.quantization` -- per-tensor symmetric INT8 / FP16 /
  FP32 quantization used by the HAAN algorithm (Section III-C).
* :mod:`repro.numerics.kernels` -- vectorized, allocation-lean fast paths
  (whole-array minifloat codec, ``int64`` fixed-point arithmetic, the fused
  HAAN normalization kernel and its :class:`KernelWorkspace` buffer pool);
  the scalar implementations above remain the golden models they are
  tested against bit for bit.
"""

from repro.numerics import kernels
from repro.numerics.kernels import KernelWorkspace, haan_normalize_rows, normalize_affine
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FloatFormat, FP16, FP32, decompose, compose
from repro.numerics.convert import FP2FXConverter, FX2FPConverter
from repro.numerics.fast_inv_sqrt import (
    FastInvSqrt,
    fast_inv_sqrt,
    newton_refine,
)
from repro.numerics.quantization import (
    DataFormat,
    QuantizationConfig,
    Quantizer,
    quantize_tensor,
    dequantize_tensor,
)
from repro.numerics.minifloat import BFLOAT16, E4M3, E5M2, MinifloatFormat, minifloat_by_name
from repro.numerics.rounding import RoundingMode, round_to_grid
from repro.numerics.lut import PiecewiseLinearLUT, exp_lut, gelu_lut, inv_sqrt_lut
from repro.numerics.error_analysis import (
    ErrorSummary,
    max_ulp_error,
    signal_to_quantization_noise_db,
    summarize_error,
)

__all__ = [
    "kernels",
    "KernelWorkspace",
    "haan_normalize_rows",
    "normalize_affine",
    "MinifloatFormat",
    "E4M3",
    "E5M2",
    "BFLOAT16",
    "minifloat_by_name",
    "RoundingMode",
    "round_to_grid",
    "PiecewiseLinearLUT",
    "inv_sqrt_lut",
    "exp_lut",
    "gelu_lut",
    "ErrorSummary",
    "summarize_error",
    "signal_to_quantization_noise_db",
    "max_ulp_error",
    "FixedPointFormat",
    "FixedPointValue",
    "FloatFormat",
    "FP16",
    "FP32",
    "decompose",
    "compose",
    "FP2FXConverter",
    "FX2FPConverter",
    "FastInvSqrt",
    "fast_inv_sqrt",
    "newton_refine",
    "DataFormat",
    "QuantizationConfig",
    "Quantizer",
    "quantize_tensor",
    "dequantize_tensor",
]
