"""Fast inverse square root with Newton refinement.

The HAAN Square Root Inverter (paper Section IV-B, Figure 5) computes
``y = 1/sqrt(x)`` from the variance using:

1. the classic bit-manipulation seed
   ``bits(y0) = 0x5f3759df - (bits(x) >> 1)`` derived from the logarithmic
   approximation of the floating-point representation (equation (8)), and
2. one Newton iteration ``y1 = y0 * (1.5 - 0.5 * x * y0^2)`` performed in
   fixed point (equation (9)); the constant ``1.5`` appears in Figure 5 as
   the fixed-point literal ``0x00C00000``.

This module provides both a pure functional form (NumPy-vectorised) and a
stateful :class:`FastInvSqrt` unit that tracks activity for the cycle and
power models, and exposes error metrics used by the ablation benchmark
(Section IV-B: "a single iteration is adequate").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Union

import numpy as np

from repro.numerics.fixedpoint import FixedPointFormat
from repro.numerics.floating import (
    FAST_INV_SQRT_MAGIC_FP16,
    FAST_INV_SQRT_MAGIC_FP32,
    FP32,
    FloatFormat,
    from_bits,
    to_bits,
)

ArrayLike = Union[np.ndarray, float, int]

#: Fixed-point constant 1.5 in Q8.24, i.e. ``0x00C00000 * 2^-23`` -- shown in
#: Figure 5 of the paper as the literal 0x00C00000 with a 23-bit fraction.
NEWTON_THREE_HALVES_CODE = 0x00C00000
NEWTON_FRACTION_BITS = 23

#: The 1.5 constant decoded once to its real value (exactly 1.5); hoisted so
#: the Newton refinement never re-derives it per call.
NEWTON_THREE_HALVES = NEWTON_THREE_HALVES_CODE * 2.0 ** (-NEWTON_FRACTION_BITS)


@lru_cache(maxsize=None)
def _magic_for(fmt: FloatFormat) -> int:
    """Return the bit-hack magic constant for the given float format.

    Cached per (frozen, hashable) format so the seed computation resolves
    the constant once instead of re-branching on every call.
    """
    if fmt.total_bits == 32:
        return FAST_INV_SQRT_MAGIC_FP32
    if fmt.total_bits == 16:
        return FAST_INV_SQRT_MAGIC_FP16
    raise ValueError(f"unsupported float format for fast inverse sqrt: {fmt.name}")


def initial_seed(x: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Bit-manipulation seed ``y0`` for ``1/sqrt(x)`` (paper equation (8)).

    Non-positive inputs produce NaN, matching the undefined behaviour of the
    hardware unit for invalid variances (the accelerator never feeds it a
    negative variance; the epsilon added by the statistics calculator keeps
    the input strictly positive).
    """
    arr = np.asarray(x, dtype=np.float64)
    bits = to_bits(arr, fmt)
    seed_bits = _magic_for(fmt) - (bits >> 1)
    seed = from_bits(seed_bits, fmt)
    return np.where(arr > 0, seed, np.nan)


def newton_refine(x: ArrayLike, y: ArrayLike, iterations: int = 1) -> np.ndarray:
    """Refine an inverse-square-root estimate with Newton's method.

    Implements equation (9): ``y_{n+1} = y_n * (1.5 - 0.5 * x * y_n^2)``.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64).copy()
    for _ in range(iterations):
        y_arr = y_arr * (1.5 - 0.5 * x_arr * y_arr * y_arr)
    return y_arr


def fast_inv_sqrt(
    x: ArrayLike,
    fmt: FloatFormat = FP32,
    newton_iterations: int = 1,
) -> np.ndarray:
    """Compute ``1/sqrt(x)`` with the bit hack plus Newton refinement."""
    seed = initial_seed(x, fmt)
    return newton_refine(x, seed, iterations=newton_iterations)


def relative_error(x: ArrayLike, fmt: FloatFormat = FP32, newton_iterations: int = 1) -> np.ndarray:
    """Relative error of the approximation vs the exact ``1/sqrt(x)``."""
    arr = np.asarray(x, dtype=np.float64)
    approx = fast_inv_sqrt(arr, fmt, newton_iterations)
    exact = 1.0 / np.sqrt(arr)
    return np.abs(approx - exact) / np.abs(exact)


@dataclass
class InvSqrtStats:
    """Activity counters for the Square Root Inverter."""

    invocations: int = 0
    newton_iterations: int = 0
    elements: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.invocations = 0
        self.newton_iterations = 0
        self.elements = 0


@dataclass
class FastInvSqrt:
    """Stateful model of the Square Root Inverter unit (paper Figure 5).

    The unit accepts a variance in fixed point, converts it to floating
    point (FX2FP), computes the bit-hack seed, then refines in fixed point
    with Newton's method using the 1.5 constant ``0x00C00000``.

    Parameters
    ----------
    float_format:
        The floating-point format of the internal seed computation.
    newton_iterations:
        Number of Newton iterations.  The paper uses a single iteration.
    newton_format:
        Fixed-point format used for the Newton refinement arithmetic.
    """

    float_format: FloatFormat = FP32
    newton_iterations: int = 1
    newton_format: FixedPointFormat = field(
        default_factory=lambda: FixedPointFormat(integer_bits=9, fraction_bits=NEWTON_FRACTION_BITS)
    )
    stats: InvSqrtStats = field(default_factory=InvSqrtStats)

    def compute(self, variance: ArrayLike) -> np.ndarray:
        """Compute the ISD ``1/sqrt(variance)`` through the hardware path.

        Models the precision of each stage: the FP seed uses the configured
        float format; the Newton update is carried out on values quantized
        to the fixed-point Newton format, including the 1.5 constant.
        """
        arr = np.asarray(variance, dtype=np.float64)
        self.stats.invocations += 1
        self.stats.elements += int(arr.size)
        self.stats.newton_iterations += self.newton_iterations * int(arr.size)

        seed = initial_seed(arr, self.float_format)
        # The Newton refinement runs in fixed point: quantize the operands.
        three_halves = NEWTON_THREE_HALVES
        y = self.newton_format.quantize(seed)
        x_fx = self.newton_format.quantize(arr)
        for _ in range(self.newton_iterations):
            y = self.newton_format.quantize(y * (three_halves - 0.5 * x_fx * y * y))
        return y

    def compute_exact(self, variance: ArrayLike) -> np.ndarray:
        """Reference ISD with no approximation, for error analysis."""
        arr = np.asarray(variance, dtype=np.float64)
        return 1.0 / np.sqrt(arr)

    def max_relative_error(self, variances: ArrayLike) -> float:
        """Worst-case relative error over a set of variances."""
        arr = np.asarray(variances, dtype=np.float64)
        approx = self.compute(arr)
        exact = self.compute_exact(arr)
        return float(np.max(np.abs(approx - exact) / np.abs(exact)))
