"""Piecewise-linear lookup-table approximation of non-linear functions.

NN-LUT [Yu et al., DAC'22] -- cited by the paper as related work on
accelerating transformer non-linearities -- replaces functions such as
``1/sqrt(x)``, ``exp`` and GELU with small piecewise-linear tables.  This
module provides that baseline so the HAAN square-root-inverter (bit hack +
Newton) can be compared against a LUT implementation in the ablation
benchmarks: accuracy per table size, and the resource cost implied by the
number of segments.

A :class:`PiecewiseLinearLUT` stores ``num_segments`` (slope, intercept)
pairs over ``[x_min, x_max]``; evaluation selects the segment by a simple
range comparison (uniform segmentation maps to a shift in hardware) and
computes ``y = slope * x + intercept`` -- one multiplier and one adder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int]


@dataclass
class PiecewiseLinearLUT:
    """Uniform-segment piecewise-linear approximation of a scalar function.

    Parameters
    ----------
    function:
        The function to approximate (vectorised over NumPy arrays).
    x_min, x_max:
        Approximation interval.  Inputs outside it clamp to the boundary
        segment, mirroring the saturating behaviour of a hardware LUT.
    num_segments:
        Number of linear segments (table entries).
    name:
        Label used in reports.
    """

    function: Callable[[np.ndarray], np.ndarray]
    x_min: float
    x_max: float
    num_segments: int
    name: str = "lut"
    slopes: np.ndarray = field(init=False, repr=False)
    intercepts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError("num_segments must be positive")
        if not self.x_max > self.x_min:
            raise ValueError("x_max must be greater than x_min")
        edges = np.linspace(self.x_min, self.x_max, self.num_segments + 1)
        left = edges[:-1]
        right = edges[1:]
        y_left = np.asarray(self.function(left), dtype=np.float64)
        y_right = np.asarray(self.function(right), dtype=np.float64)
        self.slopes = (y_right - y_left) / (right - left)
        self.intercepts = y_left - self.slopes * left
        self._edges = edges

    @property
    def segment_width(self) -> float:
        """Width of each (uniform) segment."""
        return (self.x_max - self.x_min) / self.num_segments

    def segment_index(self, x: ArrayLike) -> np.ndarray:
        """Segment selected for each input (clamped to the table range)."""
        arr = np.asarray(x, dtype=np.float64)
        index = np.floor((arr - self.x_min) / self.segment_width).astype(np.int64)
        return np.clip(index, 0, self.num_segments - 1)

    def evaluate(self, x: ArrayLike) -> np.ndarray:
        """Approximate the function at ``x`` (vectorised)."""
        arr = np.asarray(x, dtype=np.float64)
        index = self.segment_index(arr)
        return self.slopes[index] * arr + self.intercepts[index]

    __call__ = evaluate

    # -- error metrics -----------------------------------------------------------

    def max_absolute_error(self, samples: int = 4096) -> float:
        """Worst absolute error over a dense sweep of the table range."""
        xs = np.linspace(self.x_min, self.x_max, samples)
        return float(np.max(np.abs(self.evaluate(xs) - self.function(xs))))

    def max_relative_error(self, samples: int = 4096) -> float:
        """Worst relative error over a dense sweep of the table range."""
        xs = np.linspace(self.x_min, self.x_max, samples)
        exact = np.asarray(self.function(xs), dtype=np.float64)
        mask = np.abs(exact) > 1e-12
        errors = np.abs(self.evaluate(xs)[mask] - exact[mask]) / np.abs(exact[mask])
        return float(np.max(errors)) if errors.size else 0.0

    # -- hardware cost ------------------------------------------------------------

    @property
    def table_bits(self) -> int:
        """Storage bits assuming 16-bit slope and intercept per segment."""
        return self.num_segments * 2 * 16


def inv_sqrt_lut(num_segments: int = 64, x_min: float = 1e-3, x_max: float = 16.0) -> PiecewiseLinearLUT:
    """LUT approximation of ``1/sqrt(x)`` over a variance-typical range."""
    return PiecewiseLinearLUT(
        function=lambda x: 1.0 / np.sqrt(x),
        x_min=x_min,
        x_max=x_max,
        num_segments=num_segments,
        name="inv-sqrt",
    )


def exp_lut(num_segments: int = 64, x_min: float = -10.0, x_max: float = 0.0) -> PiecewiseLinearLUT:
    """LUT approximation of ``exp(x)`` over the softmax-stable range."""
    return PiecewiseLinearLUT(
        function=np.exp, x_min=x_min, x_max=x_max, num_segments=num_segments, name="exp"
    )


def gelu_lut(num_segments: int = 64, x_min: float = -6.0, x_max: float = 6.0) -> PiecewiseLinearLUT:
    """LUT approximation of the GELU activation."""

    def gelu(x: np.ndarray) -> np.ndarray:
        return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))

    return PiecewiseLinearLUT(
        function=gelu, x_min=x_min, x_max=x_max, num_segments=num_segments, name="gelu"
    )


def segments_for_tolerance(
    builder: Callable[[int], PiecewiseLinearLUT],
    relative_tolerance: float,
    max_segments: int = 4096,
) -> int:
    """Smallest power-of-two segment count meeting a relative error target.

    Doubles the table size until the tolerance is met, which is how a
    designer would size an NN-LUT style unit for a given accuracy budget.
    """
    segments = 2
    while segments <= max_segments:
        if builder(segments).max_relative_error() <= relative_tolerance:
            return segments
        segments *= 2
    raise ValueError(
        f"tolerance {relative_tolerance} not reachable within {max_segments} segments"
    )
