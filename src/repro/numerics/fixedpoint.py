"""Signed Q-format fixed-point arithmetic.

The HAAN accelerator keeps all intermediate results of the normalization
datapath in fixed point (paper Section IV: "maintaining intermediate
computational results in fixed-point representation").  This module provides
a bit-accurate, vectorised model of that arithmetic:

* :class:`FixedPointFormat` describes a signed two's-complement format with
  ``integer_bits`` bits left of the binary point (including the sign bit) and
  ``fraction_bits`` bits right of it.
* :class:`FixedPointValue` wraps a NumPy integer array holding raw codes in a
  given format and exposes add / subtract / multiply / shift operations with
  saturation, matching what a synthesised datapath would produce.

The model deliberately avoids floating point in the arithmetic core: raw
codes are 64-bit integers, so products of two 32-bit-wide formats are exact
before the final shift/saturate step, exactly as a DSP-slice multiplier
followed by a truncation stage behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.numerics import kernels

ArrayLike = Union[np.ndarray, float, int, Iterable[float]]


class FixedPointOverflowError(ArithmeticError):
    """Raised when saturation is disabled and a value exceeds the format range."""


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement Q-format.

    Parameters
    ----------
    integer_bits:
        Number of bits left of the binary point, *including* the sign bit.
        Must be at least 1.
    fraction_bits:
        Number of bits right of the binary point.  May be zero for pure
        integer formats (e.g. INT8 activations).
    saturate:
        When True (the default, and what the HAAN RTL does) out-of-range
        results clamp to the format's min/max code.  When False an
        :class:`FixedPointOverflowError` is raised instead, which is useful
        in tests that want to prove a datapath never overflows.
    """

    integer_bits: int
    fraction_bits: int
    saturate: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("integer_bits must be >= 1 (sign bit included)")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be >= 0")
        if self.total_bits > 63:
            raise ValueError(
                "formats wider than 63 bits are not representable with int64 raw codes"
            )

    @property
    def total_bits(self) -> int:
        """Total width of the format in bits."""
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_code(self) -> int:
        """Largest representable raw code."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_code(self) -> int:
        """Smallest (most negative) representable raw code."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.scale

    @property
    def resolution(self) -> float:
        """Alias of :attr:`scale`; the quantization step."""
        return self.scale

    def describe(self) -> str:
        """Human-readable Q-notation, e.g. ``Q8.24`` for 8 integer / 24 fraction bits."""
        return f"Q{self.integer_bits}.{self.fraction_bits}"

    # -- encode / decode -------------------------------------------------

    def encode(self, values: ArrayLike) -> np.ndarray:
        """Convert real values to raw integer codes (round-to-nearest-even).

        Out-of-range values saturate (or raise, per :attr:`saturate`).
        NaNs are mapped to zero, matching the behaviour of the FP2FX unit in
        the accelerator which treats non-finite inputs as zero.
        """
        arr = np.asarray(values, dtype=np.float64)
        scaled = arr * (1 << self.fraction_bits)
        scaled = np.where(np.isnan(scaled), 0.0, scaled)
        codes = np.rint(scaled)
        return self._bound(codes)

    def decode(self, codes: ArrayLike) -> np.ndarray:
        """Convert raw integer codes back to real values."""
        arr = np.asarray(codes, dtype=np.int64)
        return arr.astype(np.float64) * self.scale

    def quantize(self, values: ArrayLike) -> np.ndarray:
        """Round real values to the nearest representable value."""
        return self.decode(self.encode(values))

    def _bound(self, codes: np.ndarray) -> np.ndarray:
        """Clamp (or validate) raw codes to the representable range."""
        hi = float(self.max_code)
        lo = float(self.min_code)
        if self.saturate:
            bounded = np.clip(codes, lo, hi)
        else:
            if np.any(codes > hi) or np.any(codes < lo):
                raise FixedPointOverflowError(
                    f"value outside range of {self.describe()}"
                )
            bounded = codes
        return bounded.astype(np.int64)

    # -- convenience constructors ----------------------------------------

    @classmethod
    def int8(cls) -> "FixedPointFormat":
        """Pure INT8 format used for quantized activations."""
        return cls(integer_bits=8, fraction_bits=0)

    @classmethod
    def accumulator(cls) -> "FixedPointFormat":
        """Wide accumulator format used inside the adder trees (Q16.16)."""
        return cls(integer_bits=16, fraction_bits=16)

    @classmethod
    def statistics(cls) -> "FixedPointFormat":
        """Format used for mean/variance intermediates (Q12.20)."""
        return cls(integer_bits=12, fraction_bits=20)


class FixedPointValue:
    """A NumPy array of raw codes tagged with its :class:`FixedPointFormat`.

    All arithmetic is performed on raw integer codes so that the model is
    bit-accurate: two values in the same format add exactly, multiplication
    produces the full-precision product and then truncates back to the
    format, and shifts mirror hardware barrel shifters.
    """

    __slots__ = ("fmt", "codes")

    def __init__(self, fmt: FixedPointFormat, codes: np.ndarray):
        self.fmt = fmt
        self.codes = np.asarray(codes, dtype=np.int64)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_real(cls, fmt: FixedPointFormat, values: ArrayLike) -> "FixedPointValue":
        """Encode real values into a fixed-point value."""
        return cls(fmt, fmt.encode(values))

    @classmethod
    def zeros(cls, fmt: FixedPointFormat, shape) -> "FixedPointValue":
        """An all-zero value of the given shape."""
        return cls(fmt, np.zeros(shape, dtype=np.int64))

    # -- views ------------------------------------------------------------

    def to_real(self) -> np.ndarray:
        """Decode to real (float64) values."""
        return self.fmt.decode(self.codes)

    @property
    def shape(self):
        return self.codes.shape

    def __len__(self) -> int:
        return len(self.codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FixedPointValue({self.fmt.describe()}, {self.to_real()!r})"

    # -- arithmetic --------------------------------------------------------

    def _check_same_format(self, other: "FixedPointValue") -> None:
        if self.fmt != other.fmt:
            raise ValueError(
                f"format mismatch: {self.fmt.describe()} vs {other.fmt.describe()}"
            )

    def add(self, other: "FixedPointValue") -> "FixedPointValue":
        """Saturating addition of two values in the same format."""
        self._check_same_format(other)
        raw = self.codes + other.codes
        return FixedPointValue(self.fmt, self.fmt._bound(raw.astype(np.float64)))

    def subtract(self, other: "FixedPointValue") -> "FixedPointValue":
        """Saturating subtraction of two values in the same format."""
        self._check_same_format(other)
        raw = self.codes - other.codes
        return FixedPointValue(self.fmt, self.fmt._bound(raw.astype(np.float64)))

    def multiply(self, other: "FixedPointValue", out_fmt: FixedPointFormat | None = None) -> "FixedPointValue":
        """Multiply two fixed-point values.

        The full-precision product carries ``fa + fb`` fraction bits; it is
        then shifted right to the output format's fraction width (truncating
        toward negative infinity, like a hardware arithmetic shift) and
        saturated.
        """
        out_fmt = out_fmt or self.fmt
        shift = self.fmt.fraction_bits + other.fmt.fraction_bits - out_fmt.fraction_bits
        if self.fmt.total_bits + other.fmt.total_bits <= 64:
            # The full product provably fits int64: run the vectorized kernel.
            shifted = kernels.fixed_point_multiply_codes(self.codes, other.codes, shift)
        else:
            shifted = self._multiply_shift_reference(other.codes, shift)
        return FixedPointValue(out_fmt, out_fmt._bound(shifted))

    def multiply_reference(
        self, other: "FixedPointValue", out_fmt: FixedPointFormat | None = None
    ) -> "FixedPointValue":
        """Golden-model multiply: exact Python-``int`` products and shifts.

        Retained as the reference the vectorized :meth:`multiply` kernel is
        tested against bit for bit (and the fallback for operand formats
        whose product could overflow ``int64``).
        """
        out_fmt = out_fmt or self.fmt
        shift = self.fmt.fraction_bits + other.fmt.fraction_bits - out_fmt.fraction_bits
        shifted = self._multiply_shift_reference(other.codes, shift)
        return FixedPointValue(out_fmt, out_fmt._bound(shifted))

    def _multiply_shift_reference(self, other_codes: np.ndarray, shift: int) -> np.ndarray:
        """Scalar product/shift loop over exact Python integers."""
        product = self.codes.astype(object) * other_codes.astype(object)
        if shift > 0:
            shifted = np.array([int(p) >> shift for p in np.ravel(product)], dtype=np.float64)
        elif shift < 0:
            shifted = np.array([int(p) << (-shift) for p in np.ravel(product)], dtype=np.float64)
        else:
            shifted = np.array([float(int(p)) for p in np.ravel(product)], dtype=np.float64)
        return shifted.reshape(np.shape(product))

    def multiply_scalar(self, scalar: float, out_fmt: FixedPointFormat | None = None) -> "FixedPointValue":
        """Multiply by a real scalar (e.g. the precomputed ``1/N`` constant)."""
        out_fmt = out_fmt or self.fmt
        scalar_fx = FixedPointValue.from_real(self.fmt, scalar)
        # Broadcast the scalar over this value's shape.
        scalar_codes = np.broadcast_to(scalar_fx.codes, self.codes.shape)
        return self.multiply(FixedPointValue(self.fmt, scalar_codes.copy()), out_fmt)

    def shift_right(self, amount: int) -> "FixedPointValue":
        """Arithmetic right shift of the raw codes (divide by power of two)."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        return FixedPointValue(self.fmt, (self.codes >> amount).astype(np.int64))

    def shift_left(self, amount: int) -> "FixedPointValue":
        """Left shift with saturation (multiply by power of two)."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        raw = self.codes.astype(np.float64) * float(1 << amount)
        return FixedPointValue(self.fmt, self.fmt._bound(raw))

    def negate(self) -> "FixedPointValue":
        """Two's-complement negation with saturation."""
        raw = -self.codes.astype(np.float64)
        return FixedPointValue(self.fmt, self.fmt._bound(raw))

    def cast(self, out_fmt: FixedPointFormat) -> "FixedPointValue":
        """Re-encode into another format (realign binary point, saturate)."""
        shift = out_fmt.fraction_bits - self.fmt.fraction_bits
        raw = self.codes.astype(np.float64) * (2.0 ** shift)
        return FixedPointValue(out_fmt, out_fmt._bound(np.rint(raw)))

    def sum(self) -> "FixedPointValue":
        """Reduce the value with an exact integer sum, then saturate.

        Mirrors an adder tree whose internal width is wide enough not to
        overflow (the paper's accelerator sizes the tree for the embedding
        dimension), with saturation only at the output register.  Uses
        ``int64`` accumulation with an explicit overflow bound check
        (chunked partial sums when the worst case could exceed ``int64``)
        instead of a ``dtype=object`` reduction.
        """
        total = float(kernels.exact_code_sum(self.codes, self.fmt.total_bits))
        return FixedPointValue(self.fmt, self.fmt._bound(np.array(total)))

    def sum_reference(self) -> "FixedPointValue":
        """Golden-model reduction over exact Python integers (object dtype)."""
        total = float(int(np.sum(self.codes, dtype=object)))
        return FixedPointValue(self.fmt, self.fmt._bound(np.array(total)))

    def mean(self) -> "FixedPointValue":
        """Exact sum followed by division by the element count.

        The division by ``N`` is modelled as multiplication with the
        precomputed reciprocal, as in the paper ("1/N can be precomputed and
        stored in memory").
        """
        n = self.codes.size
        total = self.sum()
        return total.multiply_scalar(1.0 / n)
