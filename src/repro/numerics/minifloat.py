"""Generic minifloat codec: FP8 (E4M3 / E5M2) and bfloat16.

The latency-breakdown motivation of the paper (Figure 1(b)) applies FP8
quantization to the linear layers of the LLM, which is what turns the
normalization into the dominant cost.  NumPy has no FP8 dtype, so this
module provides a bit-accurate software codec for arbitrary small
exponent/mantissa splits, following the OCP FP8 conventions:

* **E4M3** -- 4 exponent bits, 3 mantissa bits, bias 7.  No infinities; the
  all-ones exponent with all-ones mantissa encodes NaN, every other code is
  a finite number (extended dynamic range, max 448).
* **E5M2** -- 5 exponent bits, 2 mantissa bits, bias 15.  IEEE-like with
  infinities and NaNs (max finite 57344).
* **bfloat16** -- 8 exponent bits, 7 mantissa bits; the FP32 dynamic range
  with reduced precision.

Encoding uses round-to-nearest-even on the mantissa, handles subnormals and
saturates overflow to the largest finite value (the usual behaviour of FP8
hardware converters which avoid producing infinities from casts).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Union

import numpy as np

from repro.numerics import kernels

ArrayLike = Union[np.ndarray, float, int, Iterable[float]]


@dataclass(frozen=True)
class MinifloatFormat:
    """Parameters of a small binary floating-point format.

    Attributes
    ----------
    name:
        Human-readable name ("e4m3", "e5m2", "bfloat16").
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Width of the mantissa (fraction) field.
    ieee_special_values:
        When True the all-ones exponent encodes infinities/NaNs as in IEEE
        754 (E5M2, bfloat16).  When False only the all-ones code is NaN and
        the rest of the top exponent row is used for finite values (E4M3).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    ieee_special_values: bool = True

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError("minifloat formats need at least 2 exponent bits")
        if self.mantissa_bits < 1:
            raise ValueError("minifloat formats need at least 1 mantissa bit")

    @property
    def total_bits(self) -> int:
        """Storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent_field(self) -> int:
        """Largest raw exponent field value."""
        return (1 << self.exponent_bits) - 1

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        if self.ieee_special_values:
            exp = self.max_exponent_field - 1 - self.bias
            mantissa = 2.0 - 2.0 ** (-self.mantissa_bits)
        else:
            # E4M3-style: the top exponent row is finite except the NaN code
            # (all-ones mantissa), so the largest mantissa is one LSB short.
            exp = self.max_exponent_field - self.bias
            mantissa = 2.0 - 2.0 ** (-(self.mantissa_bits - 1))
        return mantissa * 2.0**exp

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return 2.0 ** (1 - self.bias - self.mantissa_bits)

    @property
    def epsilon(self) -> float:
        """Spacing between 1.0 and the next larger representable value."""
        return 2.0 ** (-self.mantissa_bits)

    @property
    def num_codes(self) -> int:
        """Total number of bit patterns of the format."""
        return 1 << self.total_bits

    # -- encode / decode -------------------------------------------------------

    def decode_code(self, code: int) -> float:
        """Decode one raw bit pattern into a Python float."""
        code = int(code) & (self.num_codes - 1)
        sign = -1.0 if code >> (self.total_bits - 1) else 1.0
        exponent = (code >> self.mantissa_bits) & self.max_exponent_field
        mantissa = code & ((1 << self.mantissa_bits) - 1)
        if exponent == self.max_exponent_field:
            if self.ieee_special_values:
                if mantissa == 0:
                    return sign * float("inf")
                return float("nan")
            if mantissa == (1 << self.mantissa_bits) - 1:
                return float("nan")
            return sign * (1.0 + mantissa * 2.0 ** (-self.mantissa_bits)) * 2.0 ** (
                exponent - self.bias
            )
        if exponent == 0:
            return sign * mantissa * 2.0 ** (1 - self.bias - self.mantissa_bits)
        return sign * (1.0 + mantissa * 2.0 ** (-self.mantissa_bits)) * 2.0 ** (exponent - self.bias)

    def all_values(self) -> np.ndarray:
        """Every representable value, in code order (useful for tests).

        The table is computed once per format and cached; the returned
        array is read-only (copy before mutating).
        """
        return _all_values_cached(self)

    def encode(self, values: ArrayLike) -> np.ndarray:
        """Encode real values to raw bit patterns (round-to-nearest-even).

        Overflow saturates to the largest finite value; NaN encodes to the
        format's NaN pattern.  Runs the vectorized bit-twiddling kernel;
        :meth:`encode_reference` is the retained scalar golden model.
        """
        return kernels.minifloat_encode(values, self)

    def encode_reference(self, values: ArrayLike) -> np.ndarray:
        """Scalar golden-model encoder (one `_encode_scalar` call per element)."""
        arr = np.asarray(values, dtype=np.float64)
        flat = arr.reshape(-1)
        codes = np.zeros(flat.shape, dtype=np.int64)
        for index, value in enumerate(flat):
            codes[index] = self._encode_scalar(float(value))
        return codes.reshape(arr.shape)

    def _nan_code(self) -> int:
        if self.ieee_special_values:
            return (self.max_exponent_field << self.mantissa_bits) | 1
        return (self.max_exponent_field << self.mantissa_bits) | ((1 << self.mantissa_bits) - 1)

    def _max_finite_code(self, sign: int) -> int:
        magnitude_code = int(self.encode_exact(self.max_finite))
        return (sign << (self.total_bits - 1)) | magnitude_code

    def encode_exact(self, value: float) -> int:
        """Encode a value known to be exactly representable (no rounding)."""
        return self._encode_scalar(value)

    def _encode_scalar(self, value: float) -> int:
        if np.isnan(value):
            return self._nan_code()
        sign = 1 if np.signbit(value) else 0
        magnitude = abs(value)
        if np.isinf(magnitude) or magnitude > self.max_finite:
            if self.ieee_special_values and np.isinf(magnitude):
                return (sign << (self.total_bits - 1)) | (
                    self.max_exponent_field << self.mantissa_bits
                )
            # Saturate finite overflow (and E4M3 infinities) to max finite.
            exponent, mantissa = self._fields_of(self.max_finite)
            return (sign << (self.total_bits - 1)) | (exponent << self.mantissa_bits) | mantissa
        if magnitude == 0.0:
            return sign << (self.total_bits - 1)
        exponent, mantissa = self._fields_of(magnitude)
        return (sign << (self.total_bits - 1)) | (exponent << self.mantissa_bits) | mantissa

    def _fields_of(self, magnitude: float) -> tuple[int, int]:
        """Exponent/mantissa fields of a positive magnitude with RNE rounding."""
        unbiased = int(np.floor(np.log2(magnitude)))
        unbiased = max(unbiased, 1 - self.bias)  # clamp into the subnormal range
        scaled = magnitude / 2.0**unbiased
        # scaled is in [1, 2) for normals, (0, 1) for subnormals.
        mantissa_scale = 1 << self.mantissa_bits
        if unbiased == 1 - self.bias and scaled < 1.0:
            # Subnormal: no implicit leading one.
            mantissa = int(np.round(scaled * mantissa_scale))
            # Round-half-to-even correction.
            frac = scaled * mantissa_scale
            if abs(frac - np.floor(frac) - 0.5) < 1e-12:
                mantissa = int(2 * np.round(frac / 2.0))
            if mantissa >= mantissa_scale:
                return 1, 0  # rounded up into the smallest normal
            return 0, mantissa
        mantissa_exact = (scaled - 1.0) * mantissa_scale
        mantissa = int(np.round(mantissa_exact))
        if abs(mantissa_exact - np.floor(mantissa_exact) - 0.5) < 1e-12:
            mantissa = int(2 * np.round(mantissa_exact / 2.0))
        exponent = unbiased + self.bias
        if mantissa >= mantissa_scale:
            mantissa = 0
            exponent += 1
        if exponent > self.max_exponent_field or (
            self.ieee_special_values and exponent == self.max_exponent_field
        ):
            # Overflowed past the largest finite value during rounding.
            return self._fields_of(self.max_finite)
        if not self.ieee_special_values and exponent == self.max_exponent_field:
            if mantissa == (1 << self.mantissa_bits) - 1:
                mantissa -= 1  # avoid the NaN code; stay at max finite
        return exponent, mantissa

    def decode(self, codes: ArrayLike) -> np.ndarray:
        """Decode raw bit patterns back to float64 values.

        Runs the vectorized field-extraction kernel;
        :meth:`decode_reference` is the retained scalar golden model.
        """
        return kernels.minifloat_decode(codes, self)

    def decode_reference(self, codes: ArrayLike) -> np.ndarray:
        """Scalar golden-model decoder (one `decode_code` call per element)."""
        arr = np.asarray(codes, dtype=np.int64)
        flat = arr.reshape(-1)
        values = np.array([self.decode_code(int(code)) for code in flat])
        return values.reshape(arr.shape)

    def round_trip(self, values: ArrayLike) -> np.ndarray:
        """Round real values through the format (quantize to representable)."""
        return self.decode(self.encode(values))

    def quantization_error(self, values: ArrayLike) -> np.ndarray:
        """Absolute error introduced by storing each value in this format."""
        arr = np.asarray(values, dtype=np.float64)
        return np.abs(self.round_trip(arr) - arr)


@lru_cache(maxsize=None)
def _all_values_cached(fmt: MinifloatFormat) -> np.ndarray:
    """Cached, read-only code table of a format (frozen formats hash stably)."""
    values = kernels.minifloat_decode(np.arange(fmt.num_codes), fmt)
    values.flags.writeable = False
    return values


#: OCP FP8 E4M3: extended-range 8-bit float without infinities.
E4M3 = MinifloatFormat(name="e4m3", exponent_bits=4, mantissa_bits=3, ieee_special_values=False)

#: OCP FP8 E5M2: IEEE-like 8-bit float with infinities.
E5M2 = MinifloatFormat(name="e5m2", exponent_bits=5, mantissa_bits=2, ieee_special_values=True)

#: bfloat16: FP32 range, 8-bit significand precision.
BFLOAT16 = MinifloatFormat(name="bfloat16", exponent_bits=8, mantissa_bits=7, ieee_special_values=True)


def minifloat_by_name(name: str) -> MinifloatFormat:
    """Look up a minifloat format by case-insensitive name."""
    key = name.strip().lower().replace("-", "").replace("_", "")
    table = {
        "e4m3": E4M3,
        "fp8e4m3": E4M3,
        "e5m2": E5M2,
        "fp8e5m2": E5M2,
        "bfloat16": BFLOAT16,
        "bf16": BFLOAT16,
    }
    if key not in table:
        raise ValueError(f"unknown minifloat format: {name!r}")
    return table[key]
