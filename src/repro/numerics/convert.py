"""FP2FX and FX2FP converter units.

Figures 4 and 6 of the paper show FP2FX units at the input of the Input
Statistics Calculator and FX2FP units in front of the Square Root Inverter
and at the output of the Normalization Unit.  These classes model those
converters, including the bypass behaviour for inputs that are already in
fixed-point (INT8) format and the precision loss of each direction.

Each converter also tracks how many elements it has processed so the cycle
and power models can charge conversion energy only for values that actually
passed through the unit (bypassed values are free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FloatFormat, FP32

ArrayLike = Union[np.ndarray, float, int]


@dataclass
class ConverterStats:
    """Activity counters for a converter unit (consumed by the power model)."""

    converted_elements: int = 0
    bypassed_elements: int = 0
    invocations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.converted_elements = 0
        self.bypassed_elements = 0
        self.invocations = 0

    @property
    def total_elements(self) -> int:
        """Total elements that traversed the unit, converted or not."""
        return self.converted_elements + self.bypassed_elements


@dataclass
class FP2FXConverter:
    """Floating-point to fixed-point converter (paper Figure 4).

    Parameters
    ----------
    float_format:
        The incoming floating-point storage format (FP16 or FP32).  Inputs
        are first rounded through this format, modelling the precision of
        the accelerator's input bus.
    fixed_format:
        The internal fixed-point format produced by the unit.
    """

    float_format: FloatFormat = FP32
    fixed_format: FixedPointFormat = field(default_factory=FixedPointFormat.accumulator)
    stats: ConverterStats = field(default_factory=ConverterStats)

    def convert(self, values: ArrayLike) -> FixedPointValue:
        """Convert floating-point inputs into the internal fixed-point format."""
        arr = self.float_format.round_trip(np.asarray(values, dtype=np.float64))
        self.stats.invocations += 1
        self.stats.converted_elements += int(np.asarray(arr).size)
        return FixedPointValue.from_real(self.fixed_format, arr)

    def bypass(self, codes: ArrayLike) -> FixedPointValue:
        """Pass through inputs that are already fixed-point (e.g. INT8).

        The paper: "If the inputs are already in fixed-point format (INT8),
        the FP2FX units will bypass the conversion."  The raw codes are
        re-interpreted in the internal format by aligning binary points.
        """
        int8 = FixedPointFormat.int8()
        value = FixedPointValue(int8, np.asarray(codes, dtype=np.int64))
        self.stats.invocations += 1
        self.stats.bypassed_elements += int(value.codes.size)
        return value.cast(self.fixed_format)


@dataclass
class FX2FPConverter:
    """Fixed-point to floating-point converter (paper Figures 5 and 6)."""

    float_format: FloatFormat = FP32
    stats: ConverterStats = field(default_factory=ConverterStats)

    def convert(self, value: FixedPointValue) -> np.ndarray:
        """Convert a fixed-point value into the output floating-point format."""
        real = value.to_real()
        self.stats.invocations += 1
        self.stats.converted_elements += int(np.asarray(real).size)
        return self.float_format.round_trip(real)

    def bypass(self, value: FixedPointValue) -> np.ndarray:
        """Skip the conversion when quantized (fixed-point) output is requested.

        The paper: "When quantization is enabled, outputs remain in
        fixed-point format, skipping conversion in the FX2FP units."  Returns
        the decoded real values without charging conversion activity.
        """
        self.stats.invocations += 1
        self.stats.bypassed_elements += int(value.codes.size)
        return value.to_real()
