"""IEEE-754 bit-level floating point codec (FP16 / FP32).

The Square Root Inverter of the HAAN accelerator (paper Section IV-B)
operates directly on the bit representation of a floating-point number:
``x = 2^(Ex - Q) * (1 + Mx / 2^L)`` where ``Ex`` is the exponent field,
``Mx`` the mantissa field, ``Q`` the exponent bias and ``L`` the mantissa
width.  This module exposes those fields exactly, for both FP16 and FP32,
and provides helpers to reassemble a float from fields -- which is what the
fast inverse square root derivation of equation (8) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int]


@dataclass(frozen=True)
class FloatFormat:
    """Parameters of an IEEE-754 binary floating-point format.

    Attributes
    ----------
    name:
        Human-readable format name ("fp16" or "fp32").
    exponent_bits:
        Width of the exponent field (``E``).
    mantissa_bits:
        Width of the mantissa (fraction) field (``L`` in the paper).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int

    @property
    def total_bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        """Exponent bias ``Q`` (127 for FP32, 15 for FP16)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def mantissa_mask(self) -> int:
        """Bit mask selecting the mantissa field."""
        return (1 << self.mantissa_bits) - 1

    @property
    def exponent_mask(self) -> int:
        """Bit mask selecting the exponent field (before shifting)."""
        return (1 << self.exponent_bits) - 1

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy float dtype corresponding to this format."""
        return np.dtype(np.float16) if self.total_bits == 16 else np.dtype(np.float32)

    @property
    def numpy_int_dtype(self) -> np.dtype:
        """The NumPy unsigned integer dtype holding the raw bits."""
        return np.dtype(np.uint16) if self.total_bits == 16 else np.dtype(np.uint32)

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        return float(np.finfo(self.numpy_dtype).max)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal number."""
        return float(np.finfo(self.numpy_dtype).tiny)

    @property
    def epsilon(self) -> float:
        """Machine epsilon of the format."""
        return float(np.finfo(self.numpy_dtype).eps)

    def round_trip(self, values: ArrayLike) -> np.ndarray:
        """Round real values through this format (models storage precision)."""
        arr = np.asarray(values, dtype=np.float64)
        return arr.astype(self.numpy_dtype).astype(np.float64)


#: IEEE-754 binary16 (half precision).
FP16 = FloatFormat(name="fp16", exponent_bits=5, mantissa_bits=10)

#: IEEE-754 binary32 (single precision).
FP32 = FloatFormat(name="fp32", exponent_bits=8, mantissa_bits=23)

#: The "magic constant" of the fast inverse square root for FP32
#: (``0x5f3759df``, paper equation (8)).
FAST_INV_SQRT_MAGIC_FP32 = 0x5F3759DF

#: Approximation constant sigma used for log2(1 + m) ~= m + sigma
#: (paper Section IV-B, from Lomont's fast inverse square root analysis).
#: The paper prints "0.450465"; the value consistent with the 0x5f3759df
#: constant it derives (and with Lomont's report) is 0.0450466 -- the
#: paper's figure drops the leading zero.
LOG_APPROX_SIGMA = 0.0450466

#: The equivalent magic constant for FP16, derived from the same
#: ``(3/2) * 2^L * (Q - sigma)`` expression with Q=15, L=10.
FAST_INV_SQRT_MAGIC_FP16 = int(round(1.5 * (1 << 10) * (15 - LOG_APPROX_SIGMA)))


def to_bits(values: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Return the raw bit pattern of each value as unsigned integers."""
    arr = np.asarray(values, dtype=np.float64).astype(fmt.numpy_dtype)
    return arr.view(fmt.numpy_int_dtype).astype(np.int64)


def from_bits(bits: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Reinterpret unsigned integer bit patterns as floats of the format."""
    arr = np.asarray(bits, dtype=np.int64).astype(fmt.numpy_int_dtype)
    return arr.view(fmt.numpy_dtype).astype(np.float64)


def decompose(values: ArrayLike, fmt: FloatFormat = FP32) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split values into (sign, exponent field, mantissa field) integer arrays.

    The exponent field is the raw biased value ``Ex`` and the mantissa field
    the raw fraction bits ``Mx`` -- exactly the quantities manipulated by the
    Square Root Inverter in paper equation (8).
    """
    bits = to_bits(values, fmt)
    sign = (bits >> (fmt.total_bits - 1)) & 0x1
    exponent = (bits >> fmt.mantissa_bits) & fmt.exponent_mask
    mantissa = bits & fmt.mantissa_mask
    return sign, exponent, mantissa


def compose(sign: ArrayLike, exponent: ArrayLike, mantissa: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Reassemble floats from (sign, exponent field, mantissa field)."""
    sign_a = np.asarray(sign, dtype=np.int64)
    exp_a = np.asarray(exponent, dtype=np.int64) & fmt.exponent_mask
    man_a = np.asarray(mantissa, dtype=np.int64) & fmt.mantissa_mask
    bits = (sign_a << (fmt.total_bits - 1)) | (exp_a << fmt.mantissa_bits) | man_a
    return from_bits(bits, fmt)


def log2_approx(values: ArrayLike, fmt: FloatFormat = FP32, sigma: float = LOG_APPROX_SIGMA) -> np.ndarray:
    """Approximate ``log2(x)`` from the bit fields of positive ``x``.

    Implements the paper's approximation ``log2(x) ~= Ex - Q + Mx/2^L + sigma``
    used to derive the fast inverse square root seed.  Only valid for
    positive, finite, normal inputs; other inputs produce NaN.
    """
    arr = np.asarray(values, dtype=np.float64)
    _, exponent, mantissa = decompose(arr, fmt)
    approx = (exponent - fmt.bias) + mantissa / float(1 << fmt.mantissa_bits) + sigma
    approx = np.where(arr > 0, approx, np.nan)
    return approx


def exponent_of(values: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Unbiased exponent of each value (floor(log2 |x|) for normals)."""
    _, exponent, _ = decompose(values, fmt)
    return exponent - fmt.bias


def is_normal(values: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Boolean mask of values that are normal (not zero/subnormal/inf/nan)."""
    _, exponent, _ = decompose(values, fmt)
    return (exponent > 0) & (exponent < fmt.exponent_mask)


def format_by_name(name: str) -> FloatFormat:
    """Look up a :class:`FloatFormat` by its case-insensitive name."""
    key = name.strip().lower()
    if key in ("fp16", "half", "float16"):
        return FP16
    if key in ("fp32", "single", "float32"):
        return FP32
    raise ValueError(f"unknown floating point format: {name!r}")
