"""Vectorized, allocation-lean kernels for the bit-level numerics.

The scalar implementations in :mod:`repro.numerics.minifloat` and
:mod:`repro.numerics.fixedpoint` are the *golden models*: one value at a
time, written to read like the paper.  This module provides the fast paths
that the serving runtime and the benchmarks actually execute:

* :func:`minifloat_encode` / :func:`minifloat_decode` -- whole-array integer
  bit-twiddling replacements for the per-element ``_encode_scalar`` /
  ``decode_code`` loops.
* :func:`fixed_point_multiply_codes` / :func:`exact_code_sum` -- ``int64``
  array arithmetic replacing the Python-``int`` shift loops and the
  ``dtype=object`` reductions.
* :func:`round_codes` -- the vectorized rounding modes with optional
  in-place output.
* :func:`rowwise_variance` / :func:`rowwise_mean_square` /
  :func:`inv_sqrt_stat` / :func:`normalize_affine` -- per-row statistic and
  affine kernels that mirror the exact NumPy operation sequence of the
  reference layers (so results are bit-identical) while writing into
  caller-provided buffers.
* :func:`haan_normalize_rows` -- the fused single-pass HAAN normalization:
  storage round trip, (subsampled) statistics, optional ISD refinement and
  the affine transform, all through one :class:`KernelWorkspace` of
  preallocated scratch buffers.

Every kernel is **bit-identical** to the scalar/reference path it replaces;
``tests/test_kernels.py`` sweeps the equivalence exhaustively (all codes of
every minifloat format, randomized fixed-point products, full normalization
outputs) with exact comparisons, never tolerances.

This module deliberately imports nothing from the rest of the package so
every other ``repro`` module may depend on it without cycles; format
objects are duck-typed (only their public attributes are read).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "KernelWorkspace",
    "minifloat_encode",
    "minifloat_decode",
    "fixed_point_multiply_codes",
    "exact_code_sum",
    "round_codes",
    "int8_segment_scales",
    "int8_round_trip_rows",
    "float_round_trip_rows",
    "rowwise_variance",
    "rowwise_mean_square",
    "inv_sqrt_stat",
    "normalize_affine",
    "haan_normalize_rows",
]

#: Symmetric INT8 clipping bound (matches ``Quantizer.INT8_MAX``).
INT8_MAX = 127

#: Tie tolerance of the scalar minifloat encoder's round-half-to-even
#: correction (mirrored exactly so the kernels stay bit-identical).
_TIE_EPSILON = 1e-12


# ---------------------------------------------------------------------------
# workspace
# ---------------------------------------------------------------------------


class KernelWorkspace:
    """Reusable scratch-buffer pool for the fused kernels.

    Buffers are keyed by ``(name, columns, dtype)`` and their row capacity
    grows to the next power of two, so a steady stream of similarly-sized
    micro-batches (the size-bucketed queues of the serving scheduler) hits
    the same buffers over and over: steady-state serving performs no large
    scratch allocations.

    The workspace is **not** thread-safe: one workspace belongs to one
    executor (the micro-batcher runs batches on a single worker thread, or
    inline on the draining caller).  Buffers hand out *views*; their
    contents are only valid until the next request for the same name.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    @staticmethod
    def _capacity(rows: int) -> int:
        """Row capacity: the next power of two at or above ``rows``."""
        return 1 << max(0, int(rows - 1).bit_length()) if rows > 0 else 1

    def matrix(self, name: str, rows: int, cols: int, dtype=np.float64) -> np.ndarray:
        """A ``(rows, cols)`` scratch view backed by a pooled buffer."""
        key = (name, int(cols), np.dtype(dtype).str)
        capacity = self._capacity(rows)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape[0] < capacity:
            buffer = np.empty((capacity, int(cols)), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:rows]

    def vector(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        """A ``(size,)`` scratch view backed by a pooled buffer."""
        key = (name, -1, np.dtype(dtype).str)
        capacity = self._capacity(size)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape[0] < capacity:
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        """Drop every pooled buffer."""
        self._buffers.clear()


def _scratch_matrix(
    workspace: Optional[KernelWorkspace], name: str, rows: int, cols: int, dtype=np.float64
) -> np.ndarray:
    """Workspace matrix when pooled, a fresh allocation otherwise."""
    if workspace is not None:
        return workspace.matrix(name, rows, cols, dtype)
    return np.empty((rows, cols), dtype=dtype)


# ---------------------------------------------------------------------------
# minifloat codec
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _max_finite_fields(fmt) -> Tuple[int, int]:
    """(exponent field, mantissa field) of the format's largest finite value.

    Computed once per format through the scalar golden model, so saturation
    can never drift from the reference encoder.
    """
    return fmt._fields_of(fmt.max_finite)


def minifloat_encode(values, fmt) -> np.ndarray:
    """Vectorized minifloat encoder, bit-identical to ``_encode_scalar``.

    Mirrors the scalar control flow branch by branch on whole arrays: NaN
    maps to the format's NaN code, infinities either encode (IEEE formats)
    or saturate (E4M3-style), finite overflow saturates to max finite, and
    round-to-nearest-even -- including the scalar encoder's explicit
    half-tie correction with its ``1e-12`` tolerance -- applies elsewhere.
    """
    arr = np.asarray(values, dtype=np.float64)
    flat = arr.reshape(-1)
    total_bits = fmt.total_bits
    mantissa_bits = fmt.mantissa_bits
    bias = fmt.bias
    max_exponent = fmt.max_exponent_field
    mantissa_scale = 1 << mantissa_bits
    max_finite = fmt.max_finite
    max_exp_field, max_man_field = _max_finite_fields(fmt)

    sign = np.signbit(flat).astype(np.int64)
    magnitude = np.abs(flat)
    nan_mask = np.isnan(flat)
    inf_mask = np.isinf(magnitude)
    over_mask = inf_mask | (magnitude > max_finite)
    zero_mask = magnitude == 0.0
    special = nan_mask | over_mask | zero_mask

    # `_fields_of` vectorized; special lanes run on a 1.0 placeholder and
    # are overwritten below.
    m = np.where(special, 1.0, magnitude)
    unbiased = np.floor(np.log2(m)).astype(np.int64)
    np.maximum(unbiased, 1 - bias, out=unbiased)
    scaled = m / np.ldexp(1.0, unbiased)

    # Subnormal branch: no implicit leading one.
    sub_mask = (unbiased == 1 - bias) & (scaled < 1.0)
    frac = scaled * mantissa_scale
    sub_mantissa = np.round(frac)
    tie = np.abs(frac - np.floor(frac) - 0.5) < _TIE_EPSILON
    sub_mantissa = np.where(tie, 2.0 * np.round(frac / 2.0), sub_mantissa).astype(np.int64)
    sub_carry = sub_mantissa >= mantissa_scale  # rounded up into min normal
    sub_exponent = sub_carry.astype(np.int64)
    sub_mantissa = np.where(sub_carry, 0, sub_mantissa)

    # Normal branch.
    mantissa_exact = (scaled - 1.0) * mantissa_scale
    mantissa = np.round(mantissa_exact)
    tie = np.abs(mantissa_exact - np.floor(mantissa_exact) - 0.5) < _TIE_EPSILON
    mantissa = np.where(tie, 2.0 * np.round(mantissa_exact / 2.0), mantissa).astype(np.int64)
    exponent = unbiased + bias
    carry = mantissa >= mantissa_scale
    mantissa = np.where(carry, 0, mantissa)
    exponent = exponent + carry
    if fmt.ieee_special_values:
        rounded_over = exponent >= max_exponent
    else:
        rounded_over = exponent > max_exponent
    exponent = np.where(rounded_over, max_exp_field, exponent)
    mantissa = np.where(rounded_over, max_man_field, mantissa)
    if not fmt.ieee_special_values:
        # Avoid the NaN code in the top exponent row; stay at max finite.
        collide = (exponent == max_exponent) & (mantissa == mantissa_scale - 1)
        mantissa = mantissa - collide

    exp_field = np.where(sub_mask, sub_exponent, exponent)
    man_field = np.where(sub_mask, sub_mantissa, mantissa)
    codes = (sign << (total_bits - 1)) | (exp_field << mantissa_bits) | man_field

    codes = np.where(zero_mask, sign << (total_bits - 1), codes)
    saturate_code = (
        (sign << (total_bits - 1)) | (max_exp_field << mantissa_bits) | max_man_field
    )
    if fmt.ieee_special_values:
        inf_code = (sign << (total_bits - 1)) | (max_exponent << mantissa_bits)
        saturate_code = np.where(inf_mask, inf_code, saturate_code)
    codes = np.where(over_mask, saturate_code, codes)
    codes = np.where(nan_mask, fmt._nan_code(), codes)
    return codes.reshape(arr.shape)


def minifloat_decode(codes, fmt) -> np.ndarray:
    """Vectorized minifloat decoder, bit-identical to ``decode_code``."""
    arr = np.asarray(codes, dtype=np.int64)
    flat = arr.reshape(-1) & (fmt.num_codes - 1)
    total_bits = fmt.total_bits
    mantissa_bits = fmt.mantissa_bits
    bias = fmt.bias
    max_exponent = fmt.max_exponent_field
    mantissa_scale = 1 << mantissa_bits

    sign = np.where(flat >> (total_bits - 1) != 0, -1.0, 1.0)
    exponent = (flat >> mantissa_bits) & max_exponent
    mantissa = flat & (mantissa_scale - 1)

    fraction = mantissa.astype(np.float64) * 2.0 ** (-mantissa_bits)
    normal = sign * (1.0 + fraction) * np.ldexp(1.0, exponent - bias)
    subnormal = sign * mantissa * 2.0 ** (1 - bias - mantissa_bits)
    values = np.where(exponent == 0, subnormal, normal)

    top = exponent == max_exponent
    if fmt.ieee_special_values:
        values = np.where(top, sign * np.inf, values)
        values = np.where(top & (mantissa != 0), np.nan, values)
    else:
        values = np.where(top & (mantissa == mantissa_scale - 1), np.nan, values)
    return values.reshape(arr.shape)


# ---------------------------------------------------------------------------
# fixed point
# ---------------------------------------------------------------------------


def fixed_point_multiply_codes(
    a_codes: np.ndarray, b_codes: np.ndarray, shift: int
) -> np.ndarray:
    """Exact code product followed by the binary-point realignment shift.

    Returns float64 raw codes ready for saturation, matching the reference
    Python-``int`` path bit for bit.  The caller guarantees the product fits
    ``int64`` (true whenever the operand formats total at most 64 bits: the
    magnitudes are below ``2**(ta-1)`` and ``2**(tb-1)``).

    * ``shift > 0``: NumPy's ``>>`` on ``int64`` is an arithmetic shift,
      identical to Python's floor-shifting ``int >> n``; the subsequent
      float64 conversion rounds to nearest even exactly like ``float(int)``.
    * ``shift < 0``: scaling the float64 product by ``2**-shift`` is exact
      (power-of-two scaling preserves the significand), so it equals
      converting the exactly shifted integer.
    """
    product = a_codes * b_codes
    if shift > 0:
        return (product >> shift).astype(np.float64)
    if shift < 0:
        return product.astype(np.float64) * float(1 << (-shift))
    return product.astype(np.float64)


def exact_code_sum(codes: np.ndarray, total_bits: int) -> int:
    """Exact integer sum of raw codes without ``dtype=object`` arrays.

    The explicit overflow check: with every code bounded by
    ``2**(total_bits-1)`` in magnitude, a straight ``int64`` reduction is
    provably exact when ``n * 2**(total_bits-1) < 2**63``.  Wider inputs
    fall back to chunked ``int64`` partial sums combined in Python integers
    -- still exact, never an object-dtype array.
    """
    flat = np.asarray(codes, dtype=np.int64).reshape(-1)
    n = int(flat.size)
    if n == 0:
        return 0
    bound = 1 << (total_bits - 1)
    if n * bound < (1 << 63):
        return int(np.sum(flat, dtype=np.int64))
    chunk = max(1, (1 << 62) // bound)
    return sum(
        int(np.sum(flat[start : start + chunk], dtype=np.int64))
        for start in range(0, n, chunk)
    )


# ---------------------------------------------------------------------------
# rounding modes
# ---------------------------------------------------------------------------


def round_codes(
    scaled: np.ndarray,
    mode: str,
    rng: Optional[np.random.Generator] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized rounding of pre-scaled values to integer codes.

    ``mode`` is the :class:`~repro.numerics.rounding.RoundingMode` value
    string; results are float64 codes, bit-identical to the mode's
    reference formula.  ``out`` may alias ``scaled``.
    """
    scaled = np.asarray(scaled, dtype=np.float64)
    if mode == "nearest-even":
        return np.rint(scaled, out=out)
    if mode == "truncate":
        return np.floor(scaled, out=out)
    if mode == "toward-zero":
        return np.trunc(scaled, out=out)
    if mode == "stochastic":
        generator = rng if rng is not None else np.random.default_rng(0)
        floor = np.floor(scaled)
        fraction = scaled - floor
        draws = generator.random(size=scaled.shape)
        up = draws < fraction
        if out is None:
            return floor + up
        np.add(floor, up, out=out)
        return out
    raise ValueError(f"unknown rounding mode: {mode!r}")


# ---------------------------------------------------------------------------
# storage round trips
# ---------------------------------------------------------------------------


def int8_segment_scales(
    rows: np.ndarray,
    segment_starts: Optional[np.ndarray],
    workspace: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Per-row INT8 scale column of stacked request segments.

    Mirrors the scale computation of
    :func:`repro.numerics.quantization.segmented_round_trip` exactly,
    including its validation of the segment bookkeeping; ``workspace``
    pools the elementwise ``abs`` scratch.
    """
    if segment_starts is None:
        starts = np.array([0], dtype=np.int64)
    else:
        starts = np.asarray(segment_starts, dtype=np.int64)
    if starts.size == 0 or starts[0] != 0 or np.any(np.diff(starts) <= 0):
        raise ValueError("segment_starts must begin at 0 and be strictly increasing")
    if starts[-1] >= rows.shape[0]:
        raise ValueError("segment_starts reaches past the stacked rows")
    magnitude = _scratch_matrix(workspace, "kernels.abs", rows.shape[0], rows.shape[1])
    np.abs(rows, out=magnitude)
    row_max = np.max(magnitude, axis=1)
    segment_max = np.maximum.reduceat(row_max, starts)
    scales = np.where(segment_max == 0.0, 1.0, segment_max / INT8_MAX)
    lengths = np.diff(np.append(starts, rows.shape[0]))
    return np.repeat(scales, lengths)[:, None]


def int8_round_trip_rows(
    rows: np.ndarray,
    row_scale: np.ndarray,
    out: Optional[np.ndarray] = None,
    int8_max: int = INT8_MAX,
) -> np.ndarray:
    """Symmetric INT8 round trip with a per-row scale, into ``out``.

    The operation sequence (divide, round, clip, rescale) matches the
    reference `segmented_round_trip` term by term, so results are
    bit-identical; ``out`` just removes the intermediate allocations.
    """
    if out is None:
        out = np.empty_like(rows)
    np.divide(rows, row_scale, out=out)
    np.rint(out, out=out)
    np.clip(out, -int8_max, int8_max, out=out)
    np.multiply(out, row_scale, out=out)
    return out


def float_round_trip_rows(
    rows: np.ndarray,
    storage_dtype,
    out: Optional[np.ndarray] = None,
    workspace: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Round rows through a narrow float dtype (FP16/FP32 storage).

    Uses the same C casts as ``astype`` (so it is bit-identical to
    ``rows.astype(dtype).astype(float64)``) but stages through a pooled
    low-precision buffer instead of allocating two arrays.
    """
    if out is None:
        out = np.empty_like(rows)
    low = _scratch_matrix(
        workspace, "kernels.low_precision", rows.shape[0], rows.shape[1], storage_dtype
    )
    np.copyto(low, rows, casting="unsafe")
    np.copyto(out, low, casting="unsafe")
    return out


# ---------------------------------------------------------------------------
# per-row statistics (exact mirrors of the NumPy reference reductions)
# ---------------------------------------------------------------------------


def rowwise_variance(
    rows: np.ndarray,
    workspace: Optional[KernelWorkspace] = None,
    name: str = "kernels.variance",
) -> np.ndarray:
    """Per-row population variance, bit-identical to ``rows.var(axis=1)``.

    Replicates NumPy's ``_methods._var`` operation sequence (keepdims mean,
    broadcast subtract, in-place square, sum, true divide) with the
    intermediate deviation matrix drawn from the workspace.
    """
    n, width = rows.shape
    mean = np.mean(rows, axis=1, keepdims=True)
    deviation = _scratch_matrix(workspace, name, n, width)
    np.subtract(rows, mean, out=deviation)
    np.multiply(deviation, deviation, out=deviation)
    variance = np.sum(deviation, axis=1)
    np.divide(variance, width, out=variance)
    return variance


def rowwise_mean_square(
    rows: np.ndarray,
    workspace: Optional[KernelWorkspace] = None,
    name: str = "kernels.mean_square",
) -> np.ndarray:
    """Per-row mean square, bit-identical to ``np.mean(np.square(x), axis=1)``."""
    n, width = rows.shape
    squared = _scratch_matrix(workspace, name, n, width)
    np.square(rows, out=squared)
    return np.mean(squared, axis=1)


def inv_sqrt_stat(spread: np.ndarray, eps: float) -> np.ndarray:
    """ISD from a spread statistic: ``1/sqrt(spread + eps)``, in place."""
    np.add(spread, eps, out=spread)
    np.sqrt(spread, out=spread)
    np.divide(1.0, spread, out=spread)
    return spread


def normalize_affine(
    rows: np.ndarray,
    mean: np.ndarray,
    isd: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(rows - mean) * isd * gamma + beta`` without intermediate arrays.

    The in-place chain applies the exact operation order of the reference
    layers, so outputs are bit-identical; only the four temporaries vanish.
    """
    if out is None:
        out = np.empty_like(rows)
    np.subtract(rows, mean[:, None], out=out)
    np.multiply(out, isd[:, None], out=out)
    np.multiply(out, gamma[None, :], out=out)
    np.add(out, beta[None, :], out=out)
    return out


# ---------------------------------------------------------------------------
# fused HAAN normalization
# ---------------------------------------------------------------------------


def _subsample_view(rows: np.ndarray, length: int, policy: str) -> np.ndarray:
    """The subsampled view, mirroring ``select_subsample`` exactly."""
    hidden = rows.shape[1]
    clamped = min(length, hidden)
    if policy == "truncate":
        return rows[:, :clamped]
    stride = max(1, hidden // clamped)
    return rows[:, ::stride][:, :clamped]


def haan_normalize_rows(
    rows: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    storage: Optional[str] = "fp32",
    segment_starts: Optional[np.ndarray] = None,
    rms: bool = False,
    eps: float = 1e-5,
    subsample_length: Optional[int] = None,
    subsample_policy: str = "truncate",
    subsample_mean: bool = True,
    predicted_isd: Optional[np.ndarray] = None,
    refine_isd: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    workspace: Optional[KernelWorkspace] = None,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused HAAN normalization over stacked request rows.

    One call performs the storage round trip (per-segment INT8 calibration
    or FP16/FP32 rounding), the per-row statistics (predicted, subsampled
    or exact), the optional ISD refinement hook, and the affine transform,
    touching only workspace scratch plus the ``out`` / ``mean`` / ``isd``
    result arrays.  Bit-identical to the unfused pipeline
    (:meth:`HaanNormalization.forward_batched_reference`); the golden
    equivalence suite compares the two with exact equality.

    Parameters mirror an :class:`~repro.engine.spec.EngineSpec` as plain
    values (``storage`` is a :class:`DataFormat` value string, or ``None``
    to bypass the round trip entirely -- the exact reference layers; ``rms``
    selects the RMSNorm statistics; ``predicted_isd`` carries the per-row
    ISD of a skipped layer).  Returns ``(out, mean, isd)``; ``mean`` and
    ``isd`` are freshly allocated (they outlive the workspace in serving
    responses).
    """
    arr = np.asarray(rows, dtype=np.float64)
    n, hidden = arr.shape
    if out is None:
        out = np.empty((n, hidden))

    # 1. storage round trip into pooled scratch (never mutates the input).
    #    With ``storage=None`` the statistics and the affine transform read
    #    the input directly; nothing is copied and nothing is rounded.
    if storage is None:
        quantized = arr
    else:
        quantized = _scratch_matrix(workspace, "kernels.quantized", n, hidden)
        if storage == "int8" and arr.size > 0:
            row_scale = int8_segment_scales(arr, segment_starts, workspace=workspace)
            int8_round_trip_rows(arr, row_scale, out=quantized)
        elif storage == "fp16":
            float_round_trip_rows(arr, np.float16, out=quantized, workspace=workspace)
        elif storage == "fp32":
            float_round_trip_rows(arr, np.float32, out=quantized, workspace=workspace)
        elif storage == "int8":  # empty stack: nothing to calibrate
            pass
        else:
            raise ValueError(f"unknown storage format: {storage!r}")

    # 2. per-row statistics.
    if predicted_isd is not None:
        isd = np.asarray(predicted_isd, dtype=np.float64)
        if rms:
            mean = np.zeros(n)
        elif subsample_length is not None and subsample_mean:
            mean = quantized[:, : min(subsample_length, hidden)].mean(axis=1)
        else:
            mean = quantized.mean(axis=1)
    elif subsample_length is not None:
        sub = _subsample_view(quantized, subsample_length, subsample_policy)
        if rms:
            mean = np.zeros(n)
            isd = inv_sqrt_stat(rowwise_mean_square(sub, workspace), eps)
        else:
            mean_source = sub if subsample_mean else quantized
            mean = mean_source.mean(axis=1)
            isd = inv_sqrt_stat(rowwise_variance(sub, workspace), eps)
        if refine_isd is not None:
            isd = refine_isd(isd)
    else:
        if rms:
            mean = np.zeros(n)
            isd = inv_sqrt_stat(rowwise_mean_square(quantized, workspace), eps)
        else:
            mean = quantized.mean(axis=1)
            isd = inv_sqrt_stat(rowwise_variance(quantized, workspace), eps)
        if refine_isd is not None:
            isd = refine_isd(isd)

    # 3. affine transform straight into the output buffer.
    normalize_affine(quantized, mean, isd, gamma, beta, out=out)
    return out, mean, isd
