"""Operand quantization for the HAAN normalization datapath.

Section III-C of the paper applies "proper quantization of operands during
normalization" and the evaluation (Tables II and III) sweeps the input data
format over INT8 / FP16 / FP32.  This module provides:

* :class:`DataFormat` -- the three formats the accelerator accepts.
* :class:`QuantizationConfig` / :class:`Quantizer` -- per-tensor symmetric
  INT8 quantization (following Jacob et al. [30]) plus the FP16/FP32
  round-trip paths.
* :func:`quantize_tensor` / :func:`dequantize_tensor` -- functional helpers
  used by the HAAN normalization layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.numerics import kernels
from repro.numerics.floating import FP16, FP32

ArrayLike = Union[np.ndarray, float, int]


class DataFormat(enum.Enum):
    """Input/output data formats supported by the HAAN accelerator."""

    INT8 = "int8"
    FP16 = "fp16"
    FP32 = "fp32"

    @classmethod
    def from_string(cls, name: str) -> "DataFormat":
        """Parse a format name, case-insensitively."""
        key = name.strip().lower()
        for fmt in cls:
            if fmt.value == key:
                return fmt
        aliases = {"half": cls.FP16, "single": cls.FP32, "float16": cls.FP16, "float32": cls.FP32}
        if key in aliases:
            return aliases[key]
        raise ValueError(f"unknown data format: {name!r}")

    @property
    def bits(self) -> int:
        """Storage width of one element in bits."""
        return {DataFormat.INT8: 8, DataFormat.FP16: 16, DataFormat.FP32: 32}[self]

    @property
    def bytes(self) -> int:
        """Storage width of one element in bytes."""
        return self.bits // 8

    @property
    def is_fixed_point(self) -> bool:
        """True for integer formats that bypass the FP2FX converters."""
        return self is DataFormat.INT8


@dataclass(frozen=True)
class QuantizationConfig:
    """Configuration of the per-tensor symmetric quantizer.

    Attributes
    ----------
    data_format:
        The target storage format.
    percentile:
        Calibration percentile for the INT8 clipping range.  ``100`` uses the
        absolute maximum; smaller values clip outliers, which can improve
        LLM activation quantization (activations have heavy tails).
    """

    data_format: DataFormat = DataFormat.INT8
    percentile: float = 100.0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")


@dataclass
class QuantizedTensor:
    """An INT8-quantized tensor together with its dequantization scale."""

    codes: np.ndarray
    scale: float
    data_format: DataFormat = DataFormat.INT8

    def dequantize(self) -> np.ndarray:
        """Recover real values from codes."""
        return self.codes.astype(np.float64) * self.scale

    @property
    def nbytes(self) -> int:
        """Storage cost of the quantized representation in bytes."""
        return int(self.codes.size) * self.data_format.bytes


class Quantizer:
    """Per-tensor symmetric quantizer over the three accelerator formats.

    For INT8 the scale maps the calibration range symmetrically onto
    ``[-127, 127]``; FP16/FP32 simply round through the respective IEEE
    format.  The quantizer is stateless apart from the configuration, so one
    instance can be shared across layers.
    """

    INT8_MAX = 127

    def __init__(self, config: Optional[QuantizationConfig] = None):
        self.config = config or QuantizationConfig()

    def calibrate_scale(self, values: ArrayLike) -> float:
        """Compute the INT8 scale from the calibration values."""
        arr = np.abs(np.asarray(values, dtype=np.float64))
        if arr.size == 0:
            return 1.0
        if self.config.percentile >= 100.0:
            max_abs = float(np.max(arr))
        else:
            max_abs = float(np.percentile(arr, self.config.percentile))
        if max_abs == 0.0:
            return 1.0
        return max_abs / self.INT8_MAX

    def quantize(self, values: ArrayLike, scale: Optional[float] = None) -> QuantizedTensor:
        """Quantize a tensor; returns codes plus scale (scale=1 for FP formats)."""
        arr = np.asarray(values, dtype=np.float64)
        fmt = self.config.data_format
        if fmt is DataFormat.INT8:
            scale_val = self.calibrate_scale(arr) if scale is None else float(scale)
            codes = np.clip(np.rint(arr / scale_val), -self.INT8_MAX, self.INT8_MAX)
            return QuantizedTensor(codes=codes.astype(np.int8), scale=scale_val, data_format=fmt)
        if fmt is DataFormat.FP16:
            return QuantizedTensor(codes=arr.astype(np.float16), scale=1.0, data_format=fmt)
        return QuantizedTensor(codes=arr.astype(np.float32), scale=1.0, data_format=fmt)

    def round_trip(self, values: ArrayLike, scale: Optional[float] = None) -> np.ndarray:
        """Quantize then dequantize, modelling storage precision loss."""
        q = self.quantize(values, scale=scale)
        if q.data_format is DataFormat.INT8:
            return q.dequantize()
        return q.codes.astype(np.float64)

    def quantization_error(self, values: ArrayLike) -> Tuple[float, float]:
        """Return (max absolute error, RMS error) of the round trip."""
        arr = np.asarray(values, dtype=np.float64)
        approx = self.round_trip(arr)
        err = np.abs(approx - arr)
        rms = float(np.sqrt(np.mean(err ** 2))) if err.size else 0.0
        max_err = float(np.max(err)) if err.size else 0.0
        return max_err, rms


def quantize_tensor(values: ArrayLike, data_format: DataFormat) -> QuantizedTensor:
    """Quantize a tensor into the given format with default calibration."""
    return Quantizer(QuantizationConfig(data_format=data_format)).quantize(values)


def dequantize_tensor(tensor: QuantizedTensor) -> np.ndarray:
    """Dequantize a :class:`QuantizedTensor` back to float64 values."""
    if tensor.data_format is DataFormat.INT8:
        return tensor.dequantize()
    return np.asarray(tensor.codes, dtype=np.float64)


def storage_round_trip(values: ArrayLike, data_format: DataFormat) -> np.ndarray:
    """Round a tensor through a storage format (the HAAN input bus precision)."""
    arr = np.asarray(values, dtype=np.float64)
    if data_format is DataFormat.INT8:
        return Quantizer(QuantizationConfig(data_format=DataFormat.INT8)).round_trip(arr)
    if data_format is DataFormat.FP16:
        return FP16.round_trip(arr)
    return FP32.round_trip(arr)


def segmented_round_trip(
    rows: np.ndarray,
    segment_starts: Optional[np.ndarray],
    data_format: DataFormat,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Round stacked request segments through a storage format, per segment.

    The serving fast path stacks many independent request tensors into one
    ``(total_rows, hidden)`` matrix.  INT8 quantization is per *tensor*:
    its scale is calibrated from each request's own values, so a single
    :func:`storage_round_trip` over the stack would couple requests through
    a shared scale.  This helper applies the per-request scale segment by
    segment (``segment_starts`` holds the first row index of each request)
    in one vectorized pass, and is bit-identical to quantizing every
    segment separately.  FP16/FP32 round trips are elementwise, so the
    segmentation is irrelevant for them.  ``out``, when given, receives
    the rounded rows for every format (and is the return value).
    """
    arr = np.asarray(rows, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("segmented_round_trip expects a 2-D (rows, hidden) array")
    if data_format is not DataFormat.INT8 or arr.size == 0:
        result = storage_round_trip(arr, data_format)
        if out is not None:
            np.copyto(out, result)
            return out
        return result
    row_scale = kernels.int8_segment_scales(arr, segment_starts)
    return kernels.int8_round_trip_rows(
        arr, row_scale, out=out, int8_max=Quantizer.INT8_MAX
    )
