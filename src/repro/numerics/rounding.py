"""Rounding modes for fixed-point quantization.

The FP2FX converters of the HAAN datapath (Figure 4) round incoming values
to the internal fixed-point grid.  The paper uses round-to-nearest; this
module adds the other modes commonly offered by synthesis libraries so
their accuracy/cost trade-off can be studied in the ablation benchmarks:

* ``NEAREST_EVEN`` -- IEEE-style ties-to-even, the default everywhere else
  in this package.
* ``TRUNCATE`` -- drop the fraction (round toward negative infinity), the
  cheapest hardware (no adder on the rounding path).
* ``TOWARD_ZERO`` -- drop the fraction of the magnitude.
* ``STOCHASTIC`` -- round up with probability equal to the dropped
  fraction; unbiased in expectation, used in low-precision training
  hardware and useful here to show the subsampled statistics are not
  systematically biased by rounding.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Union

import numpy as np

from repro.numerics import kernels
from repro.numerics.fixedpoint import FixedPointFormat

ArrayLike = Union[np.ndarray, float, int, Iterable[float]]


class RoundingMode(enum.Enum):
    """Rounding rule applied when mapping reals onto a fixed-point grid."""

    NEAREST_EVEN = "nearest-even"
    TRUNCATE = "truncate"
    TOWARD_ZERO = "toward-zero"
    STOCHASTIC = "stochastic"

    @classmethod
    def from_string(cls, name: str) -> "RoundingMode":
        """Look up a mode by its value or enum name (case-insensitive)."""
        key = name.strip().lower().replace("_", "-")
        for mode in cls:
            if mode.value == key or mode.name.lower().replace("_", "-") == key:
                return mode
        raise ValueError(f"unknown rounding mode: {name!r}")


def round_to_grid(
    values: ArrayLike,
    fmt: FixedPointFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    rng: Optional[np.random.Generator] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Quantize real values onto the grid of ``fmt`` using ``mode``.

    Returns real (float64) values lying on the fixed-point grid, saturated
    to the format's range.  ``rng`` is required for stochastic rounding so
    results are reproducible; omitting it uses a fixed-seed generator.
    The rounding itself runs through the vectorized
    :func:`repro.numerics.kernels.round_codes` kernel; passing ``out``
    (same shape as ``values``, float64) makes the whole grid mapping
    allocation-free apart from the initial scaling.
    """
    arr = np.asarray(values, dtype=np.float64)
    scaled = np.asarray(np.multiply(arr, 1 << fmt.fraction_bits, out=out))
    scaled[np.isnan(scaled)] = 0.0  # the FP2FX unit treats non-finite input as zero
    codes = kernels.round_codes(scaled, mode.value, rng=rng, out=scaled)
    codes = np.clip(codes, fmt.min_code, fmt.max_code, out=codes)
    return np.multiply(codes, fmt.scale, out=codes)


def rounding_bias(
    values: ArrayLike,
    fmt: FixedPointFormat,
    mode: RoundingMode,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean signed error introduced by rounding (positive = rounded up)."""
    arr = np.asarray(values, dtype=np.float64)
    rounded = round_to_grid(arr, fmt, mode, rng=rng)
    return float(np.mean(rounded - arr))


def expected_stochastic_value(value: float, fmt: FixedPointFormat, samples: int, seed: int = 0) -> float:
    """Monte-Carlo mean of stochastic rounding of one value.

    Used by tests to check the defining property of stochastic rounding:
    the expected rounded value equals the input (up to sampling noise), so
    repeated accumulations are unbiased.
    """
    rng = np.random.default_rng(seed)
    rounded = round_to_grid(np.full(samples, value), fmt, RoundingMode.STOCHASTIC, rng=rng)
    return float(np.mean(rounded))


def hardware_cost_rank(mode: RoundingMode) -> int:
    """Relative implementation cost of each mode (0 = cheapest).

    Truncation is free; toward-zero needs a sign-dependent mux; nearest-even
    needs an increment and tie detection; stochastic needs an LFSR or other
    random source plus the increment.
    """
    order = {
        RoundingMode.TRUNCATE: 0,
        RoundingMode.TOWARD_ZERO: 1,
        RoundingMode.NEAREST_EVEN: 2,
        RoundingMode.STOCHASTIC: 3,
    }
    return order[mode]
