"""Numeric error metrics shared by the ablation studies.

The accuracy tables of the paper (Tables I and II) ultimately measure how
approximation error in the normalization statistics propagates to task
accuracy.  The helpers here quantify the intermediate numeric error in a
uniform way so the ablation benchmarks and the analytic error model in
:mod:`repro.core.error_model` can report comparable numbers:

* signal-to-quantization-noise ratio (SQNR) in dB,
* ULP distance between two floating-point arrays,
* an :class:`ErrorSummary` bundling max/mean absolute and relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.numerics.floating import FP32, FloatFormat, to_bits

ArrayLike = Union[np.ndarray, float, int]


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of the error between a reference and an approximation."""

    max_absolute: float
    mean_absolute: float
    max_relative: float
    mean_relative: float
    sqnr_db: float

    def within(self, max_relative: float) -> bool:
        """Whether the worst-case relative error is within a tolerance."""
        return self.max_relative <= max_relative

    def as_row(self) -> list:
        """Row representation for the table formatter."""
        return [
            f"{self.max_absolute:.3e}",
            f"{self.mean_absolute:.3e}",
            f"{self.max_relative:.3e}",
            f"{self.mean_relative:.3e}",
            f"{self.sqnr_db:.1f}",
        ]

    @staticmethod
    def header() -> list:
        """Column names matching :meth:`as_row`."""
        return ["max abs", "mean abs", "max rel", "mean rel", "SQNR (dB)"]


def signal_to_quantization_noise_db(reference: ArrayLike, approximation: ArrayLike) -> float:
    """SQNR in decibels: ``10 log10(sum(ref^2) / sum((ref - approx)^2))``.

    Returns ``inf`` for a perfect approximation and ``-inf`` when the
    reference has no energy but the error does.
    """
    ref = np.asarray(reference, dtype=np.float64).reshape(-1)
    approx = np.asarray(approximation, dtype=np.float64).reshape(-1)
    if ref.shape != approx.shape:
        raise ValueError("reference and approximation must have the same shape")
    noise_energy = float(np.sum((ref - approx) ** 2))
    signal_energy = float(np.sum(ref**2))
    if noise_energy == 0.0:
        return float("inf")
    if signal_energy == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_energy / noise_energy)


def ulp_distance(reference: ArrayLike, approximation: ArrayLike, fmt: FloatFormat = FP32) -> np.ndarray:
    """Distance in units-in-the-last-place between two arrays.

    Both arrays are first rounded into ``fmt``; the distance is the absolute
    difference of their ordered bit patterns (sign-magnitude mapped onto a
    monotone integer scale), the standard trick for ULP comparisons.
    """
    ref_bits = to_bits(np.asarray(reference, dtype=np.float64), fmt)
    approx_bits = to_bits(np.asarray(approximation, dtype=np.float64), fmt)
    sign_mask = 1 << (fmt.total_bits - 1)

    def ordered(bits: np.ndarray) -> np.ndarray:
        negative = (bits & sign_mask) != 0
        return np.where(negative, -(bits & (sign_mask - 1)), bits)

    return np.abs(ordered(ref_bits) - ordered(approx_bits))


def max_ulp_error(reference: ArrayLike, approximation: ArrayLike, fmt: FloatFormat = FP32) -> int:
    """Largest ULP distance over the arrays."""
    distances = ulp_distance(reference, approximation, fmt)
    return int(np.max(distances)) if distances.size else 0


def summarize_error(reference: ArrayLike, approximation: ArrayLike, eps: float = 1e-12) -> ErrorSummary:
    """Build an :class:`ErrorSummary` comparing an approximation to a reference."""
    ref = np.asarray(reference, dtype=np.float64).reshape(-1)
    approx = np.asarray(approximation, dtype=np.float64).reshape(-1)
    if ref.shape != approx.shape:
        raise ValueError("reference and approximation must have the same shape")
    absolute = np.abs(ref - approx)
    denom = np.maximum(np.abs(ref), eps)
    relative = absolute / denom
    return ErrorSummary(
        max_absolute=float(np.max(absolute)) if absolute.size else 0.0,
        mean_absolute=float(np.mean(absolute)) if absolute.size else 0.0,
        max_relative=float(np.max(relative)) if relative.size else 0.0,
        mean_relative=float(np.mean(relative)) if relative.size else 0.0,
        sqnr_db=signal_to_quantization_noise_db(ref, approx),
    )
