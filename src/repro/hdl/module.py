"""Module base class for the cycle-accurate simulator.

A :class:`Module` is the RTL building block: it owns wires and registers,
may instantiate child modules, and describes its behaviour through two
methods the simulator calls every cycle:

* :meth:`Module.propagate` -- the combinational view.  Read input signals,
  drive output :class:`~repro.hdl.signal.Wire` objects and stage register
  updates with :meth:`~repro.hdl.signal.Register.set_next`.  The simulator
  may call it several times per cycle until the wire values stop changing,
  so the method must be free of side effects other than driving signals.
* :meth:`Module.clock_edge` -- an optional sequential hook invoked exactly
  once per cycle after the combinational network has settled, immediately
  before registers commit.  Most modules stage everything in ``propagate``
  and never override it; it exists for bookkeeping that must run once per
  cycle (activity counters, assertions).

Signals and submodules are registered automatically when assigned as
attributes, mirroring how generator-based HDLs (migen, Amaranth) collect a
design hierarchy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.hdl.signal import Register, Signal, Wire


class Module:
    """Base class for all RTL modules.

    Subclasses create their signals and child modules in ``__init__`` and
    implement :meth:`propagate`.  Attribute assignment performs the
    registration; no explicit ``add_signal`` calls are needed.
    """

    def __init__(self, name: str) -> None:
        # Use object.__setattr__ so the bookkeeping dicts themselves do not
        # recurse through the registering __setattr__ below.
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_signals", {})
        object.__setattr__(self, "_submodules", {})

    # -- hierarchy bookkeeping ------------------------------------------------

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Signal):
            self._signals[key] = value
        elif isinstance(value, Module):
            self._submodules[key] = value
        object.__setattr__(self, key, value)

    @property
    def signals(self) -> Dict[str, Signal]:
        """Signals owned directly by this module (not by children)."""
        return dict(self._signals)

    @property
    def submodules(self) -> Dict[str, "Module"]:
        """Direct child modules."""
        return dict(self._submodules)

    def iter_modules(self) -> Iterator["Module"]:
        """Depth-first iteration over this module and every descendant."""
        yield self
        for child in self._submodules.values():
            yield from child.iter_modules()

    def iter_signals(self) -> Iterator[Signal]:
        """All signals of this module and its descendants."""
        for module in self.iter_modules():
            yield from module._signals.values()

    def registers(self) -> List[Register]:
        """All registers in the hierarchy rooted at this module."""
        return [s for s in self.iter_signals() if isinstance(s, Register)]

    def wires(self) -> List[Wire]:
        """All wires in the hierarchy rooted at this module."""
        return [s for s in self.iter_signals() if isinstance(s, Wire)]

    def hierarchical_signals(self, prefix: str = "") -> Dict[str, Signal]:
        """Signals keyed by dotted hierarchical path (for VCD dumping)."""
        base = f"{prefix}{self.name}"
        named: Dict[str, Signal] = {}
        for attr, signal in self._signals.items():
            named[f"{base}.{attr}"] = signal
        for child in self._submodules.values():
            named.update(child.hierarchical_signals(prefix=f"{base}."))
        return named

    # -- behaviour hooks --------------------------------------------------------

    def propagate(self) -> None:
        """Combinational behaviour; override in subclasses."""

    def clock_edge(self) -> None:
        """Optional once-per-cycle sequential hook; default does nothing."""

    def reset(self) -> None:
        """Reset every signal in the hierarchy to its declared reset value."""
        for signal in self.iter_signals():
            signal.reset_value()

    # -- diagnostics -------------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        """Human-readable hierarchy listing with signal widths."""
        pad = "  " * indent
        lines = [f"{pad}{type(self).__name__} {self.name}"]
        for attr, signal in self._signals.items():
            kind = "reg" if isinstance(signal, Register) else "wire"
            lane_txt = "" if signal.lanes == 1 else f" x{signal.lanes}"
            lines.append(f"{pad}  {kind} {attr}[{signal.width}]{lane_txt}")
        for child in self._submodules.values():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"
