"""A small cycle-accurate hardware-description and simulation kernel.

The HAAN paper describes an FPGA accelerator (Section IV) whose behaviour the
rest of :mod:`repro.hardware` models *functionally* (NumPy arithmetic plus
analytical cycle counts).  This package adds the missing register-transfer
level: a two-phase, cycle-accurate simulator in the spirit of a tiny
Verilog/migen, so the datapath units of Figures 3-6 can also be expressed as
clocked modules with explicit hand-shakes, pipelined registers and waveform
dumps, and then checked cycle by cycle against the functional golden models.

Contents
--------

* :mod:`repro.hdl.signal` -- :class:`Signal`, :class:`Wire` and
  :class:`Register`: fixed-width, optionally signed, optionally multi-lane
  values with two's-complement wrapping.
* :mod:`repro.hdl.module` -- :class:`Module`, the base class every RTL block
  derives from, with port/submodule registration and hierarchy traversal.
* :mod:`repro.hdl.simulator` -- :class:`Simulator`, the two-phase
  (combinational settle + clock edge) cycle engine.
* :mod:`repro.hdl.vcd` -- a minimal Value Change Dump writer for inspecting
  waveforms in GTKWave or any VCD viewer.
* :mod:`repro.hdl.testbench` -- stimulus drivers, monitors and scoreboards
  used by the RTL unit tests.
"""

from repro.hdl.module import Module
from repro.hdl.signal import Register, Signal, Wire
from repro.hdl.simulator import SimulationError, Simulator
from repro.hdl.testbench import Monitor, Scoreboard, StreamDriver
from repro.hdl.vcd import VcdWriter

__all__ = [
    "Signal",
    "Wire",
    "Register",
    "Module",
    "Simulator",
    "SimulationError",
    "StreamDriver",
    "Monitor",
    "Scoreboard",
    "VcdWriter",
]
