"""Fixed-width signals for the cycle-accurate simulator.

A :class:`Signal` models a named bundle of ``lanes`` parallel values, each
``width`` bits wide and interpreted as either unsigned or two's-complement
signed.  Writing a value wraps it into the representable range exactly like
a synthesised register or wire would truncate carries.

Two concrete flavours exist:

* :class:`Wire` -- combinational: driven during the settle phase of a cycle
  and read in the same cycle.  A wire that is read before it has been driven
  in the current cycle returns its previous value, which is how the
  simulator detects convergence of the combinational network.
* :class:`Register` -- sequential: ``set_next`` stages a value that becomes
  visible only after the next clock edge (the simulator calls
  :meth:`Register.commit`).

Both carry plain Python/NumPy integers; fixed-point and floating-point
payloads are represented by their raw bit codes, mirroring how a real RTL
description is agnostic about the numeric interpretation of a bus.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

IntLike = Union[int, np.integer, Iterable[int], np.ndarray]


class SignalWidthError(ValueError):
    """Raised when a signal is declared with an unusable width or lane count."""


class Signal:
    """A named, fixed-width, multi-lane value.

    Parameters
    ----------
    name:
        Identifier used in waveforms and error messages.
    width:
        Bit width of each lane (1..63; lane values are stored as int64).
    signed:
        Interpret lanes as two's-complement when True; unsigned otherwise.
    lanes:
        Number of parallel lanes carried by the signal (a scalar signal has
        one lane).
    reset:
        Value every lane takes at reset and at construction.
    """

    __slots__ = ("name", "width", "signed", "lanes", "reset", "_values")

    def __init__(
        self,
        name: str,
        width: int = 32,
        signed: bool = False,
        lanes: int = 1,
        reset: int = 0,
    ) -> None:
        if width < 1 or width > 63:
            raise SignalWidthError(f"signal {name!r}: width must be in [1, 63], got {width}")
        if lanes < 1:
            raise SignalWidthError(f"signal {name!r}: lanes must be >= 1, got {lanes}")
        self.name = name
        self.width = width
        self.signed = signed
        self.lanes = lanes
        self.reset = self._wrap_scalar(reset, width, signed)
        self._values = np.full(lanes, self.reset, dtype=np.int64)

    # -- range helpers ------------------------------------------------------

    @property
    def max_value(self) -> int:
        """Largest representable lane value."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    @property
    def min_value(self) -> int:
        """Smallest representable lane value."""
        return -(1 << (self.width - 1)) if self.signed else 0

    @staticmethod
    def _wrap_scalar(value: int, width: int, signed: bool) -> int:
        """Wrap one integer into the representable range (two's complement)."""
        mask = (1 << width) - 1
        wrapped = int(value) & mask
        if signed and wrapped >= (1 << (width - 1)):
            wrapped -= 1 << width
        return wrapped

    def _wrap(self, values: IntLike) -> np.ndarray:
        """Wrap and broadcast arbitrary integers onto this signal's lanes."""
        mask = (1 << self.width) - 1
        if isinstance(values, np.ndarray) and values.dtype.kind in "iu":
            arr = values.astype(np.int64)
        else:
            # Mask with Python integers first so arbitrarily large values
            # (beyond int64) wrap instead of overflowing the array cast.
            if isinstance(values, (int, np.integer)):
                seq = [int(values) & mask]
            else:
                seq = [int(v) & mask for v in values]
            arr = np.asarray(seq, dtype=np.int64)
        arr = arr.reshape(-1)
        if arr.size == 1 and self.lanes > 1:
            arr = np.full(self.lanes, int(arr[0]), dtype=np.int64)
        elif arr.shape != (self.lanes,):
            raise ValueError(
                f"signal {self.name!r}: expected {self.lanes} lanes, got shape {arr.shape}"
            )
        wrapped = arr & np.int64(mask)
        if self.signed:
            sign_bit = np.int64(1 << (self.width - 1))
            # Subtract the modulus as two sign_bit steps so width-63 signals
            # never materialise 2**63, which does not fit in int64.
            wrapped = np.where(wrapped >= sign_bit, (wrapped - sign_bit) - sign_bit, wrapped)
        return wrapped.astype(np.int64)

    # -- value access --------------------------------------------------------

    @property
    def value(self) -> int:
        """Current value of lane 0 (convenience for scalar signals)."""
        return int(self._values[0])

    @property
    def values(self) -> np.ndarray:
        """Copy of all lane values."""
        return self._values.copy()

    def lane(self, index: int) -> int:
        """Current value of one lane."""
        return int(self._values[index])

    def as_unsigned(self) -> np.ndarray:
        """Lane values reinterpreted as unsigned bit patterns."""
        mask = (1 << self.width) - 1
        return (self._values.astype(np.int64) & mask).astype(np.uint64)

    def reset_value(self) -> None:
        """Force every lane back to the reset value."""
        self._values[:] = self.reset

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = type(self).__name__
        if self.lanes == 1:
            return f"{kind}({self.name!r}, width={self.width}, value={self.value})"
        return f"{kind}({self.name!r}, width={self.width}, lanes={self.lanes})"


class Wire(Signal):
    """A combinational signal driven during the settle phase of each cycle."""

    __slots__ = ("_driven",)

    def __init__(self, name: str, width: int = 32, signed: bool = False, lanes: int = 1, reset: int = 0):
        super().__init__(name, width=width, signed=signed, lanes=lanes, reset=reset)
        self._driven = False

    def drive(self, values: IntLike) -> bool:
        """Set the wire's value for the current cycle.

        Returns True when the driven value differs from the previous one,
        which the simulator uses to decide whether the combinational network
        has settled.
        """
        wrapped = self._wrap(values)
        changed = bool(np.any(wrapped != self._values))
        self._values = wrapped
        self._driven = True
        return changed

    @property
    def driven(self) -> bool:
        """Whether the wire has been driven at least once this cycle."""
        return self._driven

    def clear_driven(self) -> None:
        """Mark the wire undriven (called by the simulator at cycle start)."""
        self._driven = False


class Register(Signal):
    """A clocked signal: ``set_next`` stages the value taken at the next edge."""

    __slots__ = ("_next",)

    def __init__(self, name: str, width: int = 32, signed: bool = False, lanes: int = 1, reset: int = 0):
        super().__init__(name, width=width, signed=signed, lanes=lanes, reset=reset)
        self._next = self._values.copy()

    def set_next(self, values: IntLike) -> None:
        """Stage the value the register will hold after the next clock edge."""
        self._next = self._wrap(values)

    def hold(self) -> None:
        """Stage the current value (explicit "keep" assignment)."""
        self._next = self._values.copy()

    @property
    def next_values(self) -> np.ndarray:
        """Copy of the staged next value (for debugging and assertions)."""
        return self._next.copy()

    def commit(self) -> bool:
        """Apply the staged value; returns True if the register changed."""
        changed = bool(np.any(self._next != self._values))
        self._values = self._next.copy()
        return changed

    def reset_value(self) -> None:
        """Reset both the current and the staged value."""
        super().reset_value()
        self._next = self._values.copy()
