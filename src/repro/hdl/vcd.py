"""Minimal Value Change Dump (VCD) writer.

The simulator can record every signal of a design into a ``.vcd`` file so
that waveforms of the HAAN datapath (hand-shakes, pipeline fills, FSM
states) can be inspected in GTKWave or any other VCD viewer.  Only the
subset of IEEE 1364 VCD needed for that purpose is implemented:

* a header with timescale and a flat scope per hierarchical module path,
* ``$var wire`` declarations using printable short identifiers,
* binary value changes sampled once per clock cycle.

Multi-lane signals are dumped as one variable per lane with a ``[i]``
suffix, which keeps the format simple and viewer-friendly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.hdl.signal import Signal

#: Characters available for VCD short identifiers (printable ASCII).
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _short_id(index: int) -> str:
    """Translate a counter into a compact printable VCD identifier."""
    chars: List[str] = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def _to_binary(value: int, width: int) -> str:
    """Two's-complement binary string of ``value`` at the given width."""
    mask = (1 << width) - 1
    return format(int(value) & mask, f"0{width}b")


class VcdWriter:
    """Writes signal activity to a VCD file or file-like object.

    Parameters
    ----------
    destination:
        Path of the ``.vcd`` file to create, or an open text stream (a
        :class:`io.StringIO` in tests).
    timescale:
        VCD timescale string; one simulator cycle advances one unit.
    """

    def __init__(self, destination: Union[str, Path, TextIO], timescale: str = "1ns") -> None:
        if isinstance(destination, (str, Path)):
            self._stream: TextIO = open(destination, "w", encoding="ascii")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.timescale = timescale
        self._declared = False
        self._closed = False
        #: (signal, lane) -> (identifier, width)
        self._ids: Dict[Tuple[int, int], Tuple[str, int]] = {}
        self._tracked: List[Tuple[Signal, int, str]] = []
        self._last_emitted: Dict[str, str] = {}

    # -- declaration -----------------------------------------------------------

    @property
    def declared(self) -> bool:
        """Whether the header has already been written."""
        return self._declared

    def declare_signals(self, signals: Dict[str, Signal]) -> None:
        """Write the VCD header for a hierarchy of named signals.

        ``signals`` maps dotted hierarchical paths (as produced by
        :meth:`repro.hdl.module.Module.hierarchical_signals`) to signals.
        """
        if self._declared:
            raise RuntimeError("signals already declared for this VCD writer")
        out = self._stream
        out.write("$date\n  repro.hdl simulation\n$end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        counter = 0
        current_scope: List[str] = []
        for path in sorted(signals):
            signal = signals[path]
            *scope_parts, leaf = path.split(".")
            self._switch_scope(current_scope, scope_parts)
            current_scope = scope_parts
            for lane in range(signal.lanes):
                ident = _short_id(counter)
                counter += 1
                suffix = f"[{lane}]" if signal.lanes > 1 else ""
                out.write(f"$var wire {signal.width} {ident} {leaf}{suffix} $end\n")
                self._ids[(id(signal), lane)] = (ident, signal.width)
                self._tracked.append((signal, lane, ident))
        self._switch_scope(current_scope, [])
        out.write("$enddefinitions $end\n")
        self._declared = True

    def _switch_scope(self, current: List[str], target: List[str]) -> None:
        """Emit $scope/$upscope directives to move between module scopes."""
        common = 0
        for a, b in zip(current, target):
            if a != b:
                break
            common += 1
        for _ in range(len(current) - common):
            self._stream.write("$upscope $end\n")
        for name in target[common:]:
            self._stream.write(f"$scope module {name} $end\n")

    # -- sampling ---------------------------------------------------------------

    def sample(self, cycle: int) -> None:
        """Record the value of every declared signal at the given cycle."""
        if not self._declared:
            raise RuntimeError("declare_signals must be called before sampling")
        if self._closed:
            raise RuntimeError("VCD writer already closed")
        lines: List[str] = []
        for signal, lane, ident in self._tracked:
            binary = _to_binary(signal.lane(lane), signal.width)
            if self._last_emitted.get(ident) == binary:
                continue
            self._last_emitted[ident] = binary
            lines.append(f"b{binary} {ident}")
        if lines or cycle == 0:
            self._stream.write(f"#{cycle}\n")
            for line in lines:
                self._stream.write(line + "\n")

    def close(self) -> None:
        """Flush and close the underlying stream (if owned by the writer)."""
        if self._closed:
            return
        self._closed = True
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    # -- conveniences -------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of VCD variables declared (lanes count individually)."""
        return len(self._tracked)

    @staticmethod
    def to_string(signals: Dict[str, Signal]) -> "VcdWriter":
        """Create a writer backed by an in-memory buffer (testing helper)."""
        writer = VcdWriter(io.StringIO())
        writer.declare_signals(signals)
        return writer

    def buffer_contents(self) -> Optional[str]:
        """Contents of the in-memory buffer, if the writer uses one."""
        if isinstance(self._stream, io.StringIO):
            return self._stream.getvalue()
        return None
