"""Two-phase cycle-accurate simulator.

Each simulated cycle proceeds in two phases, the standard evaluation model
of synchronous RTL:

1. **Settle** -- every module's :meth:`~repro.hdl.module.Module.propagate`
   runs repeatedly until no :class:`~repro.hdl.signal.Wire` changes value.
   This resolves combinational paths that cross module boundaries without
   requiring an explicit topological ordering of the netlist.  A settle that
   does not converge within ``max_settle_iterations`` indicates a
   combinational loop and raises :class:`SimulationError`.
2. **Clock edge** -- every module's ``clock_edge`` hook runs once, then all
   :class:`~repro.hdl.signal.Register` objects commit their staged values
   simultaneously, exactly like flip-flops on a shared clock.

The simulator optionally records every signal to a
:class:`~repro.hdl.vcd.VcdWriter` so unit tests (and curious users) can dump
waveforms of the HAAN datapath.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.hdl.vcd import VcdWriter


class SimulationError(RuntimeError):
    """Raised for combinational loops or runaway simulations."""


class Simulator:
    """Drives a module hierarchy cycle by cycle.

    Parameters
    ----------
    top:
        Root of the module hierarchy to simulate.
    max_settle_iterations:
        Upper bound on combinational settle sweeps per cycle before the
        simulator declares a combinational loop.
    vcd:
        Optional waveform writer; when given, every signal in the hierarchy
        is declared and sampled once per cycle.
    """

    def __init__(
        self,
        top: Module,
        max_settle_iterations: int = 64,
        vcd: Optional[VcdWriter] = None,
    ) -> None:
        if max_settle_iterations < 1:
            raise ValueError("max_settle_iterations must be >= 1")
        self.top = top
        self.max_settle_iterations = max_settle_iterations
        self.cycle = 0
        self._modules: List[Module] = list(top.iter_modules())
        self._registers: List[Register] = top.registers()
        self._wires: List[Wire] = top.wires()
        self._vcd = vcd
        if self._vcd is not None and not self._vcd.declared:
            self._vcd.declare_signals(top.hierarchical_signals())

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Reset the design and the cycle counter."""
        self.top.reset()
        self.cycle = 0

    def _settle(self) -> int:
        """Run combinational propagation until wires stop changing."""
        for wire in self._wires:
            wire.clear_driven()
        for iteration in range(1, self.max_settle_iterations + 1):
            snapshot = [w.values for w in self._wires]
            for module in self._modules:
                module.propagate()
            changed = any(
                bool((wire.values != old).any())
                for wire, old in zip(self._wires, snapshot)
            )
            if not changed:
                return iteration
        raise SimulationError(
            f"combinational network did not settle after {self.max_settle_iterations} iterations "
            f"(cycle {self.cycle}); check for combinational loops"
        )

    def step(self) -> None:
        """Advance the simulation by one clock cycle."""
        self._settle()
        for module in self._modules:
            module.clock_edge()
        for register in self._registers:
            register.commit()
        if self._vcd is not None:
            self._vcd.sample(self.cycle)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` clock cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        condition: Callable[["Simulator"], bool],
        max_cycles: int = 100_000,
    ) -> int:
        """Step until ``condition(self)`` is true; return cycles consumed.

        The condition is evaluated *after* each clock edge.  Raises
        :class:`SimulationError` when ``max_cycles`` elapse first, so a test
        with a broken hand-shake fails loudly instead of hanging.
        """
        start = self.cycle
        while self.cycle - start < max_cycles:
            self.step()
            if condition(self):
                return self.cycle - start
        raise SimulationError(
            f"condition not met within {max_cycles} cycles (started at cycle {start})"
        )

    def finalize(self) -> None:
        """Flush the waveform writer, if any."""
        if self._vcd is not None:
            self._vcd.close()

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize()
