"""Testbench utilities: stream drivers, monitors and scoreboards.

The RTL models in :mod:`repro.hardware.rtl` all use a simple valid-based
streaming hand-shake: a producer asserts ``valid`` and places data on a
bus; a consumer samples the bus whenever ``valid`` is high.  The helpers in
this module drive and observe such streams from a test without writing a
bespoke module per test:

* :class:`StreamDriver` feeds a list of beats onto a data bus, one per
  cycle, asserting the valid wire while beats remain.
* :class:`Monitor` records the value of a bus every cycle a qualifier
  signal is high.
* :class:`Scoreboard` compares an observed stream against an expected one,
  with optional integer tolerance to absorb rounding differences between
  the RTL and the functional golden model.

Drivers and monitors are themselves :class:`~repro.hdl.module.Module`
instances, so they participate in the normal settle/clock-edge flow of the
simulator and do not need special casing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Signal, Wire

Beat = Union[int, Sequence[int], np.ndarray]


class StreamDriver(Module):
    """Drives a data bus with one beat per cycle while data remains.

    Parameters
    ----------
    name:
        Module name.
    data:
        Wire to drive with beat payloads.
    valid:
        Wire asserted (1) on cycles that carry a beat and deasserted (0)
        afterwards.
    beats:
        Sequence of beats; each beat must match the lane count of ``data``.
    start_cycle:
        Number of idle cycles before the first beat, to exercise back-to-
        back and delayed-start behaviour of the consumer.
    """

    def __init__(
        self,
        name: str,
        data: Wire,
        valid: Wire,
        beats: Sequence[Beat],
        start_cycle: int = 0,
    ) -> None:
        super().__init__(name)
        self._data = data
        self._valid = valid
        self._beats = [np.asarray(beat, dtype=np.int64).reshape(-1) for beat in beats]
        for index, beat in enumerate(self._beats):
            if beat.size not in (1, data.lanes):
                raise ValueError(
                    f"beat {index} has {beat.size} lanes, bus {data.name!r} has {data.lanes}"
                )
        self._start_cycle = start_cycle
        self._cycle = 0

    def propagate(self) -> None:
        index = self._cycle - self._start_cycle
        if 0 <= index < len(self._beats):
            beat = self._beats[index]
            if beat.size == 1 and self._data.lanes > 1:
                beat = np.full(self._data.lanes, int(beat[0]), dtype=np.int64)
            self._data.drive(beat)
            self._valid.drive(1)
        else:
            self._valid.drive(0)

    def clock_edge(self) -> None:
        self._cycle += 1

    @property
    def done(self) -> bool:
        """True once every beat has been presented."""
        return self._cycle >= self._start_cycle + len(self._beats)

    @property
    def beats_remaining(self) -> int:
        """Beats not yet presented on the bus."""
        presented = max(0, self._cycle - self._start_cycle)
        return max(0, len(self._beats) - presented)


class Monitor(Module):
    """Records a bus value on every cycle a qualifier signal is high."""

    def __init__(self, name: str, data: Signal, qualifier: Signal) -> None:
        super().__init__(name)
        self._data = data
        self._qualifier = qualifier
        self._samples: List[np.ndarray] = []
        self._sample_cycles: List[int] = []
        self._cycle = 0

    def clock_edge(self) -> None:
        # Sampled at the clock edge, i.e. with the settled combinational
        # values of the current cycle -- the same instant a downstream
        # register would capture the bus.
        if self._qualifier.value:
            self._samples.append(self._data.values)
            self._sample_cycles.append(self._cycle)
        self._cycle += 1

    @property
    def samples(self) -> List[np.ndarray]:
        """Captured beats in arrival order."""
        return list(self._samples)

    @property
    def sample_cycles(self) -> List[int]:
        """Cycle index at which each beat was captured."""
        return list(self._sample_cycles)

    @property
    def num_samples(self) -> int:
        """Number of captured beats."""
        return len(self._samples)

    def scalar_samples(self) -> List[int]:
        """Lane-0 value of every captured beat (for scalar buses)."""
        return [int(sample[0]) for sample in self._samples]

    def clear(self) -> None:
        """Discard all captured beats (the cycle counter keeps running)."""
        self._samples.clear()
        self._sample_cycles.clear()


@dataclass
class ScoreboardMismatch:
    """One difference found by :class:`Scoreboard.compare`."""

    index: int
    expected: np.ndarray
    observed: np.ndarray

    def __str__(self) -> str:
        return f"beat {self.index}: expected {self.expected}, observed {self.observed}"


@dataclass
class Scoreboard:
    """Compares observed beats against expected beats.

    Attributes
    ----------
    tolerance:
        Maximum absolute difference allowed per lane (in raw integer codes).
        Zero demands exact equality.
    """

    tolerance: int = 0
    mismatches: List[ScoreboardMismatch] = field(default_factory=list)

    def compare(self, expected: Sequence[Beat], observed: Sequence[Beat]) -> bool:
        """Check the two streams; record mismatches and return overall pass."""
        self.mismatches.clear()
        expected_arrays = [np.asarray(e, dtype=np.int64).reshape(-1) for e in expected]
        observed_arrays = [np.asarray(o, dtype=np.int64).reshape(-1) for o in observed]
        if len(expected_arrays) != len(observed_arrays):
            self.mismatches.append(
                ScoreboardMismatch(
                    index=-1,
                    expected=np.array([len(expected_arrays)]),
                    observed=np.array([len(observed_arrays)]),
                )
            )
            return False
        for index, (exp, obs) in enumerate(zip(expected_arrays, observed_arrays)):
            if exp.shape != obs.shape or np.any(np.abs(exp - obs) > self.tolerance):
                self.mismatches.append(ScoreboardMismatch(index=index, expected=exp, observed=obs))
        return not self.mismatches

    @property
    def passed(self) -> bool:
        """Result of the most recent :meth:`compare` call."""
        return not self.mismatches

    def report(self, limit: Optional[int] = 10) -> str:
        """Human-readable mismatch summary (empty string when passing)."""
        if not self.mismatches:
            return ""
        shown = self.mismatches if limit is None else self.mismatches[:limit]
        lines = [str(m) for m in shown]
        hidden = len(self.mismatches) - len(shown)
        if hidden > 0:
            lines.append(f"... and {hidden} more mismatches")
        return "\n".join(lines)
