"""Pluggable normalization execution engine.

One compiled plan, many machines.  The engine answers "how do we execute a
normalization" exactly once, behind a registry of interchangeable
backends:

* :class:`~repro.engine.spec.EngineSpec` -- frozen, serializable execution
  description compiled once from a :class:`~repro.core.config.HaanConfig`
  plus the layer geometry (or from an installed layer).
* :class:`~repro.engine.plan.ExecutionPlan` -- the spec bound to affine
  parameters and the derived runtime helpers (predicted-ISD math,
  hardware-inverse-sqrt refinement, path flags).
* :mod:`~repro.engine.backends` -- ``reference`` (unfused golden path),
  ``vectorized`` (fused kernel + workspace pooling) and ``simulated``
  (reference numerics + hardware cycle/energy cost records), all behind
  the :class:`~repro.engine.backends.NormBackend` contract.
* :mod:`~repro.engine.registry` -- string-keyed backend registry and the
  :func:`~repro.engine.registry.build` factory
  (``engine.build(spec, backend="vectorized")``).

Import structure
----------------
The public names below are resolved **lazily** (PEP 562).  This is load
bearing, not cosmetic: :mod:`repro.llm.normalization` imports
:mod:`repro.engine.stats` (the single source of the row-statistics
equations) at module load, while the backends reach into
:mod:`repro.core` / :mod:`repro.llm` -- an eager ``__init__`` would close
that loop into a genuine import cycle.  Submodules order their imports so
that ``stats`` / ``spec`` / ``plan`` stay leaves; ``backends`` and
``registry`` may only be imported lazily (function level) from inside
``repro.core`` and ``repro.llm`` modules.
"""

from __future__ import annotations

from typing import List

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "EngineSpec": "spec",
    "compile_spec": "spec",
    "spec_for_layer": "spec",
    "ExecutionPlan": "plan",
    "compile_plan": "plan",
    "plan_for_layer": "plan",
    "NormBackend": "backends",
    "NormCostRecord": "backends",
    "ReferenceBackend": "backends",
    "SimulatedBackend": "backends",
    "VectorizedBackend": "backends",
    "RemoteBackend": "remote",
    "Engine": "registry",
    "available_backends": "registry",
    "build": "registry",
    "create_backend": "registry",
    "local_backends": "registry",
    "register_backend": "registry",
    "requires_connection": "registry",
    "validate_backend_name": "registry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
