"""`RemoteBackend`: execute a compiled plan on a normalization server.

The ROADMAP's ``remote`` backend: instead of running the kernel locally,
``run`` ships the plan's serialized :class:`~repro.engine.spec.EngineSpec`
plus the affine parameters and the stacked rows to a live
:class:`~repro.api.server.NormServer` (the ``execute`` op of the wire
protocol) and decodes ``(output, mean, isd)`` from the response.  Because
the server rebuilds the engine from the shipped spec, the remote host needs
no model or calibration state -- the spec *is* the execution contract --
and outputs stay bit-identical to every local backend (float64 survives
the wire exactly).

Registered in :mod:`repro.engine.registry` as a connection-requiring
backend: it participates in ``available_backends()`` (serving request keys
may name it) but is excluded from ``local_backends()`` sweeps that expect
zero-configuration construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.backends import NormBackend
from repro.engine.plan import ExecutionPlan
from repro.numerics import kernels


class RemoteBackend(NormBackend):
    """Forward batches to a :class:`NormServer` over the wire protocol.

    Parameters
    ----------
    address:
        ``host:port`` of the server (alternative to ``host`` + ``port``).
    host / port:
        Explicit server address.
    client:
        An already-constructed :class:`~repro.api.client.NormClient`
        (overrides the address; useful for tests and shared connections).
    execute_backend:
        Backend name the *server* runs the spec on (any of its local
        backends; all are bit-identical by the golden contract).
    timeout:
        Per-request socket timeout in seconds.
    """

    name = "remote"

    def __init__(
        self,
        address: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        client=None,
        execute_backend: str = "vectorized",
        timeout: float = 30.0,
    ):
        if client is None:
            if address is not None:
                from repro.api.server import parse_address

                host, port = parse_address(address)
            if host is None or port is None:
                raise ValueError(
                    "the remote backend needs a server to talk to: pass "
                    "address='host:port' (or host=/port=, or client=)"
                )
            from repro.api.client import NormClient

            client = NormClient.connect(host, int(port), timeout=timeout)
        self.client = client
        self.execute_backend = execute_backend

    def run(
        self,
        plan: ExecutionPlan,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        arr = plan.check_rows(rows)
        output, mean, isd = self.client.execute_spec(
            plan.spec,
            arr,
            gamma=plan.gamma,
            beta=plan.beta,
            segment_starts=segment_starts,
            anchor_isd=anchor_isd,
            backend=self.execute_backend,
        )
        if out is not None:
            np.copyto(out, output)
            return out, mean, isd
        return output, mean, isd

    def run_many(
        self,
        plan: ExecutionPlan,
        groups: Sequence[Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]],
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Execute many row-groups with **one** ``execute_bulk`` frame.

        ``groups`` holds ``(rows, segment_starts, anchor_isd)`` triples.
        The spec and affine parameters ship once instead of per group, the
        server compiles once and runs every group back to back -- the bulk
        counterpart of :meth:`run` that amortizes the wire and compile cost
        over the whole list while staying bit-identical to local execution.
        """
        if not groups:
            # Match the local loop-over-run fallback: an empty batch is a
            # no-op, not a zero-group wire frame for the server to reject.
            return []
        checked = [
            (plan.check_rows(rows), segment_starts, anchor_isd)
            for rows, segment_starts, anchor_isd in groups
        ]
        return self.client.execute_spec_bulk(
            plan.spec,
            checked,
            gamma=plan.gamma,
            beta=plan.beta,
            backend=self.execute_backend,
        )

    def close(self) -> None:
        """Close the underlying client connection."""
        self.client.close()

    def __repr__(self) -> str:
        target = getattr(self.client.transport, "address", "in-process")
        return f"RemoteBackend(target={target!r}, execute_backend={self.execute_backend!r})"
