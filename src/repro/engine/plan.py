"""`ExecutionPlan`: a compiled spec bound to its runtime parameters.

An :class:`~repro.engine.spec.EngineSpec` is pure data; executing it also
needs the layer's affine parameters and the small derived objects that are
expensive or awkward to rebuild per call (the fast-inverse-square-root
model).  :class:`ExecutionPlan` binds those together, compiled once per
layer, and hosts the two pieces of per-row math that used to live inside
:class:`~repro.core.haan_norm.HaanNormalization`:

* :meth:`ExecutionPlan.predicted_isd` -- the vectorized equation (3) over a
  stack of rows with mixed / missing anchors, and
* :meth:`ExecutionPlan.refine_isd` -- the optional hardware inverse-sqrt
  refinement of a computed ISD.

Backends receive a plan plus the stacked rows and nothing else; every
"which path does this layer take" question is answered by the plan
(:meth:`path_flags`), so no caller carries its own dispatch.

Imports only leaf modules (:mod:`numpy`, :mod:`repro.numerics`,
:mod:`repro.engine.spec`, :mod:`repro.engine.stats`); in particular it does
**not** import :mod:`repro.core`, so :mod:`repro.core.haan_norm` may import
this module at load time without a cycle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.spec import EngineSpec, spec_for_layer
from repro.numerics.fast_inv_sqrt import FastInvSqrt


class ExecutionPlan:
    """A compiled, backend-agnostic execution plan for one normalization.

    Parameters
    ----------
    spec:
        The frozen execution description.
    gamma / beta:
        Affine parameters; default to identity (ones / zeros).  Stored by
        reference, so a plan compiled from a layer shares the layer's
        arrays.
    """

    __slots__ = ("spec", "gamma", "beta", "inv_sqrt")

    def __init__(
        self,
        spec: EngineSpec,
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
    ):
        hidden = spec.hidden_size
        self.spec = spec
        self.gamma = np.ones(hidden) if gamma is None else np.asarray(gamma, dtype=np.float64)
        self.beta = np.zeros(hidden) if beta is None else np.asarray(beta, dtype=np.float64)
        if self.gamma.shape != (hidden,) or self.beta.shape != (hidden,):
            raise ValueError(f"affine parameters must have shape ({hidden},)")
        self.inv_sqrt: Optional[FastInvSqrt] = (
            FastInvSqrt(newton_iterations=spec.newton_iterations)
            if spec.use_hardware_inv_sqrt
            else None
        )

    # -- dispatch answers ---------------------------------------------------

    def path_flags(self) -> Tuple[bool, bool]:
        """``(was_predicted, was_subsampled)`` of any execution of this plan.

        Determined by configuration alone: skipped layers predict the ISD
        and subsample only the LayerNorm mean (when enabled); computed
        layers subsample whenever a subsample length is configured.
        """
        spec = self.spec
        if spec.skipped:
            subsampled = (
                spec.subsample_length is not None
                and spec.subsample_mean
                and not spec.is_rms
            )
            return True, subsampled
        return False, spec.subsample_length is not None

    # -- per-row math hoisted out of HaanNormalization ----------------------

    def predicted_isd(self, anchor_isd: Optional[np.ndarray], num_rows: int) -> np.ndarray:
        """Vectorized equation (3) over a stack of rows with mixed anchors.

        Rows whose anchor ISD is missing (``NaN``) fall back to the
        calibration-set scalar, matching what the per-request path does
        when a context does not hold the anchor layer.
        """
        spec = self.spec
        offset = spec.layer_index - spec.predictor_anchor_layer
        fallback = float(np.exp(spec.predictor_anchor_log_isd + spec.predictor_decay * offset))
        if anchor_isd is None:
            return np.full(num_rows, fallback)
        anchor = np.asarray(anchor_isd, dtype=np.float64)
        if anchor.shape != (num_rows,):
            raise ValueError(f"anchor_isd must have shape ({num_rows},); got {anchor.shape}")
        missing = ~np.isfinite(anchor)
        if np.all(missing):
            return np.full(num_rows, fallback)
        safe = np.where(missing, 1.0, anchor)
        predicted = np.exp(np.log(safe) + spec.predictor_decay * offset)
        return np.where(missing, fallback, predicted)

    def refine_isd(self, isd: np.ndarray) -> np.ndarray:
        """Optionally route a computed ISD through the hardware inverse sqrt."""
        if self.inv_sqrt is None:
            return isd
        variance = 1.0 / np.square(isd) - self.spec.eps
        return self.inv_sqrt.compute(np.maximum(variance, 0.0) + self.spec.eps)

    # -- validation helpers shared by backends ------------------------------

    def check_rows(self, rows: np.ndarray) -> np.ndarray:
        """Validate and coerce a stacked-rows operand to float64."""
        arr = np.asarray(rows)
        if arr.dtype.kind not in "fiub":
            # float64 coercion of complex rows only *warns* while discarding
            # the imaginary parts; refuse instead of corrupting silently.
            raise ValueError(
                f"rows dtype {arr.dtype} is not real-numeric "
                "(float/int/bool); refusing lossy float64 coercion"
            )
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.spec.hidden_size:
            raise ValueError(
                f"forward_batched expects (rows, {self.spec.hidden_size}); got {arr.shape}"
            )
        return arr

    def describe(self) -> dict:
        """Plain-value summary (the spec dict plus plan-level facts)."""
        payload = self.spec.to_dict()
        payload["affine_identity"] = bool(
            np.all(self.gamma == 1.0) and np.all(self.beta == 0.0)
        )
        return payload


def compile_plan(
    spec: EngineSpec,
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
) -> ExecutionPlan:
    """Compile a spec (plus optional affine parameters) into a plan."""
    return ExecutionPlan(spec, gamma=gamma, beta=beta)


def plan_for_layer(layer) -> ExecutionPlan:
    """Compile the plan of an installed normalization layer.

    The plan shares the layer's affine arrays by reference, so
    :meth:`~repro.llm.normalization.BaseNorm.load_affine` must invalidate
    any cached plan (it does).
    """
    return ExecutionPlan(spec_for_layer(layer), gamma=layer.gamma, beta=layer.beta)
