"""Single source of the per-row normalization statistics equations.

Before the engine existed the statistics math lived twice: once inline in
:class:`~repro.llm.normalization.LayerNorm` / ``RMSNorm`` (``rows.mean`` /
``rows.var`` spelled out) and once in the :mod:`repro.numerics.kernels`
rowwise helpers that mirror those NumPy reductions bit for bit.  This
module is now the **only** place the equations appear: the reference
backend, the fused vectorized kernel *and* the reference layer classes all
route through these functions, so the formulas can never drift apart.

All functions are bit-identical to the historical NumPy expressions
(``tests/test_kernels.py`` and ``tests/test_engine.py`` assert exact
equality, never tolerances) and accept an optional
:class:`~repro.numerics.kernels.KernelWorkspace` to pool the intermediate
deviation / square matrices.

Imports only :mod:`numpy` and :mod:`repro.numerics.kernels` -- a leaf
module, safely importable from :mod:`repro.llm.normalization` without
cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.numerics import kernels


def layernorm_row_statistics(
    rows: np.ndarray,
    eps: float,
    workspace: Optional[kernels.KernelWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(mean, isd)`` of LayerNorm (paper equation (1)).

    Bit-identical to ``rows.mean(axis=1)`` and
    ``1 / sqrt(rows.var(axis=1) + eps)``.
    """
    mean = np.mean(rows, axis=1)
    isd = kernels.inv_sqrt_stat(kernels.rowwise_variance(rows, workspace), eps)
    return mean, isd


def rmsnorm_row_statistics(
    rows: np.ndarray,
    eps: float,
    workspace: Optional[kernels.KernelWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(mean, isd)`` of RMSNorm (paper equation (2)).

    RMSNorm never re-centers, so the mean is identically zero and the ISD
    is ``1 / sqrt(mean(rows**2) + eps)`` -- bit-identical to the historical
    ``np.mean(np.square(rows), axis=1)`` expression.
    """
    isd = kernels.inv_sqrt_stat(kernels.rowwise_mean_square(rows, workspace), eps)
    return np.zeros(rows.shape[0]), isd


def row_statistics(
    rows: np.ndarray,
    rms: bool,
    eps: float,
    workspace: Optional[kernels.KernelWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact per-row statistics, dispatched on the normalization kind."""
    if rms:
        return rmsnorm_row_statistics(rows, eps, workspace)
    return layernorm_row_statistics(rows, eps, workspace)


def skipped_mean(
    rows: np.ndarray,
    rms: bool,
    subsample_length: Optional[int],
    subsample_mean: bool,
) -> np.ndarray:
    """Mean of a layer whose ISD is predicted rather than computed.

    RMSNorm never re-centers; LayerNorm may estimate the mean from the
    leading ``subsample_length`` elements (always a truncation, regardless
    of the subsample policy -- the hardware mean path streams the prefix).
    """
    if rms:
        return np.zeros(rows.shape[0])
    if subsample_length is not None and subsample_mean:
        return rows[:, : min(subsample_length, rows.shape[1])].mean(axis=1)
    return rows.mean(axis=1)
