"""`EngineSpec`: the frozen, serializable description of one normalization.

Before the engine existed, "how do we execute this norm" was re-derived at
every call site from a mix of :class:`~repro.core.config.HaanConfig`
fields, :class:`~repro.core.haan_norm.HaanNormalization` attributes and
per-call keyword arguments.  The spec collapses all of that into one
immutable record compiled **once** -- from a ``HaanConfig`` plus the layer
geometry (:func:`compile_spec`) or from an already-installed layer object
(:func:`spec_for_layer`) -- and every backend executes from the spec alone.

Every field is a plain ``str`` / ``int`` / ``float`` / ``bool`` / ``None``,
so a spec round-trips through JSON (:meth:`EngineSpec.to_dict` /
:meth:`EngineSpec.from_dict`) and can be shipped to a remote executor or
stored next to a calibration artifact.

This module deliberately imports only the standard library: it is the leaf
of the engine package and may be imported from anywhere in ``repro``
(including :mod:`repro.llm.normalization`) without creating import cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

#: Normalization kinds a spec can describe (``NormKind`` enum values).
NORM_KINDS = ("layernorm", "rmsnorm")

#: Storage formats of the quantize step (``DataFormat`` enum values);
#: ``None`` means no storage round trip at all -- the exact reference
#: layers, which never quantize their input.
STORAGE_FORMATS = ("int8", "fp16", "fp32")

#: Subsample policies (``SubsamplePolicy`` enum values).
SUBSAMPLE_POLICIES = ("truncate", "strided")


@dataclass(frozen=True)
class EngineSpec:
    """Immutable execution description of one normalization layer.

    Attributes
    ----------
    kind:
        ``"layernorm"`` or ``"rmsnorm"``.
    hidden_size:
        Width of the vectors being normalized.
    eps:
        Numerical-stability epsilon added to the spread statistic.
    storage:
        Operand storage format (``"int8"`` / ``"fp16"`` / ``"fp32"``), or
        ``None`` for the exact reference path that performs no round trip.
    subsample_length / subsample_policy / subsample_mean:
        Equation (4) settings (``subsample_length`` is expressed against
        the *executed* hidden size, i.e. already scaled to the simulation
        width); ``None`` length disables subsampling.
    skipped:
        Whether this layer's ISD is predicted (equation (3)) rather than
        computed.  When True the four ``predictor_*`` coefficients must be
        present.
    use_hardware_inv_sqrt / newton_iterations:
        Route computed ISDs through the fast-inverse-square-root model.
    layer_index:
        Position in the model's normalization order; the predictor offset
        is ``layer_index - predictor_anchor_layer``.
    predictor_*:
        The log-linear ISD predictor coefficients of the skip range
        (:class:`~repro.core.predictor.IsdPredictor` flattened to plain
        numbers so the spec stays serializable).
    """

    kind: str
    hidden_size: int
    eps: float = 1e-5
    storage: Optional[str] = None
    subsample_length: Optional[int] = None
    subsample_policy: str = "truncate"
    subsample_mean: bool = True
    skipped: bool = False
    use_hardware_inv_sqrt: bool = False
    newton_iterations: int = 1
    layer_index: int = 0
    predictor_anchor_layer: Optional[int] = None
    predictor_last_layer: Optional[int] = None
    predictor_decay: Optional[float] = None
    predictor_anchor_log_isd: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in NORM_KINDS:
            raise ValueError(f"unknown norm kind {self.kind!r}; expected one of {NORM_KINDS}")
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be positive")
        if self.storage is not None and self.storage not in STORAGE_FORMATS:
            raise ValueError(
                f"unknown storage format {self.storage!r}; expected one of "
                f"{STORAGE_FORMATS} or None"
            )
        if self.subsample_length is not None and self.subsample_length <= 0:
            raise ValueError("subsample_length must be positive")
        if self.subsample_policy not in SUBSAMPLE_POLICIES:
            raise ValueError(
                f"unknown subsample policy {self.subsample_policy!r}; "
                f"expected one of {SUBSAMPLE_POLICIES}"
            )
        if self.newton_iterations < 0:
            raise ValueError("newton_iterations must be non-negative")
        if self.skipped:
            missing = [
                name
                for name in (
                    "predictor_anchor_layer",
                    "predictor_last_layer",
                    "predictor_decay",
                    "predictor_anchor_log_isd",
                )
                if getattr(self, name) is None
            ]
            if missing:
                raise ValueError(
                    f"a skipped spec needs predictor coefficients; missing {missing}"
                )

    # -- derived views -----------------------------------------------------

    @property
    def is_rms(self) -> bool:
        """True for RMSNorm semantics (no re-centering, mean pinned to 0)."""
        return self.kind == "rmsnorm"

    @property
    def subsampling_enabled(self) -> bool:
        """True when statistics are estimated from a truncated input."""
        return self.subsample_length is not None

    def with_overrides(self, **kwargs: Any) -> "EngineSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-value dictionary (JSON-safe) describing this spec."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        return cls(**payload)


def compile_spec(
    config,
    kind,
    hidden_size: int,
    layer_index: int = 0,
    eps: float = 1e-5,
    predictor=None,
    subsample_policy: str = "truncate",
    subsample_length: Optional[int] = None,
) -> EngineSpec:
    """Compile a spec from a :class:`~repro.core.config.HaanConfig`.

    ``config`` and ``predictor`` are duck-typed (only public attributes are
    read) so this module stays import-free.  ``subsample_length`` overrides
    the config's value -- callers that scale the paper's ``N_sub`` onto a
    simulated hidden width (as :func:`repro.core.calibration.apply_haan`
    does) pass the scaled length here; otherwise the config's own value is
    used verbatim.
    """
    skipped = bool(config.is_skipped(layer_index))
    if skipped and predictor is None:
        raise ValueError("a predictor is required to compile a skipped layer's spec")
    if subsample_length is None:
        subsample_length = config.subsample_length
    return EngineSpec(
        kind=_kind_value(kind),
        hidden_size=int(hidden_size),
        eps=float(eps),
        storage=_enum_value(config.data_format),
        subsample_length=subsample_length,
        subsample_policy=_enum_value(subsample_policy) or "truncate",
        subsample_mean=bool(config.subsample_mean),
        skipped=skipped,
        use_hardware_inv_sqrt=bool(config.use_hardware_inv_sqrt),
        newton_iterations=int(config.newton_iterations),
        layer_index=int(layer_index),
        **_predictor_fields(predictor if skipped else None),
    )


def spec_for_layer(layer) -> EngineSpec:
    """Compile the spec of an installed normalization layer.

    Works for both :class:`~repro.core.haan_norm.HaanNormalization` (reads
    its skip / subsample / quantize configuration) and the exact reference
    layers (which compile to a plain spec: no storage round trip, no
    subsampling, never skipped).  Duck-typed, so importing the layer
    classes is unnecessary.
    """
    predictor = getattr(layer, "predictor", None)
    skipped = predictor is not None and predictor.covers(layer.layer_index)
    subsample = getattr(layer, "subsample", None)
    data_format = getattr(layer, "data_format", None)
    return EngineSpec(
        kind=_kind_value(layer.kind),
        hidden_size=int(layer.hidden_size),
        eps=float(layer.eps),
        storage=_enum_value(data_format),
        subsample_length=None if subsample is None else int(subsample.length),
        subsample_policy="truncate" if subsample is None else _enum_value(subsample.policy),
        subsample_mean=bool(getattr(layer, "subsample_mean", True)),
        skipped=skipped,
        use_hardware_inv_sqrt=bool(getattr(layer, "use_hardware_inv_sqrt", False)),
        newton_iterations=int(getattr(layer, "newton_iterations", 1)),
        layer_index=int(layer.layer_index),
        **_predictor_fields(predictor if skipped else None),
    )


def _kind_value(kind) -> str:
    """The ``NormKind`` value string of an enum member (or a plain string)."""
    value = _enum_value(kind)
    if value is None:
        raise ValueError("a norm kind is required")
    return value


def _enum_value(obj) -> Optional[str]:
    """``obj.value`` for enum members, the string itself otherwise."""
    if obj is None:
        return None
    value = getattr(obj, "value", obj)
    return str(value)


def _predictor_fields(predictor) -> Dict[str, Optional[float]]:
    """Flatten predictor coefficients into spec fields (all None when absent)."""
    if predictor is None:
        return {
            "predictor_anchor_layer": None,
            "predictor_last_layer": None,
            "predictor_decay": None,
            "predictor_anchor_log_isd": None,
        }
    return {
        "predictor_anchor_layer": int(predictor.anchor_layer),
        "predictor_last_layer": int(predictor.last_layer),
        "predictor_decay": float(predictor.decay),
        "predictor_anchor_log_isd": float(predictor.anchor_log_isd),
    }
