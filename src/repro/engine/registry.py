"""String-keyed backend registry and the `engine.build` factory.

The registry is the single place a "backend name" means anything: serving
request keys, CLI ``--backend`` flags and the eval sweeps all resolve
through :func:`create_backend`, and an unknown name always fails with the
full list of registered backends.  Adding a new execution machine (a new
storage format path, an accelerator baseline, a remote executor) is one
:func:`register_backend` call -- no caller grows another branch.

:class:`Engine` is the bound pair the rest of the stack holds on to: one
compiled :class:`~repro.engine.plan.ExecutionPlan` plus one backend, with
``run`` as the only execution entry point.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.engine.backends import (
    NormBackend,
    ReferenceBackend,
    SimulatedBackend,
    VectorizedBackend,
)
from repro.engine.plan import ExecutionPlan, compile_plan
from repro.engine.spec import EngineSpec

#: Backend factories keyed by registry name.
_FACTORIES: Dict[str, Callable[..., NormBackend]] = {}

#: Names of backends that need connection configuration (a server address)
#: and therefore cannot be built by zero-argument sweeps.
_CONNECTION_BACKENDS: set = set()


def register_backend(
    name: str, factory: Callable[..., NormBackend], requires_connection: bool = False
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``requires_connection=True`` marks backends (like ``remote``) that
    cannot be instantiated without caller-supplied connection details;
    they stay listed in :func:`available_backends` but are excluded from
    :func:`local_backends`, the set sweeps and tests iterate.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _FACTORIES[name] = factory
    if requires_connection:
        _CONNECTION_BACKENDS.add(name)
    else:
        _CONNECTION_BACKENDS.discard(name)


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_FACTORIES)


def local_backends() -> List[str]:
    """Sorted backends constructible with no configuration (sweepable)."""
    return sorted(name for name in _FACTORIES if name not in _CONNECTION_BACKENDS)


def requires_connection(name: str) -> bool:
    """Whether a backend needs connection configuration to be built."""
    return name in _CONNECTION_BACKENDS


def validate_backend_name(name: str) -> None:
    """Raise ``ValueError`` listing the registry when ``name`` is unknown.

    The cheap front-door check (no backend is instantiated): serving
    ``submit()``, the CLIs and the wire-protocol handler all call this so
    an unknown backend fails fast with the same actionable message.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown normalization backend {name!r}; "
            f"registered backends: {', '.join(available_backends())}"
        )


def create_backend(name: str, **kwargs) -> NormBackend:
    """Instantiate a registered backend by name.

    Raises ``ValueError`` listing the registry contents for unknown names,
    so every caller (CLI flags, serving request keys) reports the same
    actionable error.
    """
    validate_backend_name(name)
    return _FACTORIES[name](**kwargs)


def _remote_factory(**kwargs) -> NormBackend:
    """Build the ``remote`` backend (imported lazily: it pulls in repro.api)."""
    from repro.engine.remote import RemoteBackend

    return RemoteBackend(**kwargs)


def _costed_simulated_factory(config_name: str) -> Callable[..., NormBackend]:
    """Factory for a `simulated` variant pinned to a named accelerator.

    The paper's baseline accelerators (SOLE / DFX / MHAA) register through
    this so comparison sweeps price batches on the baseline's datapath via
    plain ``engine.build(spec, backend="simulated-sole")`` -- no caller
    carries accelerator-config plumbing.  An explicit ``accelerator_config``
    (per-request selection) still overrides the pinned default.
    """

    def factory(accelerator_config=None, **kwargs) -> NormBackend:
        if accelerator_config is None:
            from repro.hardware.configs import resolve_accelerator_config

            accelerator_config = resolve_accelerator_config(config_name)
        return SimulatedBackend(accelerator_config=accelerator_config, **kwargs)

    return factory


register_backend(ReferenceBackend.name, ReferenceBackend)
register_backend(VectorizedBackend.name, VectorizedBackend)
register_backend(SimulatedBackend.name, SimulatedBackend)
register_backend("remote", _remote_factory, requires_connection=True)
for _baseline in ("sole", "dfx", "mhaa"):
    register_backend(f"simulated-{_baseline}", _costed_simulated_factory(_baseline))
del _baseline


class Engine:
    """One compiled plan bound to one execution backend."""

    __slots__ = ("plan", "backend")

    def __init__(self, plan: ExecutionPlan, backend: NormBackend):
        self.plan = plan
        self.backend = backend

    @property
    def name(self) -> str:
        """Registry name of the bound backend."""
        return self.backend.name

    @property
    def spec(self) -> EngineSpec:
        """The frozen execution description this engine runs."""
        return self.plan.spec

    def run(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace=None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalize stacked request rows; returns ``(output, mean, isd)``."""
        return self.backend.run(
            self.plan,
            rows,
            segment_starts=segment_starts,
            anchor_isd=anchor_isd,
            workspace=workspace,
            out=out,
        )

    def run_many(
        self,
        groups,
        workspace=None,
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Run many independent ``(rows, segment_starts, anchor_isd)`` groups.

        Backends that can amortize per-call overhead across the list (the
        ``remote`` backend ships one ``execute_bulk`` frame instead of one
        frame per group) override ``run_many``; everything else falls back
        to looping :meth:`run`.
        """
        bulk = getattr(self.backend, "run_many", None)
        if bulk is not None:
            return bulk(self.plan, groups)
        return [
            self.run(rows, segment_starts, anchor_isd, workspace=workspace)
            for rows, segment_starts, anchor_isd in groups
        ]

    def path_flags(self) -> Tuple[bool, bool]:
        """``(was_predicted, was_subsampled)`` of executions of this engine."""
        return self.plan.path_flags()

    def __repr__(self) -> str:
        spec = self.plan.spec
        return (
            f"Engine(backend={self.name!r}, kind={spec.kind!r}, "
            f"hidden={spec.hidden_size}, storage={spec.storage!r}, "
            f"skipped={spec.skipped})"
        )


def build(
    spec_or_plan: Union[EngineSpec, ExecutionPlan],
    backend: Union[str, NormBackend] = "vectorized",
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
    **backend_kwargs,
) -> Engine:
    """Build an engine from a spec (or compiled plan) and a backend name.

    The config-driven factory every norm-executing call site uses::

        engine = build(spec, backend="vectorized")
        output, mean, isd = engine.run(rows, segment_starts)

    ``backend`` may also be an already-constructed :class:`NormBackend`
    (shared scratch pools, a pre-configured simulated accelerator);
    ``backend_kwargs`` are forwarded to the registry factory otherwise.
    """
    if isinstance(spec_or_plan, ExecutionPlan):
        if gamma is not None or beta is not None:
            raise ValueError("gamma/beta are compiled into the plan already")
        plan = spec_or_plan
    else:
        plan = compile_plan(spec_or_plan, gamma=gamma, beta=beta)
    resolved = backend if isinstance(backend, NormBackend) else create_backend(
        backend, **backend_kwargs
    )
    return Engine(plan, resolved)
