"""Normalization execution backends: one contract, three machines.

Every backend executes the same :class:`~repro.engine.plan.ExecutionPlan`
contract::

    output, mean, isd = backend.run(plan, rows, segment_starts, anchor_isd,
                                    workspace=..., out=...)

over a ``(total_rows, hidden)`` stack of independent request segments, and
they are interchangeable by construction:

* :class:`ReferenceBackend` -- the unfused golden path: separate full-array
  passes for quantize, statistics and affine with fresh intermediates,
  built from the retained reference functions
  (:func:`~repro.numerics.quantization.segmented_round_trip`,
  :func:`~repro.core.subsampling.batched_subsampled_statistics`, the
  :mod:`repro.engine.stats` equations).  Every other backend is tested
  bit-for-bit against it.
* :class:`VectorizedBackend` -- the fused single-pass
  :func:`repro.numerics.kernels.haan_normalize_rows` kernel over pooled
  :class:`~repro.numerics.kernels.KernelWorkspace` scratch; the serving
  fast path.
* :class:`SimulatedBackend` -- accuracy *and* hardware cost from one run:
  numerics delegate to the reference backend (so outputs stay bit-identical
  to it), while the :mod:`repro.hardware.units` cycle models and the
  bottom-up :class:`~repro.hardware.energy.EnergyModel` price each batch
  into a :class:`NormCostRecord`.

Backends carry no per-layer state beyond reusable scratch; all layer
configuration arrives through the plan, which is what makes a single
backend instance shareable across layers and requests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.subsampling import (
    SubsamplePolicy,
    SubsampleSettings,
    batched_subsampled_statistics,
    validate_segment_lengths,
)
from repro.engine import stats
from repro.engine.plan import ExecutionPlan
from repro.llm.config import NormKind
from repro.numerics import kernels
from repro.numerics.quantization import DataFormat, segmented_round_trip

BatchResult = Tuple[np.ndarray, np.ndarray, np.ndarray]


class NormBackend:
    """Contract every execution backend implements.

    ``run`` normalizes stacked request rows and returns
    ``(output, mean, isd)``; ``workspace`` (scratch pooling) and ``out``
    (caller-owned output buffer) are optional and backends that cannot use
    them simply honor their semantics (results land in ``out`` when given).
    """

    #: Registry key of the backend (subclasses override).
    name = "abstract"

    def run(
        self,
        plan: ExecutionPlan,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> BatchResult:
        raise NotImplementedError


def _segment_lengths(segment_starts: Optional[np.ndarray], total_rows: int) -> np.ndarray:
    """Per-segment row counts of a stacked batch (one segment when unmarked)."""
    if segment_starts is None:
        return np.array([total_rows])
    return np.diff(np.append(np.asarray(segment_starts, dtype=np.int64), total_rows))


def _norm_kind(plan: ExecutionPlan) -> NormKind:
    """The ``NormKind`` enum member a plan's spec describes."""
    return NormKind.RMSNORM if plan.spec.is_rms else NormKind.LAYERNORM


class ReferenceBackend(NormBackend):
    """Unfused golden path built from the retained reference functions."""

    name = "reference"

    def run(
        self,
        plan: ExecutionPlan,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> BatchResult:
        spec = plan.spec
        arr = plan.check_rows(rows)
        if spec.storage is None:
            quantized = arr
        else:
            quantized = segmented_round_trip(
                arr, segment_starts, DataFormat.from_string(spec.storage)
            )
        num_rows = arr.shape[0]
        if spec.skipped:
            isd = plan.predicted_isd(anchor_isd, num_rows)
            mean = stats.skipped_mean(
                quantized, spec.is_rms, spec.subsample_length, spec.subsample_mean
            )
        elif spec.subsample_length is not None:
            lengths = _segment_lengths(segment_starts, num_rows)
            mean, isd = batched_subsampled_statistics(
                quantized,
                lengths,
                SubsampleSettings(
                    length=spec.subsample_length,
                    policy=SubsamplePolicy(spec.subsample_policy),
                ),
                kind=_norm_kind(plan),
                eps=spec.eps,
                subsample_mean=spec.subsample_mean,
            )
            isd = plan.refine_isd(isd)
        else:
            mean, isd = stats.row_statistics(quantized, spec.is_rms, spec.eps)
            isd = plan.refine_isd(isd)
        normalized = (quantized - mean[:, None]) * isd[:, None]
        result = normalized * plan.gamma[None, :] + plan.beta[None, :]
        if out is not None:
            np.copyto(out, result)
            return out, mean, isd
        return result, mean, isd


class VectorizedBackend(NormBackend):
    """Fused single-pass kernel path with pooled workspace scratch."""

    name = "vectorized"

    def __init__(self, workspace: Optional[kernels.KernelWorkspace] = None):
        #: Backend-owned scratch pool, used when the caller supplies none.
        self.workspace = workspace if workspace is not None else kernels.KernelWorkspace()

    def run(
        self,
        plan: ExecutionPlan,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> BatchResult:
        spec = plan.spec
        arr = plan.check_rows(rows)
        predicted = None
        refine = None
        if spec.skipped:
            predicted = plan.predicted_isd(anchor_isd, arr.shape[0])
        else:
            refine = plan.refine_isd
            if spec.subsample_length is not None:
                validate_segment_lengths(
                    _segment_lengths(segment_starts, arr.shape[0]), arr.shape[0]
                )
        return kernels.haan_normalize_rows(
            arr,
            plan.gamma,
            plan.beta,
            storage=spec.storage,
            segment_starts=segment_starts,
            rms=spec.is_rms,
            eps=spec.eps,
            subsample_length=spec.subsample_length,
            subsample_policy=spec.subsample_policy,
            subsample_mean=spec.subsample_mean,
            predicted_isd=predicted,
            refine_isd=refine,
            workspace=workspace if workspace is not None else self.workspace,
            out=out,
        )


@dataclass(frozen=True)
class NormCostRecord:
    """Hardware cost of one batch executed by the simulated backend."""

    config_name: str
    num_rows: int
    hidden_size: int
    skipped: bool
    subsample_length: Optional[int]
    stats_cycles: int
    isd_cycles: int
    norm_cycles: int
    latency_seconds: float
    energy_nj: float

    @property
    def total_cycles(self) -> int:
        """Cycles across the statistics, ISD and normalization stages."""
        return self.stats_cycles + self.isd_cycles + self.norm_cycles

    def stage_shares(self) -> dict:
        """Fraction of cycles per stage (the latency breakdown of the batch)."""
        total = self.total_cycles
        if total == 0:
            return {"stats": 0.0, "isd": 0.0, "normalize": 0.0}
        return {
            "stats": self.stats_cycles / total,
            "isd": self.isd_cycles / total,
            "normalize": self.norm_cycles / total,
        }


class SimulatedBackend(NormBackend):
    """Reference numerics plus the accelerator's cycle / energy cost models.

    Outputs are produced by the :class:`ReferenceBackend` (so accuracy
    evaluation through this backend is exact), while every batch is priced
    by the :mod:`repro.hardware.units` cycle models and the bottom-up
    :class:`~repro.hardware.energy.EnergyModel` of the configured
    accelerator -- one run yields both the numbers and the bill.

    Hardware modules are imported lazily inside ``__init__``: the hardware
    package reaches back into :mod:`repro.core` / :mod:`repro.llm`, and a
    module-level import here would cycle when the engine is imported during
    package initialization.
    """

    name = "simulated"

    #: Default bound on retained per-batch records (the lifetime totals are
    #: separate counters, so nothing is lost when the window overwrites).
    DEFAULT_RECORD_CAPACITY = 4096

    def __init__(self, accelerator_config=None, record_capacity: int = DEFAULT_RECORD_CAPACITY):
        from repro.hardware.configs import HAAN_V1
        from repro.hardware.energy import EnergyModel
        from repro.hardware.units import (
            InputStatisticsCalculator,
            IsdPredictorUnit,
            NormalizationUnit,
            SquareRootInverter,
        )

        self.config = accelerator_config if accelerator_config is not None else HAAN_V1
        self.stats_unit = InputStatisticsCalculator(
            width=self.config.stats_width, data_format=self.config.data_format
        )
        self.sqrt_unit = SquareRootInverter(latency=self.config.inv_sqrt_latency)
        self.norm_unit = NormalizationUnit(
            width=self.config.norm_width, data_format=self.config.data_format
        )
        self.predictor_unit = IsdPredictorUnit(latency=self.config.predictor_latency)
        if record_capacity < 1:
            raise ValueError("record_capacity must be at least 1")
        self.energy_model = EnergyModel()
        self._reference = ReferenceBackend()
        #: Bounded window of the most recent per-batch cost records: a
        #: long-running serving session caches this backend on its layers,
        #: so an ever-growing list would leak (the same reasoning as the
        #: telemetry LatencyReservoir).  Lifetime aggregates live in the
        #: counters below and never saturate.
        self.records: Deque[NormCostRecord] = deque(maxlen=record_capacity)
        self.batches_recorded = 0
        self._lifetime_cycles = 0
        self._lifetime_energy_nj = 0.0

    def run(
        self,
        plan: ExecutionPlan,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> BatchResult:
        result = self._reference.run(
            plan, rows, segment_starts, anchor_isd, workspace=workspace, out=out
        )
        record = self._cost(plan, result[0].shape[0])
        self.records.append(record)
        self.batches_recorded += 1
        self._lifetime_cycles += record.total_cycles
        self._lifetime_energy_nj += record.energy_nj
        return result

    # -- cost model ---------------------------------------------------------

    def _cost(self, plan: ExecutionPlan, num_rows: int) -> NormCostRecord:
        spec = plan.spec
        hidden = spec.hidden_size
        needs_mean = not spec.is_rms
        if spec.skipped:
            stats_cycles = (
                self.stats_unit.cycles_for(num_rows, hidden, spec.subsample_length)
                if needs_mean
                else 0
            )
            isd_cycles = self.predictor_unit.cycles_for(num_rows)
        else:
            stats_cycles = self.stats_unit.cycles_for(num_rows, hidden, spec.subsample_length)
            isd_cycles = self.sqrt_unit.cycles_for(num_rows)
        norm_cycles = self.norm_unit.cycles_for(num_rows, hidden)
        total_cycles = stats_cycles + isd_cycles + norm_cycles
        latency_seconds = total_cycles * self.config.cycle_time_ns * 1e-9
        energy_nj = self._energy_nj(spec, num_rows, latency_seconds)
        return NormCostRecord(
            config_name=self.config.name,
            num_rows=num_rows,
            hidden_size=hidden,
            skipped=spec.skipped,
            subsample_length=spec.subsample_length,
            stats_cycles=int(stats_cycles),
            isd_cycles=int(isd_cycles),
            norm_cycles=int(norm_cycles),
            latency_seconds=latency_seconds,
            energy_nj=energy_nj,
        )

    def _energy_nj(self, spec, num_rows: int, latency_seconds: float) -> float:
        if num_rows == 0:
            return 0.0
        from repro.hardware.workload import NormalizationWorkload

        workload = NormalizationWorkload(
            model_name="engine-batch",
            embedding_dim=spec.hidden_size,
            num_norm_layers=1,
            seq_len=num_rows,
            norm_kind=NormKind.RMSNORM if spec.is_rms else NormKind.LAYERNORM,
            num_skipped_layers=1 if spec.skipped else 0,
            subsample_length=spec.subsample_length,
        )
        report = self.energy_model.estimate(self.config, workload, latency_seconds)
        return report.total_nj

    # -- record access ------------------------------------------------------

    @property
    def last_record(self) -> Optional[NormCostRecord]:
        """Cost record of the most recent batch (None before any run)."""
        return self.records[-1] if self.records else None

    def pop_records(self) -> List[NormCostRecord]:
        """Drain and return the retained record window (lifetime totals stay)."""
        drained = list(self.records)
        self.records.clear()
        return drained

    def total_cycles(self) -> int:
        """Modelled cycles across every batch ever executed (lifetime)."""
        return self._lifetime_cycles

    def total_energy_nj(self) -> float:
        """Modelled energy (nanojoules) across every batch ever executed."""
        return self._lifetime_energy_nj
