"""Server-side admission control: shed work that cannot finish in time.

An overloaded server that keeps accepting work converts *every* request
into a timeout; one that sheds early keeps its goodput.  The
:class:`AdmissionController` sits in :class:`~repro.api.server.NormServer`'s
reader thread, *before* any tensor decode: it sees only the raw envelope
dict (cheap JSON already parsed by the frame decoder) and decides in
O(1) whether the request can plausibly meet its deadline.

Two signals gate admission:

* **Queue depth** -- a hard bound on envelopes admitted but not yet
  completed across all connections.  Past it, everything sheds.
* **Deadline feasibility** -- an exponential moving average of observed
  per-request service time, multiplied by the number of requests already
  waiting, estimates this request's expected completion time.  A request
  whose ``deadline_ms`` is below that estimate is shed immediately --
  failing in microseconds instead of failing slowly at its deadline.

Shed requests get a typed :class:`~repro.api.envelopes.OverloadedError`
carrying ``retry_after_ms`` (the controller's estimate of when the queue
drains below the bound), which the client-side
:class:`~repro.api.retry.RetryPolicy` honors as its backoff floor.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.api.envelopes import OverloadedError, validate_deadline_ms

__all__ = ["WORK_OPS", "AdmissionController", "PreDecodeGate"]

#: Ops that represent real work and are subject to shedding.  Control ops
#: (ping, hello, telemetry, spec) stay admissible even under overload --
#: they are how operators observe an overloaded server.
WORK_OPS = frozenset(
    {"normalize", "normalize_bulk", "stream", "execute", "execute_bulk"}
)


class AdmissionController:
    """Pre-decode load shedding for :class:`~repro.api.server.NormServer`.

    Thread-safe; one instance is shared by every connection's reader
    thread.  The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        max_queue_depth: int = 256,
        ema_alpha: float = 0.2,
        initial_service_time: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha!r}")
        if initial_service_time <= 0:
            raise ValueError(
                f"initial_service_time must be > 0, got {initial_service_time!r}"
            )
        self.max_queue_depth = max_queue_depth
        self._alpha = ema_alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._service_time = float(initial_service_time)
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_deadline = 0

    # -- the gate ------------------------------------------------------

    def check(self, payload: Dict[str, Any]) -> None:
        """Admit or shed one raw envelope; raises ``OverloadedError`` to shed.

        Called from the reader thread before any decode beyond the JSON
        parse the framing layer already did.  On success the request is
        counted in-flight; the server must pair every successful
        ``check`` with exactly one :meth:`complete`.
        """
        op = payload.get("op")
        if op not in WORK_OPS:
            return
        # deadline_ms is validated here even when the queue is empty so a
        # zero/negative deadline is rejected before it enters the batcher
        # and "times out" deep in a worker (satellite fix; the envelope
        # decoder repeats this check for the in-process path).
        deadline_ms = validate_deadline_ms(payload.get("deadline_ms"))
        with self._lock:
            if self._inflight >= self.max_queue_depth:
                self._shed_queue_full += 1
                raise OverloadedError(
                    f"queue depth {self._inflight} at bound "
                    f"{self.max_queue_depth}; request shed before decode",
                    retry_after_ms=self._retry_after_locked(),
                )
            if deadline_ms is not None:
                expected = (self._inflight + 1) * self._service_time * 1000.0
                if deadline_ms < expected:
                    self._shed_deadline += 1
                    raise OverloadedError(
                        f"deadline {deadline_ms:.1f} ms cannot be met: "
                        f"expected completion in ~{expected:.1f} ms at "
                        f"queue depth {self._inflight}",
                        retry_after_ms=self._retry_after_locked(),
                    )
            self._inflight += 1
            self._admitted += 1
            if self._inflight > self._peak_inflight:
                self._peak_inflight = self._inflight

    def complete(self, service_time: Optional[float] = None) -> None:
        """Mark one admitted request finished; feeds the service-time EMA."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
            if service_time is not None and service_time >= 0:
                self._service_time += self._alpha * (service_time - self._service_time)

    def _retry_after_locked(self) -> float:
        """Estimated ms until the queue drains to half the bound."""
        backlog = max(self._inflight - self.max_queue_depth // 2, 1)
        return max(1.0, backlog * self._service_time * 1000.0)

    # -- pressure signal for the degradation ladder --------------------

    def pressure(self) -> float:
        """Queue occupancy in [0, 1+]; the degradation ladder's input."""
        with self._lock:
            return self._inflight / self.max_queue_depth

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- introspection -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Counters for the ``admission`` telemetry section."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "max_queue_depth": self.max_queue_depth,
                "admitted": self._admitted,
                "shed_queue_full": self._shed_queue_full,
                "shed_deadline": self._shed_deadline,
                "service_time_ema_ms": round(self._service_time * 1000.0, 3),
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(max_queue_depth={self.max_queue_depth}, "
            f"inflight={self.inflight})"
        )


class PreDecodeGate:
    """The server's single pre-decode shedding gate: quota, then overload.

    Composes per-tenant quota shedding (:mod:`repro.tenancy`) with the
    overload :class:`AdmissionController` behind one ``check`` call in the
    reader thread, so both policies see the same peeked envelope (binary
    frames: JSON preamble only) and both reject before any tensor buffer
    is materialized.

    Order matters: the quota check runs first so a flooding tenant is
    charged against *its own* bucket and never consumes an admission slot
    or skews the service-time EMA; only quota-admitted work reaches the
    overload controller (whose successful ``check`` must still be paired
    with ``complete``).  ``quota`` is a callable
    ``(tenant, payload, nbytes) -> None`` raising
    :class:`~repro.api.envelopes.QuotaExceededError` to shed; ``None``
    disables tenancy (the gate degrades to plain admission control).
    """

    def __init__(
        self,
        admission: AdmissionController,
        quota: Optional[Callable[[Any, Dict[str, Any], int], None]] = None,
    ):
        self.admission = admission
        self.quota = quota

    def check(self, payload: Dict[str, Any], tenant: Any = None, nbytes: int = 0) -> None:
        """Admit or shed one peeked envelope (raises a typed ApiError to shed)."""
        if self.quota is not None and payload.get("op") in WORK_OPS:
            self.quota(tenant, payload, nbytes)
        self.admission.check(payload)
