"""`NormClient`: the one public entry point for normalization calls.

The client encodes ndarray payloads into versioned envelopes, sends them
through a pluggable :class:`~repro.api.transport.Transport`, and decodes
the responses back into arrays -- so the exact same calling code runs
against an in-process :class:`NormalizationService` or a remote
:class:`~repro.api.server.NormServer`::

    with NormClient.in_process() as client:          # local
        result = client.normalize(rows, "tiny")

    with NormClient.connect("10.0.0.5", 8471) as client:   # remote
        result = client.normalize(rows, "tiny")

Both transports produce bit-identical outputs to calling the service
directly (``tests/test_api.py`` enforces it), because encoding is exact for
float64 and the handler path is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.envelopes import (
    ExecuteSpecRequest,
    NormalizeRequest,
    PingRequest,
    SpecRequest,
    TelemetryRequest,
    TensorPayload,
    parse_response,
)
from repro.api.transport import InProcessTransport, SocketTransport, Transport


@dataclass(frozen=True)
class ClientNormResult:
    """Decoded result of one normalize call."""

    request_id: int
    output: np.ndarray
    mean: np.ndarray
    isd: np.ndarray
    was_predicted: bool
    was_subsampled: bool
    batch_size: int
    queue_wait: float
    batch_latency: float
    backend: str
    accelerator: Optional[str] = None


@dataclass(frozen=True)
class ServedSpec:
    """A layer's engine spec plus affine parameters, as served."""

    spec: "Any"  # repro.engine.spec.EngineSpec (annotated loosely: leaf import below)
    gamma: np.ndarray
    beta: np.ndarray
    model: str
    layer_index: int
    num_layers: int

    @property
    def hidden_size(self) -> int:
        """Vector width of the served layer."""
        return self.spec.hidden_size


class NormClient:
    """Typed facade over the versioned client/server normalization API."""

    def __init__(self, transport: Transport):
        self.transport = transport

    # -- constructors -------------------------------------------------------

    @classmethod
    def in_process(cls, service=None, registry=None, loader=None, **kwargs) -> "NormClient":
        """Client over a service in this process (created inline if absent)."""
        return cls(
            InProcessTransport(service=service, registry=registry, loader=loader, **kwargs)
        )

    @classmethod
    def connect(cls, host: str, port: int, **kwargs) -> "NormClient":
        """Client over TCP against a running :class:`NormServer`."""
        return cls(SocketTransport(host, port, **kwargs))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying transport."""
        self.transport.close()

    def __enter__(self) -> "NormClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- API calls ----------------------------------------------------------

    def normalize(
        self,
        payload: np.ndarray,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        encoding: str = "base64",
    ) -> ClientNormResult:
        """Normalize one ``(hidden,)`` or ``(rows, hidden)`` tensor."""
        request = NormalizeRequest(
            model=model,
            tensor=TensorPayload.from_array(np.asarray(payload, dtype=np.float64), encoding),
            layer_index=layer_index,
            dataset=dataset,
            reference=reference,
            backend=backend,
            accelerator=accelerator,
        )
        response = parse_response(self.transport.request(request.to_wire()), "normalize")
        return ClientNormResult(
            request_id=response.request_id,
            output=response.tensor.to_array(),
            mean=response.mean.to_array(),
            isd=response.isd.to_array(),
            was_predicted=response.was_predicted,
            was_subsampled=response.was_subsampled,
            batch_size=response.batch_size,
            queue_wait=response.queue_wait,
            batch_latency=response.batch_latency,
            backend=response.backend,
            accelerator=response.accelerator,
        )

    def normalize_many(
        self, payloads: Sequence[np.ndarray], model: str, **kwargs
    ) -> List[ClientNormResult]:
        """Normalize a sequence of independent tensors (one request each)."""
        return [self.normalize(payload, model, **kwargs) for payload in payloads]

    def fetch_spec(
        self,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
    ) -> ServedSpec:
        """Fetch a layer's serialized engine spec and affine parameters."""
        from repro.engine.spec import EngineSpec

        request = SpecRequest(
            model=model, layer_index=layer_index, dataset=dataset, reference=reference
        )
        response = parse_response(self.transport.request(request.to_wire()), "spec")
        return ServedSpec(
            spec=EngineSpec.from_dict(response.spec),
            gamma=response.gamma.to_array(),
            beta=response.beta.to_array(),
            model=response.model,
            layer_index=response.layer_index,
            num_layers=response.num_layers,
        )

    def execute_spec(
        self,
        spec,
        rows: np.ndarray,
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        backend: str = "vectorized",
        encoding: str = "base64",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Execute a shipped :class:`EngineSpec` server-side over stacked rows.

        The transport-level counterpart of ``engine.run``: returns
        ``(output, mean, isd)``.  Used by the engine's ``remote`` backend.
        """
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)

        def _tensor(arr) -> Optional[TensorPayload]:
            return None if arr is None else TensorPayload.from_array(np.asarray(arr), encoding)

        request = ExecuteSpecRequest(
            spec=spec_dict,
            rows=TensorPayload.from_array(np.asarray(rows, dtype=np.float64), encoding),
            gamma=_tensor(gamma),
            beta=_tensor(beta),
            segment_starts=(
                None
                if segment_starts is None
                else TensorPayload.from_array(
                    np.asarray(segment_starts, dtype=np.int64), encoding
                )
            ),
            anchor_isd=_tensor(anchor_isd),
            backend=backend,
        )
        response = parse_response(self.transport.request(request.to_wire()), "execute")
        return (
            response.output.to_array(),
            response.mean.to_array(),
            response.isd.to_array(),
        )

    def ping(self) -> Dict[str, Any]:
        """Probe the peer; returns its registered backends (and model names)."""
        response = parse_response(self.transport.request(PingRequest().to_wire()), "ping")
        return {"backends": response.backends, "models": response.models}

    def telemetry(self) -> Dict[str, Any]:
        """Fetch the peer's serving telemetry and registry snapshots."""
        response = parse_response(
            self.transport.request(TelemetryRequest().to_wire()), "telemetry"
        )
        return {"telemetry": response.telemetry, "registry": response.registry}

    def wait_until_ready(self, timeout: float = 10.0) -> None:
        """Block until the peer accepts connections (no-op for in-process)."""
        waiter = getattr(self.transport, "wait_until_ready", None)
        if waiter is not None:
            waiter(timeout)
