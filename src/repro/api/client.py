"""`NormClient`: the one public entry point for normalization calls.

The client encodes ndarray payloads into versioned envelopes, sends them
through a pluggable :class:`~repro.api.transport.Transport`, and decodes
the responses back into arrays -- so the exact same calling code runs
against an in-process :class:`NormalizationService` or a remote
:class:`~repro.api.server.NormServer`::

    with NormClient.in_process() as client:          # local
        result = client.normalize(rows, "tiny")

    with NormClient.connect("10.0.0.5", 8471) as client:   # remote
        result = client.normalize(rows, "tiny")

Both transports produce bit-identical outputs to calling the service
directly (``tests/test_api.py`` enforces it), because encoding is exact for
float64 and the handler path is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.envelopes import (
    ExecuteBulkRequest,
    ExecuteGroup,
    ExecuteSpecRequest,
    NormalizeBulkRequest,
    NormalizeRequest,
    PingRequest,
    SpecRequest,
    StreamChunkRequest,
    TelemetryRequest,
    TensorPayload,
    next_stream_id,
    parse_response,
    validate_deadline_ms,
)
from repro.api.transport import InProcessTransport, PendingReply, SocketTransport, Transport


def _resolve_encoding(encoding: Optional[str]) -> str:
    """Default tensor encoding: zero-copy ``binary`` unless the caller pins one.

    ``None`` (the default everywhere) means "the fastest exact encoding":
    v3 binary frames.  Transports negotiate this down automatically -- a
    v2-only peer receives base64 via the copy-on-write downgrade in
    :meth:`SocketTransport._stamp_version` -- so callers never need to
    know the peer's version to pick an encoding.
    """
    return "binary" if encoding is None else encoding


@dataclass(frozen=True)
class ClientNormResult:
    """Decoded result of one normalize call."""

    request_id: int
    output: np.ndarray
    mean: np.ndarray
    isd: np.ndarray
    was_predicted: bool
    was_subsampled: bool
    batch_size: int
    queue_wait: float
    batch_latency: float
    backend: str
    accelerator: Optional[str] = None
    #: Degradation-ladder level the server applied (0 = full fidelity).
    #: A degraded result always advertises itself here -- it is never
    #: silently substituted for a full-fidelity one.
    degradation: int = 0


class PendingNormResult:
    """Handle of one pipelined normalize (or stream) request.

    ``result`` blocks until the response frame arrives, decodes it, and
    raises the matching :class:`ApiError` member on a wire error.
    """

    __slots__ = ("_client", "_reply", "_op")

    def __init__(self, client: "NormClient", reply: PendingReply, op: str = "normalize"):
        self._client = client
        self._reply = reply
        self._op = op

    def done(self) -> bool:
        """Whether the response (or a transport failure) has arrived."""
        return self._reply.done()

    def result(self, timeout: Optional[float] = None) -> "ClientNormResult":
        """The decoded result (blocking until the response frame lands).

        ``timeout=None`` falls back to the transport's per-request deadline
        so the pipelined path fails like the blocking path does, instead of
        waiting forever on a wedged-but-connected server.
        """
        if timeout is None:
            timeout = getattr(self._client.transport, "timeout", None)
        response = parse_response(self._reply.result(timeout), self._op)
        if self._op == "stream":
            return self._client._decode_item(
                response.request_id,
                response.result,
                response.backend,
                response.accelerator,
            )
        return self._client._decode_normalize(response)


@dataclass(frozen=True)
class ServedSpec:
    """A layer's engine spec plus affine parameters, as served."""

    spec: "Any"  # repro.engine.spec.EngineSpec (annotated loosely: leaf import below)
    gamma: np.ndarray
    beta: np.ndarray
    model: str
    layer_index: int
    num_layers: int

    @property
    def hidden_size(self) -> int:
        """Vector width of the served layer."""
        return self.spec.hidden_size


class NormClient:
    """Typed facade over the versioned client/server normalization API."""

    def __init__(self, transport: Transport):
        self.transport = transport

    # -- constructors -------------------------------------------------------

    @classmethod
    def in_process(cls, service=None, registry=None, loader=None, **kwargs) -> "NormClient":
        """Client over a service in this process (created inline if absent)."""
        return cls(
            InProcessTransport(service=service, registry=registry, loader=loader, **kwargs)
        )

    @classmethod
    def connect(
        cls, host: str, port: int, pool_size: int = 1, transport: str = "socket", **kwargs
    ) -> "NormClient":
        """Client over TCP against a running :class:`NormServer`.

        The transport is pooled and thread-safe: concurrent callers may
        share one client, and ``pool_size`` connections carry their
        pipelined requests (demultiplexed by ``request_id``).

        ``transport="shm"`` selects the same-host shared-memory transport
        (:class:`~repro.api.shm.SharedMemoryTransport`): tensor buffers
        travel through shared-memory slabs while control frames keep the
        socket.  It degrades to plain TCP automatically when the server
        refuses the attach (flag off, cross-host peer).

        ``token="..."`` presents a tenant bearer token in every
        connection's hello handshake (servers running ``--require-auth``
        reject tokenless work with a typed ``unauthenticated`` error).
        """
        if transport == "shm":
            from repro.api.shm import SharedMemoryTransport

            return cls(SharedMemoryTransport(host, port, pool_size=pool_size, **kwargs))
        if transport != "socket":
            raise ValueError(f"unknown connect transport {transport!r} (socket or shm)")
        return cls(SocketTransport(host, port, pool_size=pool_size, **kwargs))

    @classmethod
    def connect_fleet(cls, addresses, **kwargs) -> "NormClient":
        """Client over a **fleet** of :class:`NormServer` replicas.

        ``addresses`` is a sequence of ``host:port`` strings; requests
        route by consistent hash with health-gated failover, hedged
        retries and scatter-gather bulk dispatch
        (:class:`~repro.fleet.transport.FleetTransport`), bit-identically
        to a single server.  All keyword arguments forward to the fleet
        transport.
        """
        from repro.fleet.transport import FleetTransport

        return cls(FleetTransport(addresses, **kwargs))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying transport."""
        self.transport.close()

    def __enter__(self) -> "NormClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- API calls ----------------------------------------------------------

    def normalize(
        self,
        payload: np.ndarray,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        encoding: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> ClientNormResult:
        """Normalize one ``(hidden,)`` or ``(rows, hidden)`` tensor.

        ``deadline_ms`` rides the envelope to the server's admission
        controller: a request that cannot plausibly complete in time is
        shed *before* decode with a typed ``OverloadedError``.  Zero or
        negative deadlines are rejected here, synchronously.
        """
        request = self._normalize_request(
            payload, model, layer_index, dataset, reference, backend, accelerator,
            encoding, deadline_ms,
        )
        response = parse_response(self.transport.request(request.to_wire()), "normalize")
        return self._decode_normalize(response)

    @staticmethod
    def _normalize_request(
        payload, model, layer_index, dataset, reference, backend, accelerator,
        encoding, deadline_ms=None,
    ) -> NormalizeRequest:
        encoding = _resolve_encoding(encoding)
        return NormalizeRequest(
            model=model,
            tensor=TensorPayload.from_array(np.asarray(payload, dtype=np.float64), encoding),
            layer_index=layer_index,
            dataset=dataset,
            reference=reference,
            backend=backend,
            accelerator=accelerator,
            deadline_ms=validate_deadline_ms(deadline_ms, "submit"),
        )

    @staticmethod
    def _decode_normalize(response) -> ClientNormResult:
        return ClientNormResult(
            request_id=response.request_id,
            output=response.tensor.to_array(),
            mean=response.mean.to_array(),
            isd=response.isd.to_array(),
            was_predicted=response.was_predicted,
            was_subsampled=response.was_subsampled,
            batch_size=response.batch_size,
            queue_wait=response.queue_wait,
            batch_latency=response.batch_latency,
            backend=response.backend,
            accelerator=response.accelerator,
            degradation=response.degradation,
        )

    @staticmethod
    def _decode_item(request_id: int, item, backend: str, accelerator) -> ClientNormResult:
        """Decode one :class:`NormalizeResult` (bulk / stream item)."""
        return ClientNormResult(
            request_id=request_id,
            output=item.tensor.to_array(),
            mean=item.mean.to_array(),
            isd=item.isd.to_array(),
            was_predicted=item.was_predicted,
            was_subsampled=item.was_subsampled,
            batch_size=item.batch_size,
            queue_wait=item.queue_wait,
            batch_latency=item.batch_latency,
            backend=backend,
            accelerator=accelerator,
            degradation=item.degradation,
        )

    def submit_normalize(
        self,
        payload: np.ndarray,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        encoding: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> "PendingNormResult":
        """Pipeline one normalize request without blocking on its response.

        Over a :class:`SocketTransport` the request goes on the wire
        immediately and many may be in flight per connection; call
        :meth:`PendingNormResult.result` to collect.  Over an in-process
        transport the call completes synchronously.
        """
        request = self._normalize_request(
            payload, model, layer_index, dataset, reference, backend, accelerator,
            encoding, deadline_ms,
        )
        return PendingNormResult(self, self.transport.submit(request.to_wire()))

    def normalize_many(
        self,
        payloads: Sequence[np.ndarray],
        model: str,
        depth: int = 1,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> List[ClientNormResult]:
        """Normalize a sequence of independent tensors (one request each).

        ``depth`` is the pipelining window: up to that many requests stay
        in flight at once (1 reproduces the v1 lock-step behavior).  The
        result order always matches the payload order regardless of the
        order the server answered in.
        """
        if depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        if depth == 1 and timeout is None:
            # Lock-step through the blocking path, which keeps the
            # transport's reconnect-and-resend-once semantics per request.
            # An explicit timeout routes through the windowed path below so
            # it is honored at every depth.
            return [self.normalize(payload, model, **kwargs) for payload in payloads]
        results: List[Optional[ClientNormResult]] = [None] * len(payloads)
        window: List[Tuple[int, PendingNormResult]] = []
        for index, payload in enumerate(payloads):
            window.append((index, self.submit_normalize(payload, model, **kwargs)))
            if len(window) >= depth:
                slot, pending = window.pop(0)
                results[slot] = pending.result(timeout)
        for slot, pending in window:
            results[slot] = pending.result(timeout)
        return results

    def normalize_bulk(
        self,
        payloads: Sequence[np.ndarray],
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        encoding: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[ClientNormResult]:
        """Normalize many tensors with **one** frame (the v2 bulk op).

        The whole list lands in the server's micro-batcher at once, so a
        single client fills batches by itself instead of relying on
        cross-client coalescing.  Results come back in payload order.
        """
        encoding = _resolve_encoding(encoding)
        request = NormalizeBulkRequest(
            model=model,
            tensors=tuple(
                TensorPayload.from_array(np.asarray(p, dtype=np.float64), encoding)
                for p in payloads
            ),
            layer_index=layer_index,
            dataset=dataset,
            reference=reference,
            backend=backend,
            accelerator=accelerator,
            deadline_ms=validate_deadline_ms(deadline_ms, "submit"),
        )
        response = parse_response(self.transport.request(request.to_wire()), "normalize_bulk")
        return [
            self._decode_item(
                response.request_id, item, response.backend, response.accelerator
            )
            for item in response.results
        ]

    def stream(
        self,
        chunks: Iterable[np.ndarray],
        model: str,
        depth: int = 8,
        timeout: Optional[float] = None,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
        backend: str = "vectorized",
        accelerator: Optional[str] = None,
        encoding: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Iterator[ClientNormResult]:
        """Normalize a stream of activation chunks, yielding in chunk order.

        Up to ``depth`` chunks ride the wire concurrently as ``stream``
        envelopes (one ``stream_id``, consecutive ``seq``); the server may
        answer out of order and this generator reassembles by sequence
        number.
        """
        if depth < 1:
            raise ValueError("stream depth must be at least 1")
        encoding = _resolve_encoding(encoding)
        deadline_ms = validate_deadline_ms(deadline_ms, "submit")
        stream_id = next_stream_id()

        def _submit(seq: int, chunk: np.ndarray, final: bool) -> PendingNormResult:
            request = StreamChunkRequest(
                model=model,
                tensor=TensorPayload.from_array(
                    np.asarray(chunk, dtype=np.float64), encoding
                ),
                stream_id=stream_id,
                seq=seq,
                final=final,
                layer_index=layer_index,
                dataset=dataset,
                reference=reference,
                backend=backend,
                accelerator=accelerator,
                deadline_ms=deadline_ms,
            )
            return PendingNormResult(self, self.transport.submit(request.to_wire()), "stream")

        # One-chunk lookahead so the last chunk carries final=True even
        # over generators whose length is unknown upfront.
        iterator = iter(chunks)
        try:
            held = next(iterator)
        except StopIteration:
            return
        window: List[PendingNormResult] = []
        seq = 0
        for upcoming in iterator:
            window.append(_submit(seq, held, final=False))
            held = upcoming
            seq += 1
            if len(window) >= depth:
                yield window.pop(0).result(timeout)
        window.append(_submit(seq, held, final=True))
        for pending in window:
            yield pending.result(timeout)

    def fetch_spec(
        self,
        model: str,
        layer_index: int = 0,
        dataset: str = "default",
        reference: bool = False,
    ) -> ServedSpec:
        """Fetch a layer's serialized engine spec and affine parameters."""
        from repro.engine.spec import EngineSpec

        request = SpecRequest(
            model=model, layer_index=layer_index, dataset=dataset, reference=reference
        )
        response = parse_response(self.transport.request(request.to_wire()), "spec")
        return ServedSpec(
            spec=EngineSpec.from_dict(response.spec),
            gamma=response.gamma.to_array(),
            beta=response.beta.to_array(),
            model=response.model,
            layer_index=response.layer_index,
            num_layers=response.num_layers,
        )

    def execute_spec(
        self,
        spec,
        rows: np.ndarray,
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        backend: str = "vectorized",
        encoding: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Execute a shipped :class:`EngineSpec` server-side over stacked rows.

        The transport-level counterpart of ``engine.run``: returns
        ``(output, mean, isd)``.  Used by the engine's ``remote`` backend.
        """
        encoding = _resolve_encoding(encoding)
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)

        def _tensor(arr) -> Optional[TensorPayload]:
            return None if arr is None else TensorPayload.from_array(np.asarray(arr), encoding)

        request = ExecuteSpecRequest(
            spec=spec_dict,
            rows=TensorPayload.from_array(np.asarray(rows, dtype=np.float64), encoding),
            gamma=_tensor(gamma),
            beta=_tensor(beta),
            segment_starts=(
                None
                if segment_starts is None
                else TensorPayload.from_array(
                    np.asarray(segment_starts, dtype=np.int64), encoding
                )
            ),
            anchor_isd=_tensor(anchor_isd),
            backend=backend,
        )
        response = parse_response(self.transport.request(request.to_wire()), "execute")
        return (
            response.output.to_array(),
            response.mean.to_array(),
            response.isd.to_array(),
        )

    def execute_spec_bulk(
        self,
        spec,
        groups: Sequence[Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]],
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        backend: str = "vectorized",
        encoding: Optional[str] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Execute one shipped spec over many row-groups with one frame.

        ``groups`` is a sequence of ``(rows, segment_starts, anchor_isd)``
        triples (the optional parts may be None).  The spec and affine
        parameters travel once; the server compiles once and runs every
        group under a single engine-lock acquisition.  Returns one
        ``(output, mean, isd)`` per group, in order.
        """
        encoding = _resolve_encoding(encoding)
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        wire_groups = []
        for rows, segment_starts, anchor_isd in groups:
            wire_groups.append(
                ExecuteGroup(
                    rows=TensorPayload.from_array(
                        np.asarray(rows, dtype=np.float64), encoding
                    ),
                    segment_starts=(
                        None
                        if segment_starts is None
                        else TensorPayload.from_array(
                            np.asarray(segment_starts, dtype=np.int64), encoding
                        )
                    ),
                    anchor_isd=(
                        None
                        if anchor_isd is None
                        else TensorPayload.from_array(
                            np.asarray(anchor_isd, dtype=np.float64), encoding
                        )
                    ),
                )
            )
        request = ExecuteBulkRequest(
            spec=spec_dict,
            groups=tuple(wire_groups),
            gamma=None if gamma is None else TensorPayload.from_array(np.asarray(gamma), encoding),
            beta=None if beta is None else TensorPayload.from_array(np.asarray(beta), encoding),
            backend=backend,
        )
        response = parse_response(self.transport.request(request.to_wire()), "execute_bulk")
        return [
            (item.output.to_array(), item.mean.to_array(), item.isd.to_array())
            for item in response.results
        ]

    def ping(self) -> Dict[str, Any]:
        """Probe the peer; returns its registered backends (and model names)."""
        response = parse_response(self.transport.request(PingRequest().to_wire()), "ping")
        return {
            "backends": response.backends,
            "models": response.models,
            "min_schema_version": response.min_schema_version,
            "max_schema_version": response.max_schema_version,
        }

    def negotiated_version(self) -> Optional[int]:
        """Schema version agreed in the transport's hello handshake.

        ``None`` over transports that do not negotiate (in-process) or
        before the first connection is established.
        """
        return getattr(self.transport, "negotiated_version", None)

    def telemetry(self) -> Dict[str, Any]:
        """Fetch the peer's serving telemetry and registry snapshots."""
        response = parse_response(
            self.transport.request(TelemetryRequest().to_wire()), "telemetry"
        )
        return {"telemetry": response.telemetry, "registry": response.registry}

    def wait_until_ready(self, timeout: float = 10.0) -> None:
        """Block until the peer accepts connections (no-op for in-process)."""
        waiter = getattr(self.transport, "wait_until_ready", None)
        if waiter is not None:
            waiter(timeout)
