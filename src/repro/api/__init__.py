"""Versioned public client/server API of the normalization runtime.

One facade, two transports, one pipelined wire protocol:

* :mod:`repro.api.envelopes` -- versioned JSON envelopes
  (``NormalizeRequest`` / ``NormalizeBulkRequest`` / ``StreamChunkRequest``
  / ``HelloRequest`` and friends), tensor payload encoding, schema-version
  negotiation and the :class:`ApiError` taxonomy.
* :mod:`repro.api.client` -- :class:`NormClient`, the typed facade every
  consumer (CLIs, eval experiments, examples, the engine's ``remote``
  backend) goes through; single, pipelined, bulk and streaming calls.
* :mod:`repro.api.transport` -- :class:`InProcessTransport` (wraps a
  :class:`NormalizationService` directly) and :class:`SocketTransport`
  (pooled + thread-safe: length-prefixed JSON frames over N TCP
  connections, many requests in flight demultiplexed by ``request_id``,
  transparent reconnect).
* :mod:`repro.api.server` -- :class:`NormServer`, the TCP front of a
  service (``haan-serve --listen``): a worker pool handles pipelined
  frames concurrently (responses in completion order), and the shared
  :class:`~repro.api.handler.ApiHandler` both transports dispatch through.

Exports resolve lazily (PEP 562), mirroring :mod:`repro.engine`: the
envelope layer is a leaf, but the client/server layers reach into
:mod:`repro.serving`, and the engine's ``remote`` backend reaches back into
this package -- lazy resolution keeps that triangle import-cycle-free.
"""

from __future__ import annotations

from typing import List

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "SCHEMA_VERSION": "envelopes",
    "MIN_SCHEMA_VERSION": "envelopes",
    "TensorPayload": "envelopes",
    "NormalizeRequest": "envelopes",
    "NormalizeResponse": "envelopes",
    "NormalizeBulkRequest": "envelopes",
    "NormalizeBulkResponse": "envelopes",
    "NormalizeResult": "envelopes",
    "StreamChunkRequest": "envelopes",
    "StreamChunkResponse": "envelopes",
    "SpecRequest": "envelopes",
    "SpecResponse": "envelopes",
    "ExecuteSpecRequest": "envelopes",
    "ExecuteSpecResponse": "envelopes",
    "ExecuteBulkRequest": "envelopes",
    "ExecuteBulkResponse": "envelopes",
    "ExecuteGroup": "envelopes",
    "ExecuteResult": "envelopes",
    "HelloRequest": "envelopes",
    "HelloResponse": "envelopes",
    "PingRequest": "envelopes",
    "PingResponse": "envelopes",
    "TelemetryRequest": "envelopes",
    "TelemetryResponse": "envelopes",
    "ErrorResponse": "envelopes",
    "ApiError": "envelopes",
    "BadSchemaError": "envelopes",
    "SchemaVersionError": "envelopes",
    "UnknownBackendError": "envelopes",
    "UnknownModelError": "envelopes",
    "PayloadTooLargeError": "envelopes",
    "OverloadedError": "envelopes",
    "QuotaExceededError": "envelopes",
    "DeadlineExceededError": "envelopes",
    "AuthenticationError": "envelopes",
    "TransportError": "envelopes",
    "NoHealthyReplicaError": "envelopes",
    "ERROR_CLASSES": "envelopes",
    "error_for_code": "envelopes",
    "negotiate_version": "envelopes",
    "parse_request": "envelopes",
    "parse_response": "envelopes",
    "parse_hello_response": "envelopes",
    "FrameDecoder": "framing",
    "ApiHandler": "handler",
    "Transport": "transport",
    "InProcessTransport": "transport",
    "SocketTransport": "transport",
    "PendingReply": "transport",
    "register_transport": "transport",
    "available_transports": "transport",
    "create_transport": "transport",
    "NormClient": "client",
    "ClientNormResult": "client",
    "PendingNormResult": "client",
    "ServedSpec": "client",
    "NormServer": "server",
    "AsyncNormServer": "aserver",
    "parse_address": "server",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
