"""Versioned public client/server API of the normalization runtime.

One facade, two transports, one wire protocol:

* :mod:`repro.api.envelopes` -- versioned JSON envelopes
  (``NormalizeRequest`` / ``NormalizeResponse`` / ``ErrorResponse`` and
  friends), tensor payload encoding and the :class:`ApiError` taxonomy.
* :mod:`repro.api.client` -- :class:`NormClient`, the typed facade every
  consumer (CLIs, eval experiments, examples, the engine's ``remote``
  backend) goes through.
* :mod:`repro.api.transport` -- :class:`InProcessTransport` (wraps a
  :class:`NormalizationService` directly) and :class:`SocketTransport`
  (length-prefixed JSON frames over TCP, transparent reconnect).
* :mod:`repro.api.server` -- :class:`NormServer`, the TCP front of a
  service (``haan-serve --listen``), and the shared
  :class:`~repro.api.handler.ApiHandler` both transports dispatch through.

Exports resolve lazily (PEP 562), mirroring :mod:`repro.engine`: the
envelope layer is a leaf, but the client/server layers reach into
:mod:`repro.serving`, and the engine's ``remote`` backend reaches back into
this package -- lazy resolution keeps that triangle import-cycle-free.
"""

from __future__ import annotations

from typing import List

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "SCHEMA_VERSION": "envelopes",
    "TensorPayload": "envelopes",
    "NormalizeRequest": "envelopes",
    "NormalizeResponse": "envelopes",
    "SpecRequest": "envelopes",
    "SpecResponse": "envelopes",
    "ExecuteSpecRequest": "envelopes",
    "ExecuteSpecResponse": "envelopes",
    "PingRequest": "envelopes",
    "PingResponse": "envelopes",
    "TelemetryRequest": "envelopes",
    "TelemetryResponse": "envelopes",
    "ErrorResponse": "envelopes",
    "ApiError": "envelopes",
    "BadSchemaError": "envelopes",
    "SchemaVersionError": "envelopes",
    "UnknownBackendError": "envelopes",
    "UnknownModelError": "envelopes",
    "PayloadTooLargeError": "envelopes",
    "TransportError": "envelopes",
    "parse_request": "envelopes",
    "parse_response": "envelopes",
    "ApiHandler": "handler",
    "Transport": "transport",
    "InProcessTransport": "transport",
    "SocketTransport": "transport",
    "NormClient": "client",
    "ClientNormResult": "client",
    "ServedSpec": "client",
    "NormServer": "server",
    "parse_address": "server",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
