"""Length-prefixed JSON framing of the normalization wire protocol.

One frame = a 4-byte big-endian unsigned payload length followed by that
many bytes of UTF-8 JSON (one envelope dictionary).  The prefix makes the
protocol self-delimiting over a TCP stream, and the frame-size limit bounds
what a peer can make the other side buffer before any schema validation
runs.

Two read paths share the decode rules:

* :func:`recv_frame` -- blocking, one frame per call (simple clients);
* :class:`FrameDecoder` -- incremental, bytes in / envelopes out, so a
  pipelined peer that received several frames in one ``recv`` pays one
  syscall for all of them.  It is also the deterministic harness for the
  truncation/corruption property tests: malformed input raises an
  :class:`ApiError` member, never hangs, never escapes as a raw exception.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List

from repro.api.envelopes import PayloadTooLargeError, TransportError

#: 4-byte big-endian unsigned frame-length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Default bound on one frame's JSON payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one envelope into a length-prefixed frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise PayloadTooLargeError(
            f"frame of {len(data)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return FRAME_HEADER.pack(len(data)) + data


def send_frame(
    sock: socket.socket, payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Encode and write one frame to a connected socket."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; EOF raises ``ConnectionError``."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Decode one frame's payload bytes into an envelope dictionary."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise TransportError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FrameDecoder:
    """Incremental frame decoder over an unbounded byte stream.

    Feed raw received bytes in any chunking; complete envelopes come out in
    order.  The buffered tail is bounded by ``max_frame_bytes`` + header: an
    announced length beyond the limit fails *before* the body is buffered,
    so a hostile peer cannot make this side hold unbounded memory.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb received bytes; returns every envelope completed by them.

        Raises :class:`PayloadTooLargeError` on an oversized length prefix
        and :class:`TransportError` on a payload that is not a JSON object;
        both poison the stream (framing cannot be resynchronized), so the
        caller must drop the connection.
        """
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                return frames
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise PayloadTooLargeError(
                    f"incoming frame announces {length} bytes; limit is "
                    f"{self.max_frame_bytes}"
                )
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[FRAME_HEADER.size : end])
            del self._buffer[:end]
            frames.append(decode_payload(body))

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        A peer that closed mid-frame left ``pending_bytes`` behind; that is
        a truncated stream, reported as :class:`TransportError`.
        """
        if self._buffer:
            raise TransportError(
                f"stream ended mid-frame with {len(self._buffer)} buffered byte(s)"
            )


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame and decode its JSON payload.

    Raises ``ConnectionError`` on a clean or mid-frame close (the caller
    decides whether that means "peer finished" or "reconnect and retry"),
    :class:`PayloadTooLargeError` on an oversized length prefix, and
    :class:`TransportError` on bytes that are not a JSON object.
    """
    (length,) = FRAME_HEADER.unpack(_recv_exact(sock, FRAME_HEADER.size))
    if length > max_frame_bytes:
        raise PayloadTooLargeError(
            f"incoming frame announces {length} bytes; limit is {max_frame_bytes}"
        )
    return decode_payload(_recv_exact(sock, length))
