"""Length-prefixed JSON framing of the normalization wire protocol.

One frame = a 4-byte big-endian unsigned payload length followed by that
many bytes of UTF-8 JSON (one envelope dictionary).  The prefix makes the
protocol self-delimiting over a TCP stream, and the frame-size limit bounds
what a peer can make the other side buffer before any schema validation
runs.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict

from repro.api.envelopes import PayloadTooLargeError, TransportError

#: 4-byte big-endian unsigned frame-length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Default bound on one frame's JSON payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one envelope into a length-prefixed frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise PayloadTooLargeError(
            f"frame of {len(data)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return FRAME_HEADER.pack(len(data)) + data


def send_frame(
    sock: socket.socket, payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Encode and write one frame to a connected socket."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; EOF raises ``ConnectionError``."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame and decode its JSON payload.

    Raises ``ConnectionError`` on a clean or mid-frame close (the caller
    decides whether that means "peer finished" or "reconnect and retry"),
    :class:`PayloadTooLargeError` on an oversized length prefix, and
    :class:`TransportError` on bytes that are not a JSON object.
    """
    (length,) = FRAME_HEADER.unpack(_recv_exact(sock, FRAME_HEADER.size))
    if length > max_frame_bytes:
        raise PayloadTooLargeError(
            f"incoming frame announces {length} bytes; limit is {max_frame_bytes}"
        )
    data = _recv_exact(sock, length)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise TransportError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload
