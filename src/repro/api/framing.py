"""Length-prefixed framing of the normalization wire protocol.

One frame = a 4-byte big-endian unsigned payload length followed by that
many payload bytes.  The prefix makes the protocol self-delimiting over a
TCP stream, and the frame-size limit bounds what a peer can make the other
side buffer before any schema validation runs.

Two payload kinds share the stream, discriminated by the first payload
byte:

* **JSON frames** (v1/v2): the payload is one UTF-8 JSON envelope
  dictionary.  A JSON object always starts with ``{`` (0x7B) or
  whitespace -- never 0xAB.
* **Binary frames** (v3): the payload starts with the 4-byte magic
  ``BINARY_MAGIC`` (first byte 0xAB, which is not valid leading UTF-8),
  followed by a compact JSON *preamble* (the envelope with each
  ``binary``-encoded tensor's data replaced by a buffer index), a buffer
  table, and the raw little-endian tensor buffers themselves::

      u32  payload_length                       (the shared frame prefix)
      ----------------------------------------- payload:
      4B   magic  = b"\\xabHB3"
      u32  preamble_length
      ...  preamble (UTF-8 JSON envelope, tensor data = buffer index)
      u32  buffer_count
      n *  (u64 offset, u64 length)             offsets payload-relative
      ...  zero padding to the next 8-byte boundary
      ...  buffers (each one 8-byte aligned, raw little-endian)

  Decoding never copies tensor bytes: each buffer becomes a memoryview
  slice over the received payload, and ``TensorPayload.to_array`` wraps
  it with ``np.frombuffer``.  Encoding writes each buffer straight from
  the source array's memoryview -- no base64, no text inflation.

Two read paths share the decode rules:

* :func:`recv_frame` -- blocking, one frame per call (simple clients);
* :class:`FrameDecoder` -- incremental, bytes in / envelopes out, so a
  pipelined peer that received several frames in one ``recv`` pays one
  syscall for all of them.  It is also the deterministic harness for the
  truncation/corruption property tests: malformed input -- JSON or binary
  -- raises an :class:`ApiError` member, never hangs, never escapes as a
  raw struct/numpy exception.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List

from repro.api.envelopes import (
    PayloadTooLargeError,
    TransportError,
    has_binary_tensors,
    rewrite_binary_tensors,
    _binary_data_view,
)

#: 4-byte big-endian unsigned frame-length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Default bound on one frame's payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Magic opening a binary payload.  The first byte (0xAB) is a UTF-8
#: continuation byte, so no JSON payload can ever start with it.
BINARY_MAGIC = b"\xabHB3"

_U32 = struct.Struct(">I")
_BUFFER_ENTRY = struct.Struct(">QQ")

#: Fixed binary-payload overhead before the preamble (magic + u32).
_PREAMBLE_AT = len(BINARY_MAGIC) + _U32.size


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _oversize_error(direction: str, length: int, max_frame_bytes: int) -> PayloadTooLargeError:
    """The one wording for every frame-size rejection: cap *and* length."""
    return PayloadTooLargeError(
        f"{direction} frame of {length} bytes exceeds the configured "
        f"max_frame_bytes cap of {max_frame_bytes} bytes"
    )


def _encode_binary_frame(payload: Dict[str, Any], max_frame_bytes: int) -> bytes:
    """Serialize an envelope carrying binary tensors into a binary frame."""
    buffers: List[memoryview] = []

    def _detach(tensor: Dict[str, Any]) -> Dict[str, Any]:
        view = _binary_data_view(tensor["data"])
        out = dict(tensor)
        out["data"] = len(buffers)
        buffers.append(view)
        return out

    preamble_obj = rewrite_binary_tensors(payload, _detach)
    preamble = json.dumps(preamble_obj, separators=(",", ":")).encode("utf-8")

    table_at = _PREAMBLE_AT + len(preamble) + _U32.size
    offset = table_at + _BUFFER_ENTRY.size * len(buffers)
    table = bytearray()
    body: List[Any] = []
    for view in buffers:
        aligned = _align8(offset)
        if aligned != offset:
            body.append(b"\x00" * (aligned - offset))
            offset = aligned
        table += _BUFFER_ENTRY.pack(offset, view.nbytes)
        body.append(view)
        offset += view.nbytes

    if offset > max_frame_bytes:
        raise _oversize_error("outgoing binary", offset, max_frame_bytes)
    parts = [
        FRAME_HEADER.pack(offset),
        BINARY_MAGIC,
        _U32.pack(len(preamble)),
        preamble,
        _U32.pack(len(buffers)),
        bytes(table),
    ]
    parts.extend(body)
    return b"".join(parts)


def _decode_binary_payload(data: bytes) -> Dict[str, Any]:
    """Decode a binary payload; tensor buffers become zero-copy memoryviews.

    Every malformed input -- bad magic, lengths that do not fit, buffer
    spans outside the payload, a preamble that is not a JSON object, or a
    dangling buffer index -- raises :class:`TransportError`; nothing ever
    escapes as a raw ``struct.error`` or numpy exception.
    """
    total = len(data)
    if total < _PREAMBLE_AT + _U32.size or data[: len(BINARY_MAGIC)] != BINARY_MAGIC:
        raise TransportError(
            f"binary frame header is malformed or truncated "
            f"({total}-byte payload, expected magic {BINARY_MAGIC!r})"
        )
    (preamble_len,) = _U32.unpack_from(data, len(BINARY_MAGIC))
    pos = _PREAMBLE_AT
    if preamble_len > total - pos - _U32.size:
        raise TransportError(
            f"binary frame preamble announces {preamble_len} bytes but only "
            f"{max(total - pos - _U32.size, 0)} remain in the {total}-byte payload"
        )
    preamble_bytes = bytes(data[pos : pos + preamble_len])
    pos += preamble_len
    (buffer_count,) = _U32.unpack_from(data, pos)
    pos += _U32.size
    table_bytes = buffer_count * _BUFFER_ENTRY.size
    if table_bytes > total - pos:
        raise TransportError(
            f"binary frame announces {buffer_count} buffers but its table "
            f"needs {table_bytes} bytes and only {total - pos} remain"
        )
    body = memoryview(data)
    buffers: List[memoryview] = []
    buffers_start = pos + table_bytes
    for index in range(buffer_count):
        offset, length = _BUFFER_ENTRY.unpack_from(data, pos + index * _BUFFER_ENTRY.size)
        if offset < buffers_start or offset + length > total:
            raise TransportError(
                f"binary frame buffer {index} spans bytes {offset}..{offset + length} "
                f"outside the {total}-byte payload"
            )
        buffers.append(body[offset : offset + length])

    try:
        preamble = json.loads(preamble_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(
            f"binary frame preamble is not valid JSON: {error}"
        ) from error
    if not isinstance(preamble, dict):
        raise TransportError(
            f"binary frame preamble must be a JSON object, got "
            f"{type(preamble).__name__}"
        )

    def _attach(tensor: Dict[str, Any]) -> Dict[str, Any]:
        index = tensor["data"]
        if isinstance(index, bool) or not isinstance(index, int) or not 0 <= index < buffer_count:
            raise TransportError(
                f"binary tensor references buffer {index!r}; the frame "
                f"carries {buffer_count} buffer(s)"
            )
        out = dict(tensor)
        out["data"] = buffers[index]
        return out

    return rewrite_binary_tensors(preamble, _attach)


def encode_frame(payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one envelope into a length-prefixed frame.

    Envelopes carrying ``binary``-encoded tensors become binary frames
    (raw buffers, no base64); everything else stays a JSON frame.
    """
    if has_binary_tensors(payload):
        return _encode_binary_frame(payload, max_frame_bytes)
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise _oversize_error("outgoing", len(data), max_frame_bytes)
    return FRAME_HEADER.pack(len(data)) + data


def send_frame(
    sock: socket.socket, payload: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Encode and write one frame to a connected socket."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; EOF raises ``ConnectionError``."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def frame_kind(body: bytes) -> str:
    """``"binary"`` or ``"json"``, by the payload's first byte."""
    return "binary" if body[:1] == BINARY_MAGIC[:1] else "json"


def peek_payload(data: bytes) -> tuple:
    """``(envelope, is_binary)`` without materializing any tensor buffer.

    The pre-decode gate (tenant quota + overload admission) runs on this:
    for a **binary** frame only the magic, the u32 preamble length and the
    JSON preamble itself are parsed -- the buffer table is never walked
    and no buffer memoryview is created, so a rejected request's tensor
    bytes are never touched (let alone ``np.frombuffer``-wrapped).  The
    returned envelope's binary tensors keep their integer buffer indices
    in ``data``; sizing/classification fields (op, request_id, shapes,
    deadline_ms) are all present.  For a **JSON** frame the peek *is* the
    full decode, so the caller can reuse the envelope as the final payload.

    Malformed input raises the same :class:`ApiError` members as
    :func:`decode_payload` -- peeking never widens what a hostile frame
    can do.
    """
    if frame_kind(data) != "binary":
        return decode_payload(data), False
    total = len(data)
    if total < _PREAMBLE_AT + _U32.size or data[: len(BINARY_MAGIC)] != BINARY_MAGIC:
        raise TransportError(
            f"binary frame header is malformed or truncated "
            f"({total}-byte payload, expected magic {BINARY_MAGIC!r})"
        )
    (preamble_len,) = _U32.unpack_from(data, len(BINARY_MAGIC))
    if preamble_len > total - _PREAMBLE_AT - _U32.size:
        raise TransportError(
            f"binary frame preamble announces {preamble_len} bytes but only "
            f"{max(total - _PREAMBLE_AT - _U32.size, 0)} remain in the "
            f"{total}-byte payload"
        )
    preamble_bytes = bytes(data[_PREAMBLE_AT : _PREAMBLE_AT + preamble_len])
    try:
        preamble = json.loads(preamble_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(
            f"binary frame preamble is not valid JSON: {error}"
        ) from error
    if not isinstance(preamble, dict):
        raise TransportError(
            f"binary frame preamble must be a JSON object, got "
            f"{type(preamble).__name__}"
        )
    return preamble, True


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Decode one frame's payload bytes into an envelope dictionary."""
    if frame_kind(data) == "binary":
        return _decode_binary_payload(data)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise TransportError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FrameDecoder:
    """Incremental frame decoder over an unbounded byte stream.

    Feed raw received bytes in any chunking; complete envelopes come out in
    order.  The buffered tail is bounded by ``max_frame_bytes`` + header: an
    announced length beyond the limit fails *before* the body is buffered,
    so a hostile peer cannot make this side hold unbounded memory.

    The decoder keeps codec counters for the telemetry layer:
    ``frames_json`` / ``frames_binary`` (decoded envelopes per payload
    kind), ``bytes_decoded`` (payload bytes of completed frames) and
    ``last_kind`` (the most recent frame's kind, or ``None``).

    ``raw=True`` defers payload decoding: :meth:`feed` returns the frame
    *bodies* (``bytes``) instead of envelopes, counters still tick per
    kind.  The server reader uses this so its pre-decode gate can
    :func:`peek_payload` a frame and shed it (quota, overload) before any
    tensor buffer is materialized; admitted bodies then go through
    :func:`decode_payload`.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES, raw: bool = False):
        self.max_frame_bytes = max_frame_bytes
        self.raw = raw
        self._buffer = bytearray()
        self.frames_json = 0
        self.frames_binary = 0
        self.bytes_decoded = 0
        self.last_kind: Any = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Any]:
        """Absorb received bytes; returns every frame completed by them
        (envelope dicts, or raw bodies in ``raw`` mode).

        Raises :class:`PayloadTooLargeError` on an oversized length prefix
        (the message names both the configured cap and the offending
        length) and :class:`TransportError` on a payload that is not a
        JSON object or a well-formed binary frame; both poison the stream
        (framing cannot be resynchronized), so the caller must drop the
        connection.
        """
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                return frames
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise _oversize_error("incoming", length, self.max_frame_bytes)
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[FRAME_HEADER.size : end])
            del self._buffer[:end]
            kind = frame_kind(body)
            frame: Any = body if self.raw else decode_payload(body)
            self.last_kind = kind
            self.bytes_decoded += len(body)
            if kind == "binary":
                self.frames_binary += 1
            else:
                self.frames_json += 1
            frames.append(frame)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        A peer that closed mid-frame left ``pending_bytes`` behind; that is
        a truncated stream, reported as :class:`TransportError`.
        """
        if self._buffer:
            raise TransportError(
                f"stream ended mid-frame with {len(self._buffer)} buffered byte(s)"
            )


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame and decode its payload (JSON or binary).

    Raises ``ConnectionError`` on a clean or mid-frame close (the caller
    decides whether that means "peer finished" or "reconnect and retry"),
    :class:`PayloadTooLargeError` on an oversized length prefix (naming
    the configured cap and the offending length), and
    :class:`TransportError` on bytes that decode as neither envelope kind.
    """
    (length,) = FRAME_HEADER.unpack(_recv_exact(sock, FRAME_HEADER.size))
    if length > max_frame_bytes:
        raise _oversize_error("incoming", length, max_frame_bytes)
    return decode_payload(_recv_exact(sock, length))
