"""`ApiHandler`: envelope dictionaries in, envelope dictionaries out.

The single place wire requests become :class:`NormalizationService` calls.
Both transports share it -- :class:`~repro.api.transport.InProcessTransport`
invokes it directly and :class:`~repro.api.server.NormServer` invokes it per
received frame -- so local and remote clients run the *same* validation,
error taxonomy and execution path, which is what makes the bit-equivalence
guarantee between transports structural rather than tested-by-luck.

Validation failures never escape as raw exceptions: every handled request
returns exactly one response envelope, with :class:`ApiError` members
mapped onto their wire codes and anything unexpected collapsed to
``internal``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.envelopes import (
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    ApiError,
    BadSchemaError,
    ErrorResponse,
    ExecuteBulkRequest,
    ExecuteBulkResponse,
    ExecuteResult,
    ExecuteSpecRequest,
    ExecuteSpecResponse,
    HelloRequest,
    HelloResponse,
    NormalizeBulkRequest,
    NormalizeBulkResponse,
    NormalizeRequest,
    NormalizeResponse,
    NormalizeResult,
    PayloadTooLargeError,
    PingRequest,
    PingResponse,
    SpecRequest,
    SpecResponse,
    StreamChunkRequest,
    StreamChunkResponse,
    TelemetryRequest,
    TelemetryResponse,
    TensorPayload,
    UnknownBackendError,
    UnknownModelError,
    negotiate_version,
    parse_request,
)


#: Ops that flow through the service's batching scheduler.  The async
#: server submits these via :meth:`ApiHandler.begin` (futures bridged onto
#: the event loop) instead of blocking an executor thread in ``handle``.
SERVING_OPS = frozenset({"normalize", "normalize_bulk", "stream"})


class ApiHandler:
    """Dispatch parsed envelopes against one :class:`NormalizationService`.

    Parameters
    ----------
    service:
        The serving front door every ``normalize`` / ``spec`` / ``telemetry``
        request resolves through.  ``execute`` requests bypass it: they ship
        their own :class:`~repro.engine.spec.EngineSpec` and run on a
        handler-local engine cache.
    max_payload_elements:
        Upper bound on scalar elements per request tensor; larger payloads
        fail with ``payload_too_large`` before any decoding work happens.
    engine_cache_size:
        Number of (spec, affine, backend) engines the ``execute`` op keeps
        compiled between requests.
    schema_versions:
        The ``(min, max)`` schema-version range this handler advertises in
        hello/ping negotiation (defaults to the package range; tests inject
        narrowed or shifted ranges for the negotiation matrix).
    """

    DEFAULT_MAX_ELEMENTS = 4_000_000

    def __init__(
        self,
        service,
        max_payload_elements: int = DEFAULT_MAX_ELEMENTS,
        engine_cache_size: int = 32,
        schema_versions: Tuple[int, int] = (MIN_SCHEMA_VERSION, SCHEMA_VERSION),
    ):
        if max_payload_elements < 1:
            raise ValueError("max_payload_elements must be positive")
        if engine_cache_size < 1:
            raise ValueError("engine_cache_size must be positive")
        self.service = service
        self.max_payload_elements = max_payload_elements
        self.min_schema_version, self.max_schema_version = schema_versions
        #: key -> (engine, per-engine run lock).  The cache lock only guards
        #: the mapping itself; each engine runs under its own lock (its
        #: backend owns mutable scratch), so concurrent connections
        #: executing *different* specs never serialize on each other.
        self._engine_cache: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._engine_cache_size = engine_cache_size
        self._cache_lock = threading.Lock()

    # -- entry point --------------------------------------------------------

    def handle(
        self, payload: Any, degrade_level: int = 0, tenant: Optional[str] = None
    ) -> Dict[str, Any]:
        """Handle one request envelope; always returns a response envelope.

        The response echoes the *request's* ``schema_version`` whenever it
        is one this handler speaks, so a client that negotiated down keeps
        receiving envelopes at its version.

        ``degrade_level`` is the server's current
        :class:`~repro.serving.degrade.DegradationLadder` level; serving
        ops run at that fidelity and the response's ``degradation`` field
        reports the level actually applied (execute ops ship their own
        spec and are never degraded -- the caller asked for exactly that
        computation).

        ``tenant`` is the authenticated tenant name of the connection this
        envelope arrived on (None = anonymous); serving ops carry it into
        the service so the cost ledger can attribute the batch's modelled
        cycles/energy per tenant.  It never affects the computation.
        """
        request_id, echo_version = self._preamble(payload)
        try:
            request = parse_request(payload)
        except ApiError as error:
            return self._stamp(
                ErrorResponse.from_exception(error, request_id).to_wire(), echo_version
            )
        try:
            return self._stamp(
                self._dispatch(request, degrade_level, tenant).to_wire(), echo_version
            )
        except BaseException as error:  # noqa: BLE001 -- one envelope per request
            if not isinstance(error, Exception):
                raise  # KeyboardInterrupt / SystemExit propagate to the server
            return self._stamp(
                ErrorResponse.from_exception(error, request.request_id).to_wire(),
                echo_version,
            )

    def _preamble(self, payload: Any) -> Tuple[Optional[int], Optional[int]]:
        """``(request_id, echo_version)`` salvaged from a raw envelope."""
        request_id = None
        echo_version = None
        if isinstance(payload, dict):
            request_id = payload.get("request_id")
            if isinstance(request_id, bool) or not isinstance(request_id, int):
                request_id = None
            version = payload.get("schema_version")
            if (
                not isinstance(version, bool)
                and isinstance(version, int)
                and self.min_schema_version <= version <= self.max_schema_version
            ):
                echo_version = version
        return request_id, echo_version

    @staticmethod
    def _stamp(response: Dict[str, Any], echo_version: Optional[int]) -> Dict[str, Any]:
        if echo_version is not None:
            response["schema_version"] = echo_version
        return response

    # -- async entry point ---------------------------------------------------

    def begin(
        self, payload: Any, degrade_level: int = 0, tenant: Optional[str] = None
    ):
        """Submit a serving op without blocking on its result.

        The non-blocking counterpart of :meth:`handle` for the ops in
        :data:`SERVING_OPS` (the ones that flow through the batching
        scheduler).  Validates and decodes the envelope, submits into the
        service, and returns ``(pendings, finish)``:

        * ``pendings`` -- the :class:`ResponseFuture` objects the request
          enqueued (empty when validation already failed);
        * ``finish()`` -- builds the response envelope; the caller must
          invoke it only once every pending future is done (the async
          server awaits their done-callbacks), after which it never
          blocks.

        Never raises: failures become error envelopes exactly as in
        :meth:`handle`, with the same taxonomy mapping -- both entry points
        produce bit-identical envelopes for the same request.  Requires a
        service whose scheduler drains itself (threaded mode): nothing
        pumps the queues between ``begin`` and ``finish``.
        """
        request_id, echo_version = self._preamble(payload)
        try:
            request = parse_request(payload)
        except ApiError as error:
            envelope = self._stamp(
                ErrorResponse.from_exception(error, request_id).to_wire(), echo_version
            )
            return [], lambda: envelope
        try:
            if isinstance(request, NormalizeRequest):
                pendings, build = self._begin_normalize(request, degrade_level, tenant)
            elif isinstance(request, NormalizeBulkRequest):
                pendings, build = self._begin_bulk(request, degrade_level, tenant)
            elif isinstance(request, StreamChunkRequest):
                pendings, build = self._begin_stream(request, degrade_level, tenant)
            else:
                raise BadSchemaError(
                    f"op {getattr(request, 'op', '?')!r} is not a serving op; "
                    f"dispatch it through handle()"
                )
        except BaseException as error:  # noqa: BLE001 -- one envelope per request
            if not isinstance(error, Exception):
                raise
            envelope = self._stamp(
                ErrorResponse.from_exception(error, request.request_id).to_wire(),
                echo_version,
            )
            return [], lambda: envelope

        def finish() -> Dict[str, Any]:
            try:
                return self._stamp(build().to_wire(), echo_version)
            except BaseException as error:  # noqa: BLE001
                if not isinstance(error, Exception):
                    raise
                return self._stamp(
                    ErrorResponse.from_exception(error, request.request_id).to_wire(),
                    echo_version,
                )

        return pendings, finish

    def _dispatch(self, request, degrade_level: int = 0, tenant: Optional[str] = None):
        if isinstance(request, NormalizeRequest):
            return self._normalize(request, degrade_level, tenant)
        if isinstance(request, NormalizeBulkRequest):
            return self._normalize_bulk(request, degrade_level, tenant)
        if isinstance(request, StreamChunkRequest):
            return self._stream(request, degrade_level, tenant)
        if isinstance(request, SpecRequest):
            return self._spec(request)
        if isinstance(request, ExecuteSpecRequest):
            return self._execute(request)
        if isinstance(request, ExecuteBulkRequest):
            return self._execute_bulk(request)
        if isinstance(request, HelloRequest):
            return self._hello(request)
        if isinstance(request, PingRequest):
            return self._ping(request)
        if isinstance(request, TelemetryRequest):
            return self._telemetry(request)
        raise BadSchemaError(f"unhandled request type {type(request).__name__}")

    # -- shared validation --------------------------------------------------

    def _check_backend(self, name: str) -> None:
        from repro.engine.registry import requires_connection, validate_backend_name

        try:
            validate_backend_name(name)
        except ValueError as error:
            raise UnknownBackendError(str(error)) from error
        if requires_connection(name):
            raise UnknownBackendError(
                f"backend {name!r} needs its own connection configuration and "
                f"cannot be served here (a server forwarding to itself would loop)"
            )

    def _check_model(self, name: str) -> None:
        try:
            self.service.registry.validate_model(name)
        except ValueError as error:
            raise UnknownModelError(str(error)) from error

    def _check_size(self, tensor: TensorPayload, what: str = "tensor") -> None:
        if tensor.num_elements > self.max_payload_elements:
            raise PayloadTooLargeError(
                f"{what} carries {tensor.num_elements} elements; this server "
                f"accepts at most {self.max_payload_elements} per request"
            )

    # -- ops ----------------------------------------------------------------

    def _normalize(
        self,
        request: NormalizeRequest,
        degrade_level: int = 0,
        tenant: Optional[str] = None,
    ) -> NormalizeResponse:
        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_size(request.tensor)
        array = self._decode_rows(request.tensor, "normalize")
        response = self._service_normalize(
            array, request, degrade=degrade_level, tenant=tenant
        )
        return self._build_normalize(request, response)

    @staticmethod
    def _build_normalize(
        request: NormalizeRequest, response
    ) -> NormalizeResponse:
        encoding = request.tensor.encoding
        return NormalizeResponse(
            request_id=request.request_id,
            tensor=TensorPayload.from_array(response.output, encoding),
            mean=TensorPayload.from_array(response.mean, encoding),
            isd=TensorPayload.from_array(response.isd, encoding),
            was_predicted=response.was_predicted,
            was_subsampled=response.was_subsampled,
            batch_size=response.batch_size,
            queue_wait=float(response.queue_wait),
            batch_latency=float(response.batch_latency),
            backend=response.key.backend,
            accelerator=response.key.accelerator,
            degradation=response.degradation,
        )

    def _decode_rows(self, tensor: TensorPayload, where: str) -> np.ndarray:
        array = tensor.to_array()
        if array.ndim not in (1, 2):
            raise BadSchemaError(
                f"{where} payload must be (hidden,) or (rows, hidden); "
                f"got shape {tuple(array.shape)}"
            )
        return array

    @staticmethod
    def _call_service(fn, *args, **kwargs):
        """Run one service call with the shared error-taxonomy mapping.

        Registries with custom loaders validate lazily: an unknown model
        surfaces as the loader's KeyError at execution time.
        """
        try:
            return fn(*args, **kwargs)
        except KeyError as error:
            raise UnknownModelError(str(error.args[0] if error.args else error)) from error
        except (ValueError, IndexError) as error:
            raise BadSchemaError(str(error)) from error

    def _service_normalize(
        self, array: np.ndarray, request, context=None, degrade: int = 0, tenant=None
    ):
        return self._call_service(
            self.service.normalize,
            array,
            request.model,
            layer_index=request.layer_index,
            dataset=request.dataset,
            reference=request.reference,
            backend=request.backend,
            accelerator=request.accelerator,
            context=context,
            degrade=degrade,
            tenant=tenant,
            deadline_ms=request.deadline_ms,
        )

    def _service_submit(
        self, array: np.ndarray, request, context=None, degrade: int = 0, tenant=None
    ):
        """Non-blocking twin of :meth:`_service_normalize` (async path)."""
        return self._call_service(
            self.service.submit,
            array,
            request.model,
            layer_index=request.layer_index,
            dataset=request.dataset,
            reference=request.reference,
            backend=request.backend,
            accelerator=request.accelerator,
            context=context,
            degrade=degrade,
            tenant=tenant,
            deadline_ms=request.deadline_ms,
        )

    def _resolve(self, future):
        """A completed future's response, with the shared taxonomy mapping.

        ``result(0)`` never blocks (callers only invoke this after the
        done-callback fired); execution failures surface here and map onto
        the same :class:`ApiError` members as the synchronous path, so the
        async server's error envelopes are bit-identical to the threaded
        server's.
        """
        return self._call_service(future.result, 0)

    def _begin_normalize(
        self,
        request: NormalizeRequest,
        degrade_level: int,
        tenant: Optional[str],
    ):
        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_size(request.tensor)
        array = self._decode_rows(request.tensor, "normalize")
        future = self._service_submit(
            array, request, degrade=degrade_level, tenant=tenant
        )
        return [future], lambda: self._build_normalize(
            request, self._resolve(future)
        )

    def _normalize_bulk(
        self,
        request: NormalizeBulkRequest,
        degrade_level: int = 0,
        tenant: Optional[str] = None,
    ) -> NormalizeBulkResponse:
        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_bulk_size(request)
        arrays = self._decode_bulk(request)
        # normalize_many lands the whole list in the micro-batcher under
        # one lock acquisition -- a single remote frame fills a batch by
        # itself instead of waiting for cross-client coalescing.
        responses = self._call_service(
            self.service.normalize_many,
            arrays,
            request.model,
            layer_index=request.layer_index,
            dataset=request.dataset,
            reference=request.reference,
            backend=request.backend,
            accelerator=request.accelerator,
            degrade=degrade_level,
            tenant=tenant,
            deadline_ms=request.deadline_ms,
        )
        return self._build_bulk(request, responses)

    def _check_bulk_size(self, request: NormalizeBulkRequest) -> None:
        # Size-check the whole request (per tensor AND aggregate) before any
        # array is materialized: an oversized bulk must not cost the decode.
        total_elements = 0
        for index, tensor in enumerate(request.tensors):
            self._check_size(tensor, f"tensors[{index}]")
            total_elements += tensor.num_elements
        if total_elements > self.max_payload_elements:
            raise PayloadTooLargeError(
                f"bulk request carries {total_elements} elements across "
                f"{len(request.tensors)} tensors; this server accepts at most "
                f"{self.max_payload_elements} per request"
            )

    def _decode_bulk(self, request: NormalizeBulkRequest) -> List[np.ndarray]:
        return [
            self._decode_rows(tensor, f"normalize_bulk tensors[{index}]")
            for index, tensor in enumerate(request.tensors)
        ]

    def _build_bulk(
        self, request: NormalizeBulkRequest, responses
    ) -> NormalizeBulkResponse:
        encoding = request.tensors[0].encoding
        return NormalizeBulkResponse(
            request_id=request.request_id,
            results=tuple(
                self._wire_result(response, encoding) for response in responses
            ),
            backend=request.backend,
            accelerator=responses[0].key.accelerator if responses else request.accelerator,
        )

    def _begin_bulk(
        self,
        request: NormalizeBulkRequest,
        degrade_level: int,
        tenant: Optional[str],
    ):
        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_bulk_size(request)
        arrays = self._decode_bulk(request)
        futures = self._call_service(
            self.service.submit_many,
            arrays,
            request.model,
            layer_index=request.layer_index,
            dataset=request.dataset,
            reference=request.reference,
            backend=request.backend,
            accelerator=request.accelerator,
            degrade=degrade_level,
            tenant=tenant,
            deadline_ms=request.deadline_ms,
        )
        return list(futures), lambda: self._build_bulk(
            request, [self._resolve(future) for future in futures]
        )

    @staticmethod
    def _wire_result(response, encoding: str) -> NormalizeResult:
        return NormalizeResult(
            tensor=TensorPayload.from_array(response.output, encoding),
            mean=TensorPayload.from_array(response.mean, encoding),
            isd=TensorPayload.from_array(response.isd, encoding),
            was_predicted=response.was_predicted,
            was_subsampled=response.was_subsampled,
            batch_size=response.batch_size,
            queue_wait=float(response.queue_wait),
            batch_latency=float(response.batch_latency),
            degradation=response.degradation,
        )

    def _stream(
        self,
        request: StreamChunkRequest,
        degrade_level: int = 0,
        tenant: Optional[str] = None,
    ) -> StreamChunkResponse:
        from repro.llm.hooks import ActivationContext

        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_size(request.tensor)
        array = self._decode_rows(request.tensor, "stream")
        # A fresh context per chunk mirrors ``NormalizationService.stream``:
        # chunks are independent token groups, so cross-layer ISD state must
        # not leak between them (nor between interleaved streams).
        response = self._service_normalize(
            array, request, context=ActivationContext(), degrade=degrade_level,
            tenant=tenant,
        )
        return self._build_stream(request, response)

    def _build_stream(
        self, request: StreamChunkRequest, response
    ) -> StreamChunkResponse:
        return StreamChunkResponse(
            request_id=request.request_id,
            stream_id=request.stream_id,
            seq=request.seq,
            final=request.final,
            result=self._wire_result(response, request.tensor.encoding),
            backend=response.key.backend,
            accelerator=response.key.accelerator,
        )

    def _begin_stream(
        self,
        request: StreamChunkRequest,
        degrade_level: int,
        tenant: Optional[str],
    ):
        from repro.llm.hooks import ActivationContext

        self._check_backend(request.backend)
        self._check_model(request.model)
        self._check_size(request.tensor)
        array = self._decode_rows(request.tensor, "stream")
        future = self._service_submit(
            array, request, context=ActivationContext(), degrade=degrade_level,
            tenant=tenant,
        )
        return [future], lambda: self._build_stream(request, self._resolve(future))

    def _spec(self, request: SpecRequest) -> SpecResponse:
        self._check_model(request.model)
        try:
            artifact = self.service.registry.get(request.model, request.dataset)
        except KeyError as error:
            raise UnknownModelError(str(error.args[0] if error.args else error)) from error
        try:
            layer = artifact.layer(request.layer_index, reference=request.reference)
        except IndexError as error:
            raise BadSchemaError(str(error)) from error
        plan = layer.plan
        return SpecResponse(
            request_id=request.request_id,
            spec=plan.spec.to_dict(),
            gamma=TensorPayload.from_array(plan.gamma),
            beta=TensorPayload.from_array(plan.beta),
            model=request.model,
            layer_index=request.layer_index,
            num_layers=artifact.num_layers,
        )

    def _execute(self, request: ExecuteSpecRequest) -> ExecuteSpecResponse:
        from repro.engine.spec import EngineSpec

        self._check_backend(request.backend)
        self._check_size(request.rows, "rows")
        try:
            spec = EngineSpec.from_dict(request.spec)
        except (TypeError, ValueError) as error:
            raise BadSchemaError(f"invalid engine spec: {error}") from error
        gamma = None if request.gamma is None else request.gamma.to_array()
        beta = None if request.beta is None else request.beta.to_array()
        rows = request.rows.to_array()
        segment_starts = (
            None
            if request.segment_starts is None
            else request.segment_starts.to_array().astype(np.int64, copy=False)
        )
        anchor_isd = None if request.anchor_isd is None else request.anchor_isd.to_array()
        engine, run_lock = self._engine_for(spec, request.backend, gamma, beta)
        try:
            with run_lock:
                output, mean, isd = engine.run(rows, segment_starts, anchor_isd)
        except ValueError as error:
            raise BadSchemaError(str(error)) from error
        return ExecuteSpecResponse(
            request_id=request.request_id,
            output=TensorPayload.from_array(output, request.rows.encoding),
            mean=TensorPayload.from_array(mean, request.rows.encoding),
            isd=TensorPayload.from_array(isd, request.rows.encoding),
            backend=request.backend,
        )

    def _execute_bulk(self, request: ExecuteBulkRequest) -> ExecuteBulkResponse:
        from repro.engine.spec import EngineSpec

        self._check_backend(request.backend)
        total_elements = 0
        for index, group in enumerate(request.groups):
            self._check_size(group.rows, f"groups[{index}].rows")
            total_elements += group.rows.num_elements
        if total_elements > self.max_payload_elements:
            raise PayloadTooLargeError(
                f"bulk execute carries {total_elements} elements across "
                f"{len(request.groups)} groups; this server accepts at most "
                f"{self.max_payload_elements} per request"
            )
        try:
            spec = EngineSpec.from_dict(request.spec)
        except (TypeError, ValueError) as error:
            raise BadSchemaError(f"invalid engine spec: {error}") from error
        gamma = None if request.gamma is None else request.gamma.to_array()
        beta = None if request.beta is None else request.beta.to_array()
        engine, run_lock = self._engine_for(spec, request.backend, gamma, beta)
        encoding = request.groups[0].rows.encoding
        # Decode every group before taking the engine lock and encode the
        # responses after releasing it: only engine.run needs the lock, so
        # connections sharing a cached engine never serialize on codec work.
        decoded = [
            (
                group.rows.to_array(),
                None
                if group.segment_starts is None
                else group.segment_starts.to_array().astype(np.int64, copy=False),
                None if group.anchor_isd is None else group.anchor_isd.to_array(),
            )
            for group in request.groups
        ]
        raw: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        try:
            # One lock acquisition for the whole bulk: the spec compiled
            # once, the backend's scratch stays warm across groups.
            with run_lock:
                for rows, segment_starts, anchor_isd in decoded:
                    raw.append(engine.run(rows, segment_starts, anchor_isd))
        except ValueError as error:
            raise BadSchemaError(str(error)) from error
        return ExecuteBulkResponse(
            request_id=request.request_id,
            results=tuple(
                ExecuteResult(
                    output=TensorPayload.from_array(output, encoding),
                    mean=TensorPayload.from_array(mean, encoding),
                    isd=TensorPayload.from_array(isd, encoding),
                )
                for output, mean, isd in raw
            ),
            backend=request.backend,
        )

    def _engine_for(self, spec, backend: str, gamma, beta):
        """LRU cache of compiled engines for the ``execute`` op.

        Keyed by the full spec JSON, the backend name and a digest of the
        affine parameters, so repeated remote-backend traffic pays the
        compile (and backend construction) once.  Returns
        ``(engine, run_lock)``; the lock serializes runs of *this* engine
        only (its backend owns mutable scratch).
        """
        digest = hashlib.sha256()
        for arr in (gamma, beta):
            digest.update(b"\x00" if arr is None else np.ascontiguousarray(arr).tobytes())
        key = (json.dumps(spec.to_dict(), sort_keys=True), backend, digest.hexdigest())
        with self._cache_lock:
            entry = self._engine_cache.get(key)
            if entry is not None:
                self._engine_cache.move_to_end(key)
                return entry
        from repro.engine.registry import build

        try:
            engine = build(spec, backend=backend, gamma=gamma, beta=beta)
        except ValueError as error:
            raise BadSchemaError(str(error)) from error
        entry = (engine, threading.Lock())
        with self._cache_lock:
            # A racing thread may have built the same engine; keep the
            # first one so its lock stays authoritative.
            entry = self._engine_cache.setdefault(key, entry)
            self._engine_cache.move_to_end(key)
            while len(self._engine_cache) > self._engine_cache_size:
                self._engine_cache.popitem(last=False)
        return entry

    def _hello(self, request: HelloRequest) -> HelloResponse:
        from repro.engine.registry import available_backends

        chosen = negotiate_version(
            request.min_schema_version,
            request.max_schema_version,
            self.min_schema_version,
            self.max_schema_version,
        )
        return HelloResponse(
            request_id=request.request_id,
            schema_version_chosen=chosen,
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
            backends=available_backends(),
        )

    def _ping(self, request: PingRequest) -> PingResponse:
        from repro.engine.registry import available_backends

        return PingResponse(
            request_id=request.request_id,
            backends=available_backends(),
            models=self.service.registry.known_model_names(),
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
        )

    def _telemetry(self, request: TelemetryRequest) -> TelemetryResponse:
        return TelemetryResponse(
            request_id=request.request_id,
            telemetry=self.service.telemetry.snapshot(),
            registry=self.service.registry.snapshot(),
        )
