"""`haan-client`: submit normalization requests to a running server.

The command-line counterpart of ``haan-serve --listen``::

    haan-client --connect 127.0.0.1:8471 --model tiny --requests 2
    haan-client --connect 127.0.0.1:8471 --model tiny --requests 32 --depth 8
    haan-client --connect 127.0.0.1:8471 --model tiny --requests 32 --bulk
    haan-client --connect 127.0.0.1:8471,127.0.0.1:8472 --requests 32 --bulk
    haan-client --connect 127.0.0.1:8471 --model tiny --backend simulated \\
        --accelerator haan-v2
    haan-client --connect 127.0.0.1:8471 --model tiny --input payload.json
    haan-client --connect 127.0.0.1:8471 --model tiny --spec
    haan-client --connect 127.0.0.1:8471 --telemetry

Payloads come from ``--input`` (a JSON array: one vector, one matrix, or a
list of either -- ``-`` reads stdin) or are generated synthetically after
fetching the layer's spec to learn the hidden size.  ``--golden-check``
additionally rebuilds the layer locally from the served spec + affine
parameters and asserts the remote outputs bit-for-bit -- the wire-protocol
equivalent of ``haan-serve``'s golden check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import ApiError
from repro.api.server import parse_address


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``haan-client`` command."""
    parser = argparse.ArgumentParser(
        prog="haan-client",
        description="Send normalization requests to a haan-serve --listen server.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="server address (the one haan-serve --listen printed); a "
        "comma-separated list routes through the fleet transport "
        "(consistent-hash + health-gated failover across the replicas)",
    )
    parser.add_argument("--model", default="tiny", help="model name to normalize against")
    parser.add_argument("--dataset", default="default", help="calibration dataset key")
    parser.add_argument("--layer", type=int, default=0, help="normalization layer index")
    parser.add_argument(
        "--backend", default="vectorized", help="execution backend for the requests"
    )
    parser.add_argument(
        "--accelerator",
        default=None,
        help="accelerator config for cost-modelling backends (haan-v1/v2/v3, "
        "sole, dfx, mhaa)",
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="normalize with the exact reference layer instead of HAAN",
    )
    parser.add_argument("--requests", type=int, default=2, help="synthetic requests to send")
    parser.add_argument("--rows", type=int, default=1, help="rows per synthetic request")
    parser.add_argument(
        "--depth",
        type=int,
        default=1,
        help="pipelining depth: up to this many requests in flight at once "
        "(1 = lock-step; responses are matched by request_id)",
    )
    parser.add_argument(
        "--bulk",
        action="store_true",
        help="ship all payloads in one normalize_bulk frame (fills the "
        "server's micro-batcher from a single client)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=1,
        help="TCP connections in the transport pool",
    )
    parser.add_argument("--seed", type=int, default=0, help="synthetic payload RNG seed")
    parser.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="JSON payload file ('-' for stdin) instead of synthetic traffic",
    )
    parser.add_argument(
        "--encoding",
        choices=("binary", "base64", "list"),
        default="binary",
        help="tensor wire encoding (all are exact for float64; 'binary' "
        "rides zero-copy v3 frames and auto-downgrades to base64 "
        "against pre-v3 servers)",
    )
    parser.add_argument(
        "--transport",
        choices=("socket", "shm"),
        default="socket",
        help="client transport: plain TCP, or same-host shared-memory "
        "slabs for tensor payloads ('shm' falls back to TCP when the "
        "server refuses the attach; single-address connects only)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="tenant bearer token presented in the hello handshake "
        "(required by servers running --require-auth)",
    )
    parser.add_argument(
        "--wait-seconds",
        type=float,
        default=10.0,
        help="how long to wait for the server to accept connections",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-request timeout in seconds"
    )
    parser.add_argument(
        "--spec",
        action="store_true",
        help="print the layer's serialized engine spec and exit",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="print the server's telemetry snapshot and exit",
    )
    parser.add_argument(
        "--golden-check",
        action="store_true",
        help="rebuild the layer locally from the served spec and assert "
        "the remote outputs bit-for-bit",
    )
    return parser


def _load_payloads(path: str) -> List[np.ndarray]:
    """Parse a JSON payload file into a list of 1-D / 2-D arrays."""
    if path == "-":
        data = json.load(sys.stdin)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    if not isinstance(data, list) or not data:
        raise ValueError("payload file must hold a non-empty JSON array")

    def _depth(obj) -> int:
        depth = 0
        while isinstance(obj, list):
            depth += 1
            obj = obj[0] if obj else None
        return depth

    depth = _depth(data)
    if depth in (1, 2):
        return [np.asarray(data, dtype=np.float64)]
    if depth == 3:
        return [np.asarray(item, dtype=np.float64) for item in data]
    raise ValueError(f"payload file nests {depth} levels deep; expected 1, 2 or 3")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.requests < 1 or args.rows < 1:
        parser.error("--requests and --rows must be positive")
    if args.depth < 1 or args.pool < 1:
        parser.error("--depth and --pool must be positive")
    addresses = [part.strip() for part in args.connect.split(",") if part.strip()]
    if not addresses:
        parser.error("--connect needs at least one HOST:PORT")
    try:
        for address in addresses:
            parse_address(address)
    except ValueError as error:
        parser.error(str(error))

    if args.transport == "shm" and len(addresses) > 1:
        parser.error("--transport shm connects to a single server, not a fleet")
    try:
        if len(addresses) > 1:
            client = NormClient.connect_fleet(
                addresses, pool_size=args.pool, timeout=args.timeout, token=args.token
            )
        else:
            host, port = parse_address(addresses[0])
            client = NormClient.connect(
                host,
                port,
                pool_size=args.pool,
                timeout=args.timeout,
                transport=args.transport,
                token=args.token,
            )
        with client:
            client.wait_until_ready(timeout=args.wait_seconds)
            return _run(client, args)
    except ApiError as error:
        print(f"haan-client: [{error.code}] {error}", file=sys.stderr)
        return 1


def _run(client: NormClient, args: argparse.Namespace) -> int:
    if args.telemetry:
        print(json.dumps(client.telemetry(), indent=2, default=str))
        return 0

    served = client.fetch_spec(
        args.model, layer_index=args.layer, dataset=args.dataset, reference=args.reference
    )
    if args.spec:
        print(json.dumps(served.spec.to_dict(), indent=2))
        return 0

    if args.input is not None:
        try:
            payloads = _load_payloads(args.input)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"haan-client: cannot read --input: {error}", file=sys.stderr)
            return 2
    else:
        rng = np.random.default_rng(args.seed)
        payloads = [
            rng.normal(0.0, 1.0, size=(args.rows, served.hidden_size))
            for _ in range(args.requests)
        ]

    golden_engine = None
    if args.golden_check:
        from repro.engine.registry import build

        golden_engine = build(
            served.spec, backend="reference", gamma=served.gamma, beta=served.beta
        )

    mode = "bulk frame" if args.bulk else f"pipeline depth {args.depth}"
    negotiated = client.negotiated_version()
    shm_note = ""
    stats = getattr(client.transport, "stats", None)
    if callable(stats):
        shm = stats().get("shm")
        if shm is not None:
            shm_note = (
                ", shm attached" if shm["sessions"] else ", shm refused (TCP fallback)"
            )
    print(
        f"sending {len(payloads)} request(s) to {client.transport.address} "
        f"(model {args.model!r}, layer {args.layer}, backend {args.backend!r}, "
        f"{mode}, pool {args.pool}"
        + (f", accelerator {args.accelerator!r}" if args.accelerator else "")
        + (f", schema v{negotiated}" if negotiated is not None else "")
        + shm_note
        + ")"
    )
    shared = dict(
        layer_index=args.layer,
        dataset=args.dataset,
        reference=args.reference,
        backend=args.backend,
        accelerator=args.accelerator,
        encoding=args.encoding,
    )
    if args.bulk:
        results = client.normalize_bulk(payloads, args.model, **shared)
    else:
        results = client.normalize_many(payloads, args.model, depth=args.depth, **shared)
    total_rows = 0
    for index, (payload, result) in enumerate(zip(payloads, results)):
        rows = payload.reshape(-1, payload.shape[-1]).shape[0] if payload.ndim > 1 else 1
        total_rows += rows
        flags = []
        if result.was_predicted:
            flags.append("predicted-isd")
        if result.was_subsampled:
            flags.append("subsampled")
        print(
            f"  [{index}] rows={rows} batch_size={result.batch_size} "
            f"latency={1e6 * result.batch_latency:.0f}us "
            f"backend={result.backend}"
            + (f" flags={'+'.join(flags)}" if flags else "")
        )
        if golden_engine is not None:
            stacked = np.asarray(payload, dtype=np.float64).reshape(-1, served.hidden_size)
            expected = golden_engine.run(stacked)[0].reshape(result.output.shape)
            if not np.array_equal(result.output, expected):
                print(
                    "haan-client: GOLDEN CHECK FAILED: served output differs "
                    "from the local rebuild of the served spec",
                    file=sys.stderr,
                )
                return 1
    if golden_engine is not None:
        print(f"golden check: {len(payloads)} response(s) bit-identical to the served spec")
    print(f"done: {len(payloads)} request(s), {total_rows} row(s) normalized")
    return 0


if __name__ == "__main__":
    sys.exit(main())
