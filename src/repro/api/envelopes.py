"""Versioned wire envelopes of the public normalization API.

Every message exchanged between :class:`~repro.api.client.NormClient` and a
server (or the in-process handler) is one JSON-serializable dictionary with
three fixed keys -- ``schema_version``, ``op`` and ``request_id`` -- plus
the op-specific payload.  This module owns that schema:

* :class:`TensorPayload` -- dtype/shape/data encoding of one ndarray
  (``base64`` raw little-endian bytes, ``list`` nested JSON numbers, or
  the v3 ``binary`` encoding whose data is the raw little-endian buffer
  itself -- zero copy on encode and decode; all three round-trip float64
  bit-exactly),
* the request/response envelope dataclasses -- the v1 single-request ops
  (``normalize``, ``spec``, ``execute``, ``ping``, ``telemetry``) plus the
  v2 pipelining ops (``hello`` version negotiation, ``normalize_bulk``,
  ``stream`` chunks, ``execute_bulk``) -- with strict ``to_wire`` /
  ``from_wire`` validation,
* schema-version rules: each peer speaks a ``MIN_SCHEMA_VERSION ..
  SCHEMA_VERSION`` range, :func:`negotiate_version` picks the highest
  common version in the hello handshake, and v2-only ops are rejected on
  v1 envelopes,
* :class:`ErrorResponse` plus the :class:`ApiError` taxonomy (bad schema,
  schema-version mismatch, unknown backend, unknown model, payload too
  large, overloaded, quota exceeded, unauthenticated, transport failure,
  no healthy fleet replica), so client code catches one exception family
  regardless of where a request died.

The module is a leaf on purpose: it imports only the standard library and
numpy, so the engine's ``remote`` backend and the serving runtime can both
reach it without import cycles.
"""

from __future__ import annotations

import base64
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

#: Newest wire-schema version this build speaks.  Version 2 added the
#: pipelined multi-op framing: ``hello`` negotiation, ``normalize_bulk``
#: and ``stream`` envelopes, and the bulk ``execute`` form.  Version 3
#: added the ``binary`` tensor encoding (raw little-endian buffers carried
#: out-of-band in binary frames, no base64 round trip) and the same-host
#: shared-memory transport's control ops.
SCHEMA_VERSION = 3

#: First schema version whose frames may carry ``binary`` tensors.  Peers
#: that negotiate below this keep talking base64 over JSON frames; the
#: transports downgrade outgoing envelopes transparently.
BINARY_WIRE_VERSION = 3

#: Oldest wire-schema version this build still accepts (version 1 is the
#: PR-4 single-request protocol; every v1 envelope parses unchanged).
MIN_SCHEMA_VERSION = 1

#: Ops that did not exist before a given schema version; a request carrying
#: an older ``schema_version`` may not use them.
OP_MIN_VERSIONS: Dict[str, int] = {
    "normalize_bulk": 2,
    "stream": 2,
    "execute_bulk": 2,
}

#: Dtypes a tensor payload may carry, mapped to their little-endian codes.
TENSOR_DTYPES: Dict[str, str] = {
    "float64": "<f8",
    "float32": "<f4",
    "float16": "<f2",
    "int64": "<i8",
    "int32": "<i4",
    "int8": "|i1",
}

#: Supported tensor data encodings.  ``binary`` (schema v3) keeps the raw
#: little-endian buffer attached to the payload instead of inflating it to
#: text; only binary frames and in-process transports can carry it.
TENSOR_ENCODINGS = ("base64", "list", "binary")

#: Python-level types a ``binary`` tensor's data may be (anything exposing
#: a contiguous buffer).  JSON-origin envelopes can only produce str/list
#: data, so a forged ``encoding: "binary"`` inside a JSON frame fails
#: closed in :meth:`TensorPayload.from_wire`.
_BINARY_DATA_TYPES = (bytes, bytearray, memoryview, np.ndarray)

_client_request_ids = itertools.count(1)
_client_stream_ids = itertools.count(1)


def next_request_id() -> int:
    """Process-wide monotonically increasing client request id."""
    return next(_client_request_ids)


def next_stream_id() -> int:
    """Process-wide monotonically increasing client stream id."""
    return next(_client_stream_ids)


def negotiate_version(
    client_min: int, client_max: int, server_min: int, server_max: int
) -> int:
    """Pick the highest schema version both peers speak.

    The hello handshake contract: the server advertises ``[server_min,
    server_max]``, the client downgrades within its own range, and disjoint
    ranges fail with a :class:`SchemaVersionError` naming *both* ranges so
    either side's operator can see which peer is behind.
    """
    for name, low, high in (("client", client_min, client_max),
                            ("server", server_min, server_max)):
        if low > high:
            raise SchemaVersionError(
                f"{name} schema-version range {low}..{high} is empty"
            )
    chosen = min(client_max, server_max)
    if chosen < max(client_min, server_min):
        raise SchemaVersionError(
            f"no common schema version: client speaks {client_min}..{client_max}, "
            f"server speaks {server_min}..{server_max}"
        )
    return chosen


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


class ApiError(Exception):
    """Base of every public-API failure; ``code`` is the wire error code."""

    code = "internal"


class BadSchemaError(ApiError):
    """The envelope was malformed or the request content was invalid."""

    code = "bad_schema"


class SchemaVersionError(BadSchemaError):
    """The envelope's ``schema_version`` does not match this peer's."""

    code = "schema_version"


class UnknownBackendError(ApiError):
    """The requested execution backend is not registered (or not servable)."""

    code = "unknown_backend"


class UnknownModelError(ApiError):
    """The requested model name is not known to the server's registry."""

    code = "unknown_model"


class PayloadTooLargeError(ApiError):
    """The tensor payload (or frame) exceeds the configured limit."""

    code = "payload_too_large"


class OverloadedError(ApiError):
    """The server shed this request before doing any work on it.

    Raised by the admission controller when the queue is too deep or the
    request's ``deadline_ms`` cannot be met by the estimated wait.  The
    request was **never executed** (rejection happens before tensor
    decode), so retrying is always safe; ``retry_after_ms`` is the
    server's estimate of when capacity frees up, which a
    :class:`~repro.api.retry.RetryPolicy` honors as its backoff floor.
    """

    code = "overloaded"

    def __init__(self, message: str = "", retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class QuotaExceededError(ApiError):
    """A tenant's rate quota rejected this request before any work ran.

    Raised by the tenancy gate when the tenant's request/row/byte token
    bucket cannot cover the request.  Like :class:`OverloadedError` the
    rejection happens **before tensor decode** (binary frames are only
    peeked at their JSON preamble), so retrying is always safe;
    ``retry_after_ms`` is the bucket's estimate of when enough tokens
    refill, which a :class:`~repro.api.retry.RetryPolicy` honors as its
    backoff floor.
    """

    code = "quota_exceeded"

    def __init__(self, message: str = "", retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(ApiError):
    """The request's ``deadline_ms`` budget expired before execution began.

    Raised by a deadline-aware scheduler that sheds the request from its
    queue once the budget is exhausted -- the work **never executed**, but
    unlike :class:`OverloadedError` there is no ``retry_after_ms`` hint:
    the deadline was the *caller's* budget, so only the caller can decide
    whether a retry (with a fresh budget) still makes sense.
    """

    code = "deadline_exceeded"


class AuthenticationError(ApiError):
    """The connection presented no valid bearer token where one is required.

    Raised server-side on the ``hello`` handshake (bad or unknown token,
    or no token against ``--require-auth``) and on work ops arriving over
    a connection that never authenticated.  Never retryable: the caller
    must supply credentials, not wait.
    """

    code = "unauthenticated"


class TransportError(ApiError):
    """The transport failed before a response envelope arrived.

    ``address`` carries the ``host:port`` of the connection that failed
    when the raiser knows it -- fleet-level dispatch uses it to attribute
    the failure to one replica (and debugging output names the culprit
    instead of a faceless pool).
    """

    code = "transport"

    def __init__(self, message: str = "", address: Optional[str] = None):
        super().__init__(message)
        self.address = address


class NoHealthyReplicaError(TransportError):
    """Every fleet replica was ejected (or down): the request fails closed.

    Raised client-side by the fleet dispatch layer, never by a server --
    a single server that is reachable answers, and one that is not fails
    with a plain :class:`TransportError` naming its address.
    """

    code = "no_healthy_replica"


#: Wire error code -> exception class (for decoding error responses).
ERROR_CLASSES: Dict[str, Type[ApiError]] = {
    cls.code: cls
    for cls in (
        ApiError,
        BadSchemaError,
        SchemaVersionError,
        UnknownBackendError,
        UnknownModelError,
        PayloadTooLargeError,
        OverloadedError,
        QuotaExceededError,
        DeadlineExceededError,
        AuthenticationError,
        TransportError,
        NoHealthyReplicaError,
    )
}

#: Taxonomy members whose constructor takes a ``retry_after_ms`` hint
#: (server-side shedding: overload and per-tenant quota rejections).
_RETRY_AFTER_CLASSES = (OverloadedError, QuotaExceededError)


def error_for_code(
    code: str, message: str, retry_after_ms: Optional[float] = None
) -> ApiError:
    """Instantiate the taxonomy member for a wire error code."""
    cls = ERROR_CLASSES.get(code, ApiError)
    if cls in _RETRY_AFTER_CLASSES:
        return cls(message, retry_after_ms=retry_after_ms)
    return cls(message)


# ---------------------------------------------------------------------------
# field validation helpers
# ---------------------------------------------------------------------------


def _require(payload: Dict[str, Any], key: str, types, where: str):
    """Fetch a required, type-checked field or raise :class:`BadSchemaError`."""
    if key not in payload:
        raise BadSchemaError(f"{where} envelope is missing required field {key!r}")
    value = payload[key]
    if not isinstance(value, types):
        raise BadSchemaError(
            f"{where} field {key!r} has type {type(value).__name__}; "
            f"expected {getattr(types, '__name__', types)}"
        )
    # bool is an int subclass; reject it where an int is expected.
    if types is int and isinstance(value, bool):
        raise BadSchemaError(f"{where} field {key!r} must be an integer, not a bool")
    return value


def _optional(payload: Dict[str, Any], key: str, types, where: str, default=None):
    """Fetch an optional field, validating its type when present."""
    value = payload.get(key, default)
    if value is None:
        return None if default is None else default
    if not isinstance(value, types):
        raise BadSchemaError(
            f"{where} field {key!r} has type {type(value).__name__}; "
            f"expected {getattr(types, '__name__', types)} or null"
        )
    return value


def validate_deadline_ms(value: Any, where: str = "request") -> Optional[float]:
    """Validate a ``deadline_ms`` value (None, or a positive finite number).

    Shared by ``NormClient`` submit-time validation, envelope decoding and
    the server's admission controller, so a zero/negative deadline is
    rejected with the same typed :class:`BadSchemaError` everywhere --
    never silently entering the batcher to time out deep in a worker.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadSchemaError(
            f"{where} deadline_ms has type {type(value).__name__}; "
            f"expected a positive number of milliseconds or null"
        )
    deadline = float(value)
    if not deadline > 0 or deadline != deadline or deadline == float("inf"):
        raise BadSchemaError(
            f"{where} deadline_ms must be a positive finite number of "
            f"milliseconds, got {value!r}"
        )
    return deadline


def _optional_deadline(payload: Dict[str, Any], where: str) -> Optional[float]:
    """Decode-time ``deadline_ms`` validation for request envelopes."""
    return validate_deadline_ms(payload.get("deadline_ms"), where)


# ---------------------------------------------------------------------------
# tensor payloads
# ---------------------------------------------------------------------------


def _binary_data_view(data: Any, where: str = "tensor") -> memoryview:
    """A flat byte view over a ``binary`` tensor's data, validated.

    Accepts anything in ``_BINARY_DATA_TYPES`` (the decoder hands out
    memoryviews over the frame body or a shared-memory slab; in-process
    callers keep the ndarray itself).  Non-contiguous buffers fail closed
    with :class:`BadSchemaError` -- the wire form is always contiguous
    little-endian, so anything else is a malformed envelope.
    """
    if isinstance(data, np.ndarray):
        if not data.flags.c_contiguous:
            raise BadSchemaError(f"{where} binary data must be C-contiguous")
        if data.nbytes == 0:
            return memoryview(b"")
        return memoryview(data).cast("B")
    if not isinstance(data, _BINARY_DATA_TYPES):
        raise BadSchemaError(
            f"{where} binary data has type {type(data).__name__}; expected a "
            f"raw buffer (bytes, bytearray, memoryview or ndarray)"
        )
    try:
        view = memoryview(data)
        if view.nbytes == 0:
            return memoryview(b"")
        return view.cast("B")
    except TypeError as error:
        raise BadSchemaError(
            f"{where} binary data is not a contiguous buffer: {error}"
        ) from error


@dataclass(frozen=True)
class TensorPayload:
    """One ndarray encoded for the wire.

    ``base64`` carries the raw little-endian bytes (compact, exact);
    ``list`` carries nested JSON numbers (human-readable, and still exact
    for float64 because JSON round-trips Python floats via shortest-repr);
    ``binary`` (schema v3) carries the raw little-endian buffer itself --
    no text round trip, and :meth:`to_array` decodes it with
    ``np.frombuffer`` over a memoryview, i.e. zero copy.  Binary payloads
    only travel inside binary frames (:mod:`repro.api.framing`), over
    shared memory, or in-process.
    """

    dtype: str
    shape: Tuple[int, ...]
    encoding: str
    data: Any

    @classmethod
    def from_array(cls, array: np.ndarray, encoding: str = "base64") -> "TensorPayload":
        """Encode an ndarray (dtype preserved when supported, else float64)."""
        arr = np.asarray(array)
        name = arr.dtype.name
        if name not in TENSOR_DTYPES:
            arr = arr.astype(np.float64)
            name = "float64"
        if encoding not in TENSOR_ENCODINGS:
            raise ValueError(
                f"unknown tensor encoding {encoding!r}; expected one of {TENSOR_ENCODINGS}"
            )
        wire_dtype = np.dtype(TENSOR_DTYPES[name])
        if encoding == "base64":
            # ascontiguousarray is a no-op view when the array is already
            # contiguous little-endian, and .data exposes its buffer
            # without the tobytes() materialization -- one copy at most.
            contig = np.ascontiguousarray(arr, dtype=wire_dtype)
            data: Any = base64.b64encode(contig.data).decode("ascii")
        elif encoding == "binary":
            # Zero copy when the array is already contiguous little-endian;
            # the buffer travels out-of-band in the binary frame.
            data = np.ascontiguousarray(arr, dtype=wire_dtype)
        else:
            data = arr.tolist()
        return cls(dtype=name, shape=tuple(int(s) for s in arr.shape), encoding=encoding, data=data)

    def to_array(self) -> np.ndarray:
        """Decode back into an ndarray.

        ``base64`` and ``list`` payloads return a fresh writable array.
        ``binary`` payloads return a **zero-copy view** over the received
        buffer (read-only when the buffer is, e.g. a frame body); callers
        that need to mutate the result must copy.
        """
        wire_dtype = np.dtype(TENSOR_DTYPES[self.dtype])
        count = int(np.prod(self.shape)) if self.shape else 1
        if self.encoding == "binary":
            view = _binary_data_view(self.data)
            needed = count * wire_dtype.itemsize
            if view.nbytes != needed:
                raise BadSchemaError(
                    f"binary tensor payload carries {view.nbytes} bytes but shape "
                    f"{self.shape} with dtype {self.dtype} needs {needed}"
                )
            arr = np.frombuffer(view, dtype=wire_dtype).reshape(self.shape)
            native = np.dtype(self.dtype)
            if arr.dtype != native:
                # Big-endian host: one unavoidable byteswap copy.
                arr = arr.astype(native, copy=True)
            return arr
        if self.encoding == "base64":
            try:
                raw = base64.b64decode(self.data, validate=True)
            except (ValueError, TypeError) as error:
                raise BadSchemaError(
                    f"tensor payload data is not valid base64: {error}"
                ) from error
            if len(raw) != count * wire_dtype.itemsize:
                raise BadSchemaError(
                    f"tensor payload carries {len(raw)} bytes but shape {self.shape} "
                    f"with dtype {self.dtype} needs {count * wire_dtype.itemsize}"
                )
            arr = np.frombuffer(raw, dtype=wire_dtype).reshape(self.shape)
        else:
            try:
                arr = np.asarray(self.data, dtype=wire_dtype)
            except (ValueError, TypeError, OverflowError) as error:
                raise BadSchemaError(
                    f"tensor payload list does not decode as {self.dtype}: {error}"
                ) from error
            if arr.size == 0 and count == 0:
                # Nested-list JSON cannot express trailing empty dims (e.g.
                # shape (0, 2) lists as []); the shape field is authoritative.
                arr = arr.reshape(self.shape)
            if arr.shape != tuple(self.shape):
                raise BadSchemaError(
                    f"tensor payload list has shape {arr.shape}; envelope says {self.shape}"
                )
        # .astype makes the result writable and native-endian.
        return arr.astype(np.dtype(self.dtype), copy=True)

    @property
    def num_elements(self) -> int:
        """Number of scalar elements the payload describes."""
        return int(np.prod(self.shape)) if self.shape else 1

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-safe dictionary form."""
        return {
            "dtype": self.dtype,
            "shape": list(self.shape),
            "encoding": self.encoding,
            "data": self.data,
        }

    @classmethod
    def from_wire(cls, payload: Any, where: str = "tensor") -> "TensorPayload":
        """Validate and rebuild a payload from its wire form."""
        if not isinstance(payload, dict):
            raise BadSchemaError(f"{where} must be an object, not {type(payload).__name__}")
        dtype = _require(payload, "dtype", str, where)
        if dtype not in TENSOR_DTYPES:
            raise BadSchemaError(
                f"{where} dtype {dtype!r} is not supported; expected one of "
                f"{sorted(TENSOR_DTYPES)}"
            )
        shape = _require(payload, "shape", list, where)
        if not all(isinstance(s, int) and not isinstance(s, bool) and s >= 0 for s in shape):
            raise BadSchemaError(f"{where} shape must be a list of non-negative integers")
        encoding = _require(payload, "encoding", str, where)
        if encoding not in TENSOR_ENCODINGS:
            raise BadSchemaError(
                f"{where} encoding {encoding!r} is not supported; expected one of "
                f"{TENSOR_ENCODINGS}"
            )
        if encoding == "binary":
            # JSON parsing can only yield str/list/int/... here; a real
            # binary frame's decoder resolves the buffer reference into a
            # memoryview before this runs.  Anything else fails closed.
            data = _require(payload, "data", _BINARY_DATA_TYPES, where)
            _binary_data_view(data, where)
            return cls(dtype=dtype, shape=tuple(shape), encoding=encoding, data=data)
        data = _require(payload, "data", (str, list), where)
        if encoding == "base64" and not isinstance(data, str):
            raise BadSchemaError(f"{where} base64 data must be a string")
        if encoding == "list" and not isinstance(data, list):
            raise BadSchemaError(f"{where} list data must be a list")
        return cls(dtype=dtype, shape=tuple(shape), encoding=encoding, data=data)


def _optional_tensor(
    payload: Dict[str, Any], key: str, where: str
) -> Optional[TensorPayload]:
    value = payload.get(key)
    if value is None:
        return None
    return TensorPayload.from_wire(value, where=f"{where}.{key}")


# ---------------------------------------------------------------------------
# binary-tensor envelope walks
# ---------------------------------------------------------------------------
#
# An envelope dictionary may carry binary tensors at any nesting depth
# (request tensors, bulk lists, response mean/isd triples, execute groups).
# The framing and transport layers locate and rewrite them with these
# generic copy-on-write walks, so new envelope shapes need no codec changes.


def is_binary_tensor_dict(obj: Any) -> bool:
    """Whether ``obj`` is the wire form of a ``binary``-encoded tensor."""
    return (
        isinstance(obj, dict)
        and obj.get("encoding") == "binary"
        and "dtype" in obj
        and "shape" in obj
        and "data" in obj
    )


def has_binary_tensors(payload: Any) -> bool:
    """Fast detection: does the envelope carry any binary tensor?"""
    if isinstance(payload, dict):
        if is_binary_tensor_dict(payload):
            return True
        return any(has_binary_tensors(value) for value in payload.values())
    if isinstance(payload, list):
        return any(has_binary_tensors(item) for item in payload)
    return False


def rewrite_binary_tensors(payload: Any, rewrite) -> Any:
    """Copy-on-write deep rewrite of every binary tensor dict.

    ``rewrite(tensor_dict) -> tensor_dict`` is applied to each binary
    tensor; untouched subtrees are shared with the input, so envelopes
    without binary tensors come back identical (``is``) and a fleet
    transport can safely send one payload to several replicas that each
    rewrite it differently.
    """
    if isinstance(payload, dict):
        if is_binary_tensor_dict(payload):
            return rewrite(payload)
        out = None
        for key, value in payload.items():
            new_value = rewrite_binary_tensors(value, rewrite)
            if new_value is not value:
                if out is None:
                    out = dict(payload)
                out[key] = new_value
        return payload if out is None else out
    if isinstance(payload, list):
        out = None
        for index, item in enumerate(payload):
            new_item = rewrite_binary_tensors(item, rewrite)
            if new_item is not item:
                if out is None:
                    out = list(payload)
                out[index] = new_item
        return payload if out is None else out
    return payload


def downgrade_binary_tensors(payload: Any) -> Any:
    """Rewrite every binary tensor into base64 (the v2-peer fallback).

    Copy-on-write: the input envelope is never mutated, and payloads with
    no binary tensors are returned as-is.  Transports call this when the
    negotiated schema version predates ``BINARY_WIRE_VERSION``.
    """

    def _to_base64(tensor: Dict[str, Any]) -> Dict[str, Any]:
        view = _binary_data_view(tensor["data"])
        downgraded = dict(tensor)
        downgraded["encoding"] = "base64"
        downgraded["data"] = base64.b64encode(view).decode("ascii")
        return downgraded

    return rewrite_binary_tensors(payload, _to_base64)


# ---------------------------------------------------------------------------
# request envelopes
# ---------------------------------------------------------------------------


def _base_wire(op: str, request_id: Optional[int], ok: Optional[bool] = None) -> Dict[str, Any]:
    wire: Dict[str, Any] = {"schema_version": SCHEMA_VERSION, "op": op}
    if request_id is not None:
        wire["request_id"] = request_id
    if ok is not None:
        wire["ok"] = ok
    return wire


@dataclass(frozen=True)
class NormalizeRequest:
    """Normalize one tensor with one layer of a calibrated model.

    ``deadline_ms`` is the caller's completion budget (milliseconds from
    server receipt); the admission controller sheds the request with
    :class:`OverloadedError` when the estimated queue wait already exceeds
    it.  ``None`` means no deadline.
    """

    op = "normalize"

    model: str
    tensor: TensorPayload
    layer_index: int = 0
    dataset: str = "default"
    reference: bool = False
    backend: str = "vectorized"
    accelerator: Optional[str] = None
    deadline_ms: Optional[float] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            model=self.model,
            layer_index=self.layer_index,
            dataset=self.dataset,
            reference=self.reference,
            backend=self.backend,
            accelerator=self.accelerator,
            tensor=self.tensor.to_wire(),
        )
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "NormalizeRequest":
        where = "normalize request"
        return cls(
            model=_require(payload, "model", str, where),
            tensor=TensorPayload.from_wire(_require(payload, "tensor", dict, where)),
            layer_index=_require(payload, "layer_index", int, where),
            dataset=_optional(payload, "dataset", str, where, default="default"),
            reference=bool(_optional(payload, "reference", bool, where, default=False)),
            backend=_optional(payload, "backend", str, where, default="vectorized"),
            accelerator=_optional(payload, "accelerator", str, where),
            deadline_ms=_optional_deadline(payload, where),
            request_id=_require(payload, "request_id", int, where),
        )


def _optional_degradation(payload: Dict[str, Any], where: str) -> int:
    """Decode the degradation stamp (absent on pre-chaos peers -> 0)."""
    level = _optional(payload, "degradation", int, where, default=0)
    if isinstance(level, bool) or level < 0:
        raise BadSchemaError(
            f"{where} degradation must be a non-negative integer, got {level!r}"
        )
    return int(level)


@dataclass(frozen=True)
class NormalizeResponse:
    """Result of one :class:`NormalizeRequest`.

    ``degradation`` stamps the fidelity level the server actually applied
    (0 = full fidelity as requested; see
    :mod:`repro.serving.degrade`).  Degraded responses are **always**
    stamped -- a degraded result is never silently substituted for a
    full-fidelity one.
    """

    op = "normalize"

    request_id: int
    tensor: TensorPayload
    mean: TensorPayload
    isd: TensorPayload
    was_predicted: bool
    was_subsampled: bool
    batch_size: int
    queue_wait: float
    batch_latency: float
    backend: str
    accelerator: Optional[str] = None
    degradation: int = 0

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            tensor=self.tensor.to_wire(),
            mean=self.mean.to_wire(),
            isd=self.isd.to_wire(),
            was_predicted=self.was_predicted,
            was_subsampled=self.was_subsampled,
            batch_size=self.batch_size,
            queue_wait=self.queue_wait,
            batch_latency=self.batch_latency,
            backend=self.backend,
            accelerator=self.accelerator,
            degradation=self.degradation,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "NormalizeResponse":
        where = "normalize response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            tensor=TensorPayload.from_wire(_require(payload, "tensor", dict, where)),
            mean=TensorPayload.from_wire(_require(payload, "mean", dict, where), "mean"),
            isd=TensorPayload.from_wire(_require(payload, "isd", dict, where), "isd"),
            was_predicted=bool(_require(payload, "was_predicted", bool, where)),
            was_subsampled=bool(_require(payload, "was_subsampled", bool, where)),
            batch_size=_require(payload, "batch_size", int, where),
            queue_wait=float(_require(payload, "queue_wait", (int, float), where)),
            batch_latency=float(_require(payload, "batch_latency", (int, float), where)),
            backend=_require(payload, "backend", str, where),
            accelerator=_optional(payload, "accelerator", str, where),
            degradation=_optional_degradation(payload, where),
        )


@dataclass(frozen=True)
class NormalizeResult:
    """One tensor's normalization result inside a bulk (or stream) response."""

    tensor: TensorPayload
    mean: TensorPayload
    isd: TensorPayload
    was_predicted: bool
    was_subsampled: bool
    batch_size: int
    queue_wait: float
    batch_latency: float
    degradation: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "tensor": self.tensor.to_wire(),
            "mean": self.mean.to_wire(),
            "isd": self.isd.to_wire(),
            "was_predicted": self.was_predicted,
            "was_subsampled": self.was_subsampled,
            "batch_size": self.batch_size,
            "queue_wait": self.queue_wait,
            "batch_latency": self.batch_latency,
            "degradation": self.degradation,
        }

    @classmethod
    def from_wire(cls, payload: Any, where: str = "bulk item") -> "NormalizeResult":
        if not isinstance(payload, dict):
            raise BadSchemaError(f"{where} must be an object, not {type(payload).__name__}")
        return cls(
            tensor=TensorPayload.from_wire(_require(payload, "tensor", dict, where)),
            mean=TensorPayload.from_wire(_require(payload, "mean", dict, where), "mean"),
            isd=TensorPayload.from_wire(_require(payload, "isd", dict, where), "isd"),
            was_predicted=bool(_require(payload, "was_predicted", bool, where)),
            was_subsampled=bool(_require(payload, "was_subsampled", bool, where)),
            batch_size=_require(payload, "batch_size", int, where),
            queue_wait=float(_require(payload, "queue_wait", (int, float), where)),
            batch_latency=float(_require(payload, "batch_latency", (int, float), where)),
            degradation=_optional_degradation(payload, where),
        )


@dataclass(frozen=True)
class NormalizeBulkRequest:
    """Normalize many independent tensors of one layer in a single frame.

    The wire-level counterpart of ``NormalizationService.submit_many``: the
    whole list lands in the serving batcher at once, so a single remote
    client fills micro-batches by itself instead of relying on coalescing
    across clients (the v1 limitation the ROADMAP called out).
    """

    op = "normalize_bulk"

    model: str
    tensors: Tuple[TensorPayload, ...]
    layer_index: int = 0
    dataset: str = "default"
    reference: bool = False
    backend: str = "vectorized"
    accelerator: Optional[str] = None
    deadline_ms: Optional[float] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            model=self.model,
            layer_index=self.layer_index,
            dataset=self.dataset,
            reference=self.reference,
            backend=self.backend,
            accelerator=self.accelerator,
            tensors=[tensor.to_wire() for tensor in self.tensors],
        )
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "NormalizeBulkRequest":
        where = "normalize_bulk request"
        raw_tensors = _require(payload, "tensors", list, where)
        if not raw_tensors:
            raise BadSchemaError(f"{where} must carry at least one tensor")
        return cls(
            model=_require(payload, "model", str, where),
            tensors=tuple(
                TensorPayload.from_wire(item, where=f"{where}.tensors[{index}]")
                for index, item in enumerate(raw_tensors)
            ),
            layer_index=_require(payload, "layer_index", int, where),
            dataset=_optional(payload, "dataset", str, where, default="default"),
            reference=bool(_optional(payload, "reference", bool, where, default=False)),
            backend=_optional(payload, "backend", str, where, default="vectorized"),
            accelerator=_optional(payload, "accelerator", str, where),
            deadline_ms=_optional_deadline(payload, where),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class NormalizeBulkResponse:
    """Per-tensor results of one :class:`NormalizeBulkRequest`, in order."""

    op = "normalize_bulk"

    request_id: int
    results: Tuple[NormalizeResult, ...]
    backend: str
    accelerator: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            results=[result.to_wire() for result in self.results],
            backend=self.backend,
            accelerator=self.accelerator,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "NormalizeBulkResponse":
        where = "normalize_bulk response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            results=tuple(
                NormalizeResult.from_wire(item, where=f"{where}.results[{index}]")
                for index, item in enumerate(_require(payload, "results", list, where))
            ),
            backend=_require(payload, "backend", str, where),
            accelerator=_optional(payload, "accelerator", str, where),
        )


@dataclass(frozen=True)
class StreamChunkRequest:
    """One chunk of a client-side activation stream.

    Chunks of one ``stream_id`` carry consecutive ``seq`` numbers and an
    explicit ``final`` marker.  Each chunk is normalized independently (the
    serving contract for streamed token groups: a fresh activation context
    per chunk), so the server may execute and answer chunks out of order;
    the client reassembles by ``seq``.
    """

    op = "stream"

    model: str
    tensor: TensorPayload
    stream_id: int
    seq: int
    final: bool = False
    layer_index: int = 0
    dataset: str = "default"
    reference: bool = False
    backend: str = "vectorized"
    accelerator: Optional[str] = None
    deadline_ms: Optional[float] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            model=self.model,
            tensor=self.tensor.to_wire(),
            stream_id=self.stream_id,
            seq=self.seq,
            final=self.final,
            layer_index=self.layer_index,
            dataset=self.dataset,
            reference=self.reference,
            backend=self.backend,
            accelerator=self.accelerator,
        )
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "StreamChunkRequest":
        where = "stream request"
        seq = _require(payload, "seq", int, where)
        if seq < 0:
            raise BadSchemaError(f"{where} seq must be non-negative, got {seq}")
        return cls(
            model=_require(payload, "model", str, where),
            tensor=TensorPayload.from_wire(_require(payload, "tensor", dict, where)),
            stream_id=_require(payload, "stream_id", int, where),
            seq=seq,
            final=bool(_optional(payload, "final", bool, where, default=False)),
            layer_index=_require(payload, "layer_index", int, where),
            dataset=_optional(payload, "dataset", str, where, default="default"),
            reference=bool(_optional(payload, "reference", bool, where, default=False)),
            backend=_optional(payload, "backend", str, where, default="vectorized"),
            accelerator=_optional(payload, "accelerator", str, where),
            deadline_ms=_optional_deadline(payload, where),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class StreamChunkResponse:
    """The normalized chunk, tagged with its stream position."""

    op = "stream"

    request_id: int
    stream_id: int
    seq: int
    final: bool
    result: NormalizeResult
    backend: str
    accelerator: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            stream_id=self.stream_id,
            seq=self.seq,
            final=self.final,
            result=self.result.to_wire(),
            backend=self.backend,
            accelerator=self.accelerator,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "StreamChunkResponse":
        where = "stream response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            stream_id=_require(payload, "stream_id", int, where),
            seq=_require(payload, "seq", int, where),
            final=bool(_require(payload, "final", bool, where)),
            result=NormalizeResult.from_wire(
                _require(payload, "result", dict, where), where=f"{where}.result"
            ),
            backend=_require(payload, "backend", str, where),
            accelerator=_optional(payload, "accelerator", str, where),
        )


@dataclass(frozen=True)
class SpecRequest:
    """Fetch the serialized :class:`~repro.engine.spec.EngineSpec` of a layer."""

    op = "spec"

    model: str
    layer_index: int = 0
    dataset: str = "default"
    reference: bool = False
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            model=self.model,
            layer_index=self.layer_index,
            dataset=self.dataset,
            reference=self.reference,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SpecRequest":
        where = "spec request"
        return cls(
            model=_require(payload, "model", str, where),
            layer_index=_require(payload, "layer_index", int, where),
            dataset=_optional(payload, "dataset", str, where, default="default"),
            reference=bool(_optional(payload, "reference", bool, where, default=False)),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class SpecResponse:
    """The serialized engine spec plus the layer's affine parameters."""

    op = "spec"

    request_id: int
    spec: Dict[str, Any]
    gamma: TensorPayload
    beta: TensorPayload
    model: str
    layer_index: int
    num_layers: int

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            spec=dict(self.spec),
            gamma=self.gamma.to_wire(),
            beta=self.beta.to_wire(),
            model=self.model,
            layer_index=self.layer_index,
            num_layers=self.num_layers,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SpecResponse":
        where = "spec response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            spec=_require(payload, "spec", dict, where),
            gamma=TensorPayload.from_wire(_require(payload, "gamma", dict, where), "gamma"),
            beta=TensorPayload.from_wire(_require(payload, "beta", dict, where), "beta"),
            model=_require(payload, "model", str, where),
            layer_index=_require(payload, "layer_index", int, where),
            num_layers=_require(payload, "num_layers", int, where),
        )


@dataclass(frozen=True)
class ExecuteSpecRequest:
    """Execute a shipped engine spec over stacked rows (the `remote` backend).

    This is the ROADMAP's "ship the serialized ``EngineSpec`` to another
    process over the serving protocol": the client serializes the compiled
    plan (spec + affine parameters) and the server rebuilds and runs it,
    with no model/calibration state required on the server for this op.
    """

    op = "execute"

    spec: Dict[str, Any]
    rows: TensorPayload
    gamma: Optional[TensorPayload] = None
    beta: Optional[TensorPayload] = None
    segment_starts: Optional[TensorPayload] = None
    anchor_isd: Optional[TensorPayload] = None
    backend: str = "vectorized"
    deadline_ms: Optional[float] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            spec=dict(self.spec),
            rows=self.rows.to_wire(),
            gamma=None if self.gamma is None else self.gamma.to_wire(),
            beta=None if self.beta is None else self.beta.to_wire(),
            segment_starts=(
                None if self.segment_starts is None else self.segment_starts.to_wire()
            ),
            anchor_isd=None if self.anchor_isd is None else self.anchor_isd.to_wire(),
            backend=self.backend,
        )
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ExecuteSpecRequest":
        where = "execute request"
        return cls(
            spec=_require(payload, "spec", dict, where),
            rows=TensorPayload.from_wire(_require(payload, "rows", dict, where), "rows"),
            gamma=_optional_tensor(payload, "gamma", where),
            beta=_optional_tensor(payload, "beta", where),
            segment_starts=_optional_tensor(payload, "segment_starts", where),
            anchor_isd=_optional_tensor(payload, "anchor_isd", where),
            backend=_optional(payload, "backend", str, where, default="vectorized"),
            deadline_ms=_optional_deadline(payload, where),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class ExecuteSpecResponse:
    """``(output, mean, isd)`` of one executed spec."""

    op = "execute"

    request_id: int
    output: TensorPayload
    mean: TensorPayload
    isd: TensorPayload
    backend: str

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            output=self.output.to_wire(),
            mean=self.mean.to_wire(),
            isd=self.isd.to_wire(),
            backend=self.backend,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ExecuteSpecResponse":
        where = "execute response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            output=TensorPayload.from_wire(_require(payload, "output", dict, where), "output"),
            mean=TensorPayload.from_wire(_require(payload, "mean", dict, where), "mean"),
            isd=TensorPayload.from_wire(_require(payload, "isd", dict, where), "isd"),
            backend=_require(payload, "backend", str, where),
        )


@dataclass(frozen=True)
class ExecuteGroup:
    """One row-group of a bulk spec execution (rows + per-group metadata)."""

    rows: TensorPayload
    segment_starts: Optional[TensorPayload] = None
    anchor_isd: Optional[TensorPayload] = None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "rows": self.rows.to_wire(),
            "segment_starts": (
                None if self.segment_starts is None else self.segment_starts.to_wire()
            ),
            "anchor_isd": None if self.anchor_isd is None else self.anchor_isd.to_wire(),
        }

    @classmethod
    def from_wire(cls, payload: Any, where: str = "execute group") -> "ExecuteGroup":
        if not isinstance(payload, dict):
            raise BadSchemaError(f"{where} must be an object, not {type(payload).__name__}")
        return cls(
            rows=TensorPayload.from_wire(_require(payload, "rows", dict, where), "rows"),
            segment_starts=_optional_tensor(payload, "segment_starts", where),
            anchor_isd=_optional_tensor(payload, "anchor_isd", where),
        )


@dataclass(frozen=True)
class ExecuteResult:
    """``(output, mean, isd)`` of one executed row-group."""

    output: TensorPayload
    mean: TensorPayload
    isd: TensorPayload

    def to_wire(self) -> Dict[str, Any]:
        return {
            "output": self.output.to_wire(),
            "mean": self.mean.to_wire(),
            "isd": self.isd.to_wire(),
        }

    @classmethod
    def from_wire(cls, payload: Any, where: str = "execute result") -> "ExecuteResult":
        if not isinstance(payload, dict):
            raise BadSchemaError(f"{where} must be an object, not {type(payload).__name__}")
        return cls(
            output=TensorPayload.from_wire(_require(payload, "output", dict, where), "output"),
            mean=TensorPayload.from_wire(_require(payload, "mean", dict, where), "mean"),
            isd=TensorPayload.from_wire(_require(payload, "isd", dict, where), "isd"),
        )


@dataclass(frozen=True)
class ExecuteBulkRequest:
    """Execute one shipped spec over many row-groups in a single frame.

    The bulk form of :class:`ExecuteSpecRequest`: the spec and affine
    parameters travel (and compile server-side) once, and every group runs
    under a single engine-lock acquisition.  The ``remote`` engine backend's
    ``run_many`` rides this op.
    """

    op = "execute_bulk"

    spec: Dict[str, Any]
    groups: Tuple[ExecuteGroup, ...]
    gamma: Optional[TensorPayload] = None
    beta: Optional[TensorPayload] = None
    backend: str = "vectorized"
    deadline_ms: Optional[float] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            spec=dict(self.spec),
            groups=[group.to_wire() for group in self.groups],
            gamma=None if self.gamma is None else self.gamma.to_wire(),
            beta=None if self.beta is None else self.beta.to_wire(),
            backend=self.backend,
        )
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ExecuteBulkRequest":
        where = "execute_bulk request"
        raw_groups = _require(payload, "groups", list, where)
        if not raw_groups:
            raise BadSchemaError(f"{where} must carry at least one row-group")
        return cls(
            spec=_require(payload, "spec", dict, where),
            groups=tuple(
                ExecuteGroup.from_wire(item, where=f"{where}.groups[{index}]")
                for index, item in enumerate(raw_groups)
            ),
            gamma=_optional_tensor(payload, "gamma", where),
            beta=_optional_tensor(payload, "beta", where),
            backend=_optional(payload, "backend", str, where, default="vectorized"),
            deadline_ms=_optional_deadline(payload, where),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class ExecuteBulkResponse:
    """Per-group results of one :class:`ExecuteBulkRequest`, in order."""

    op = "execute_bulk"

    request_id: int
    results: Tuple[ExecuteResult, ...]
    backend: str

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            results=[result.to_wire() for result in self.results],
            backend=self.backend,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ExecuteBulkResponse":
        where = "execute_bulk response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            results=tuple(
                ExecuteResult.from_wire(item, where=f"{where}.results[{index}]")
                for index, item in enumerate(_require(payload, "results", list, where))
            ),
            backend=_require(payload, "backend", str, where),
        )


@dataclass(frozen=True)
class HelloRequest:
    """Schema-version negotiation opener.

    The one envelope parsed *leniently* on the version field: the whole
    point is to discover a common version, so the server accepts a hello
    whose ``schema_version`` it does not speak and answers (or rejects)
    based on the advertised range instead.

    ``token`` optionally carries a tenant bearer token (:mod:`repro.tenancy`):
    the server resolves it with a constant-time compare and stamps the
    connection with the tenant's context.  Absent on anonymous connections
    and ignored by pre-tenancy servers, so the field is version-compatible.
    """

    op = "hello"

    min_schema_version: int = MIN_SCHEMA_VERSION
    max_schema_version: int = SCHEMA_VERSION
    client: str = "repro.api"
    token: Optional[str] = None
    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id)
        wire.update(
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
            client=self.client,
        )
        if self.token is not None:
            wire["token"] = self.token
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "HelloRequest":
        where = "hello request"
        return cls(
            min_schema_version=_require(payload, "min_schema_version", int, where),
            max_schema_version=_require(payload, "max_schema_version", int, where),
            client=_optional(payload, "client", str, where, default="repro.api"),
            token=_optional(payload, "token", str, where),
            request_id=_require(payload, "request_id", int, where),
        )


@dataclass(frozen=True)
class HelloResponse:
    """The server's advertised range and the negotiated version."""

    op = "hello"

    request_id: int
    schema_version_chosen: int
    min_schema_version: int
    max_schema_version: int
    backends: List[str] = field(default_factory=list)

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            schema_version_chosen=self.schema_version_chosen,
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
            backends=list(self.backends),
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "HelloResponse":
        where = "hello response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            schema_version_chosen=_require(payload, "schema_version_chosen", int, where),
            min_schema_version=_require(payload, "min_schema_version", int, where),
            max_schema_version=_require(payload, "max_schema_version", int, where),
            backends=list(_optional(payload, "backends", list, where, default=[])),
        )


@dataclass(frozen=True)
class PingRequest:
    """Liveness / capability probe."""

    op = "ping"

    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        return _base_wire(self.op, self.request_id)

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "PingRequest":
        return cls(request_id=_require(payload, "request_id", int, "ping request"))


@dataclass(frozen=True)
class PingResponse:
    """Server capabilities: schema-version range, backends and models."""

    op = "ping"

    request_id: int
    backends: List[str]
    models: Optional[List[str]] = None
    min_schema_version: int = MIN_SCHEMA_VERSION
    max_schema_version: int = SCHEMA_VERSION

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(
            backends=list(self.backends),
            models=self.models,
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
        )
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "PingResponse":
        where = "ping response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            backends=list(_require(payload, "backends", list, where)),
            models=_optional(payload, "models", list, where),
            min_schema_version=_optional(
                payload, "min_schema_version", int, where, default=MIN_SCHEMA_VERSION
            ),
            max_schema_version=_optional(
                payload, "max_schema_version", int, where, default=SCHEMA_VERSION
            ),
        )


@dataclass(frozen=True)
class TelemetryRequest:
    """Fetch the server's serving-telemetry snapshot."""

    op = "telemetry"

    request_id: int = field(default_factory=next_request_id)

    def to_wire(self) -> Dict[str, Any]:
        return _base_wire(self.op, self.request_id)

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "TelemetryRequest":
        return cls(request_id=_require(payload, "request_id", int, "telemetry request"))


@dataclass(frozen=True)
class TelemetryResponse:
    """Serving telemetry plus registry state, as plain JSON-safe dicts."""

    op = "telemetry"

    request_id: int
    telemetry: Dict[str, Any]
    registry: Dict[str, Any]

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=True)
        wire.update(telemetry=self.telemetry, registry=self.registry)
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "TelemetryResponse":
        where = "telemetry response"
        return cls(
            request_id=_require(payload, "request_id", int, where),
            telemetry=_require(payload, "telemetry", dict, where),
            registry=_require(payload, "registry", dict, where),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A failed request: taxonomy code plus a human-readable message.

    ``retry_after_ms`` rides along for ``overloaded`` rejections: the
    server's estimate of when capacity frees up, which retrying clients
    honor as their backoff floor.
    """

    op = "error"

    code: str
    message: str
    request_id: Optional[int] = None
    retry_after_ms: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        wire = _base_wire(self.op, self.request_id, ok=False)
        wire["error"] = {"code": self.code, "message": self.message}
        if self.retry_after_ms is not None:
            wire["error"]["retry_after_ms"] = self.retry_after_ms
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ErrorResponse":
        where = "error response"
        error = _require(payload, "error", dict, where)
        retry_after = _optional(error, "retry_after_ms", (int, float), where)
        return cls(
            code=_require(error, "code", str, where),
            message=_require(error, "message", str, where),
            request_id=_optional(payload, "request_id", int, where),
            retry_after_ms=None if retry_after is None else float(retry_after),
        )

    @classmethod
    def from_exception(
        cls, error: BaseException, request_id: Optional[int] = None
    ) -> "ErrorResponse":
        """Wrap an exception (``ApiError`` keeps its code; others → internal)."""
        if isinstance(error, ApiError):
            retry_after = getattr(error, "retry_after_ms", None)
            return cls(
                code=error.code,
                message=str(error),
                request_id=request_id,
                retry_after_ms=None if retry_after is None else float(retry_after),
            )
        return cls(
            code="internal",
            message=f"{type(error).__name__}: {error}",
            request_id=request_id,
        )

    def raise_(self) -> None:
        """Raise the taxonomy exception this envelope describes."""
        raise error_for_code(self.code, self.message, self.retry_after_ms)


# ---------------------------------------------------------------------------
# envelope parsing
# ---------------------------------------------------------------------------

_REQUEST_TYPES = {
    cls.op: cls
    for cls in (
        NormalizeRequest,
        NormalizeBulkRequest,
        StreamChunkRequest,
        SpecRequest,
        ExecuteSpecRequest,
        ExecuteBulkRequest,
        HelloRequest,
        PingRequest,
        TelemetryRequest,
    )
}

_RESPONSE_TYPES = {
    cls.op: cls
    for cls in (
        NormalizeResponse,
        NormalizeBulkResponse,
        StreamChunkResponse,
        SpecResponse,
        ExecuteSpecResponse,
        ExecuteBulkResponse,
        HelloResponse,
        PingResponse,
        TelemetryResponse,
    )
}


def _check_version(payload: Any, where: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise BadSchemaError(f"{where} must be a JSON object, not {type(payload).__name__}")
    version = payload.get("schema_version")
    if (
        isinstance(version, bool)
        or not isinstance(version, int)
        or not MIN_SCHEMA_VERSION <= version <= SCHEMA_VERSION
    ):
        raise SchemaVersionError(
            f"{where} carries schema_version {version!r}; this peer speaks "
            f"versions {MIN_SCHEMA_VERSION}..{SCHEMA_VERSION}"
        )
    return payload


def parse_request(payload: Any):
    """Decode a request envelope, raising :class:`ApiError` members on misuse.

    ``hello`` requests skip the version-range check (the handshake must be
    parseable from peers this build does not otherwise speak with); every
    other op is additionally gated on the version that introduced it.
    """
    if isinstance(payload, dict) and payload.get("op") == "hello":
        return HelloRequest.from_wire(payload)
    payload = _check_version(payload, "request")
    op = _require(payload, "op", str, "request")
    request_type = _REQUEST_TYPES.get(op)
    if request_type is None:
        raise BadSchemaError(
            f"unknown op {op!r}; supported ops: {', '.join(sorted(_REQUEST_TYPES))}"
        )
    introduced = OP_MIN_VERSIONS.get(op, MIN_SCHEMA_VERSION)
    if payload["schema_version"] < introduced:
        raise BadSchemaError(
            f"op {op!r} needs schema_version >= {introduced}; the request "
            f"carries {payload['schema_version']}"
        )
    return request_type.from_wire(payload)


def parse_response(payload: Any, expected_op: str):
    """Decode a response envelope; a wire error raises its taxonomy exception."""
    payload = _check_version(payload, "response")
    if payload.get("ok") is False or payload.get("op") == "error":
        ErrorResponse.from_wire(payload).raise_()
    op = _require(payload, "op", str, "response")
    if op != expected_op:
        raise BadSchemaError(f"expected a {expected_op!r} response, got op {op!r}")
    return _RESPONSE_TYPES[expected_op].from_wire(payload)


def parse_hello_response(payload: Any) -> HelloResponse:
    """Decode a hello response with no version-range check (see hello)."""
    if not isinstance(payload, dict):
        raise BadSchemaError(
            f"hello response must be a JSON object, not {type(payload).__name__}"
        )
    if payload.get("ok") is False or payload.get("op") == "error":
        ErrorResponse.from_wire(payload).raise_()
    if payload.get("op") != "hello":
        raise BadSchemaError(f"expected a hello response, got op {payload.get('op')!r}")
    return HelloResponse.from_wire(payload)
