"""Client retry discipline: backoff, jitter, budget, idempotency.

Retries are the classic overload amplifier: a fleet that retries every
failure immediately turns a brown-out into an outage.  :class:`RetryPolicy`
centralises the rules both :class:`~repro.api.transport.SocketTransport`
and :class:`~repro.fleet.transport.FleetTransport` follow:

* **Exponential backoff with full jitter** -- attempt ``n`` sleeps a
  uniform random amount in ``[0, min(base * 2**n, max_backoff)]``, so a
  thundering herd decorrelates instead of synchronising on the retry
  clock.
* **Retry budget** -- a token bucket refilled as a *fraction of
  first-attempt traffic* (plus a small constant allowance so a quiet
  client can still retry at all).  When the budget is exhausted, failures
  surface immediately rather than adding retry load to an already
  overloaded server.
* **``retry_after_ms``** -- an :class:`~repro.api.envelopes.OverloadedError`
  carries the server's own estimate of when capacity frees up; the policy
  uses it as the backoff floor for that attempt.  A per-tenant
  :class:`~repro.api.envelopes.QuotaExceededError` is classified the same
  way by the transports (:data:`OVERLOADED`): nothing executed, so the
  request is retryable for every op, its ``retry_after_ms`` (the quota
  bucket's refill estimate) floors the backoff, and each resend still
  spends a retry-budget token.
* **Idempotency** -- ``execute`` / ``execute_bulk`` run caller-supplied
  specs and are treated as non-idempotent: after an *ambiguous* failure
  (the request may have been sent and executed -- e.g. the connection died
  while awaiting the reply) they are never retried.  Failures that happen
  strictly before the frame hit the wire are *clean* and retryable for
  every op.

The policy is deliberately transport-agnostic: callers classify each
failure (:data:`CLEAN` / :data:`AMBIGUOUS` / :data:`OVERLOADED`) and ask
:meth:`RetryPolicy.next_delay`; the policy answers ``None`` (give up) or a
sleep duration.  Both the RNG and the clock are injectable so tests and
:mod:`repro.chaos` replay deterministic schedules.
"""

from __future__ import annotations

import random
import threading
from typing import Optional

__all__ = [
    "AMBIGUOUS",
    "CLEAN",
    "NON_IDEMPOTENT_OPS",
    "OVERLOADED",
    "RetryPolicy",
]

#: The request provably never reached the server (dial refused, send
#: failed before the frame was written).  Safe to retry any op.
CLEAN = "clean"

#: The request may have been sent and executed (connection died while the
#: reply was pending).  Non-idempotent ops must not be retried.
AMBIGUOUS = "ambiguous"

#: The server explicitly shed the request before doing any work
#: (``OverloadedError`` or a per-tenant ``QuotaExceededError``).  Nothing
#: executed, so retrying is safe for every op -- after honoring
#: ``retry_after_ms``.
OVERLOADED = "overloaded"

#: Ops that execute caller-supplied specs; re-running one after an
#: ambiguous failure could execute it twice.
NON_IDEMPOTENT_OPS = frozenset({"execute", "execute_bulk"})


class RetryPolicy:
    """Shared retry discipline for socket and fleet transports.

    Thread-safe: one policy instance is typically shared by every
    connection of a pooled transport (the budget is a *per-client*
    property, not per-connection).
    """

    def __init__(
        self,
        max_attempts: int = 2,
        base_backoff: float = 0.025,
        max_backoff: float = 2.0,
        retry_budget: float = 0.2,
        min_budget_tokens: float = 4.0,
        rng: Optional[random.Random] = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_backoff < 0 or max_backoff < base_backoff:
            raise ValueError(
                f"need 0 <= base_backoff <= max_backoff, got "
                f"{base_backoff!r} / {max_backoff!r}"
            )
        if not 0.0 <= retry_budget <= 1.0:
            raise ValueError(f"retry_budget must be in [0, 1], got {retry_budget!r}")
        if min_budget_tokens < 0:
            raise ValueError(f"min_budget_tokens must be >= 0, got {min_budget_tokens!r}")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.retry_budget = retry_budget
        self.min_budget_tokens = min_budget_tokens
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        # Token bucket: first attempts deposit ``retry_budget`` tokens,
        # retries withdraw 1.  Capacity bounds burst retries.
        self._tokens = float(min_budget_tokens)
        self._capacity = max(float(min_budget_tokens), 32.0)
        # Telemetry counters.
        self._first_attempts = 0
        self._retries = 0
        self._budget_exhausted = 0
        self._ambiguous_refused = 0

    # -- accounting ----------------------------------------------------

    def record_attempt(self) -> None:
        """Note a first attempt: refills the retry budget fractionally."""
        with self._lock:
            self._first_attempts += 1
            self._tokens = min(self._capacity, self._tokens + self.retry_budget)

    def _try_spend_token(self) -> bool:
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._retries += 1
                return True
            self._budget_exhausted += 1
            return False

    # -- the decision --------------------------------------------------

    def next_delay(
        self,
        attempt: int,
        op: str,
        failure: str = CLEAN,
        retry_after_ms: Optional[float] = None,
    ) -> Optional[float]:
        """Decide whether attempt ``attempt`` (0-based) may be retried.

        Returns the backoff to sleep before the next attempt, or ``None``
        when the failure must surface to the caller.  ``failure`` is one
        of :data:`CLEAN` / :data:`AMBIGUOUS` / :data:`OVERLOADED`.
        """
        if attempt + 1 >= self.max_attempts:
            return None
        if failure == AMBIGUOUS and op in NON_IDEMPOTENT_OPS:
            # The spec may already have executed; running it again is the
            # one thing a retry layer must never do.
            with self._lock:
                self._ambiguous_refused += 1
            return None
        if not self._try_spend_token():
            return None
        ceiling = min(self.base_backoff * (2.0**attempt), self.max_backoff)
        delay = self._rng.uniform(0.0, ceiling)
        if failure == OVERLOADED and retry_after_ms is not None:
            # The server told us when capacity frees up; never come back
            # earlier than that (jitter only ever pushes later).
            delay = max(delay, min(retry_after_ms / 1000.0, self.max_backoff))
        return delay

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """Counters for telemetry (``retried`` sections, CLI tables)."""
        with self._lock:
            return {
                "first_attempts": self._first_attempts,
                "retries": self._retries,
                "budget_exhausted": self._budget_exhausted,
                "ambiguous_refused": self._ambiguous_refused,
                "budget_tokens": round(self._tokens, 3),
            }

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_backoff={self.base_backoff}, budget={self.retry_budget})"
        )
