"""Same-host shared-memory transport: tensor slabs out-of-band, frames on TCP.

Motivation: even with the v3 binary wire format every tensor byte still
crosses the kernel socket buffer twice (client ``sendall`` + server
``recv``).  On the same host that copy tax is avoidable: this module moves
tensor *buffers* through a pair of ``multiprocessing.shared_memory``
segments and keeps the existing socket for everything else -- envelopes,
demultiplexing, backpressure, errors all ride the normal frame protocol,
so every server-side policy (admission control, chaos fault gates,
degradation ladder) applies unchanged.

Topology (one pair per pooled connection, client is the creator/owner):

* **tx segment** -- client-allocated ring; the client stages request
  tensors here and frees each request's slabs when its reply arrives.
* **rx segment** -- client-created but server-allocated; the server stages
  response tensors here and the client frees them by sending a one-way
  ``shm_release`` control frame after copying the data out.

On the wire a staged tensor is a *slab descriptor*::

    {"encoding": "shm", "dtype": ..., "shape": ...,
     "data": {"offset": <byte offset>, "length": <byte length>}}

Descriptors exist only on the socket between the two translators: the
server rewrites inbound descriptors to zero-copy ``binary`` memoryviews
before the handler sees the envelope, and the client rewrites outbound
reply descriptors to owned ``bytes`` before the caller sees them --
``TensorPayload.from_wire`` never encounters ``encoding == "shm"``.

Fallback is graceful at every step: if the attach handshake is refused
(server flag, cross-host, no ``/dev/shm``), or a ring is momentarily full,
tensors simply stay inline in the v3 binary frame over TCP.

Caveat (documented, by design): a request abandoned by its waiter keeps
its tx slabs until the *reply* arrives or the connection closes -- slab
lifetime follows the wire exchange, not the caller's patience.
"""

from __future__ import annotations

import bisect
import os
import threading
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.envelopes import (
    BINARY_WIRE_VERSION,
    SCHEMA_VERSION,
    ApiError,
    BadSchemaError,
    TransportError,
    _binary_data_view,
    is_binary_tensor_dict,
)
from repro.api.framing import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.api.transport import (
    SocketTransport,
    _PoolConnection,
    register_transport,
)

#: Slab granularity: every allocation is rounded up to this, which also
#: guarantees every tensor buffer is alignment-friendly for numpy views.
SLAB_ALIGNMENT = 64

#: Default per-direction ring size (32 MiB each way).
DEFAULT_RING_BYTES = 32 * 1024 * 1024

#: Server-side sanity cap on an attach request's declared segment sizes.
MAX_SEGMENT_BYTES = 1 << 30


def _rewrite(obj: Any, match: Callable[[dict], bool], rewrite: Callable[[dict], Any]) -> Any:
    """Copy-on-write deep rewrite of matching dicts (mirrors envelopes walk)."""
    if isinstance(obj, dict):
        if match(obj):
            return rewrite(obj)
        out = None
        for key, value in obj.items():
            new = _rewrite(value, match, rewrite)
            if new is not value:
                if out is None:
                    out = dict(obj)
                out[key] = new
        return obj if out is None else out
    if isinstance(obj, list):
        out = None
        for index, value in enumerate(obj):
            new = _rewrite(value, match, rewrite)
            if new is not value:
                if out is None:
                    out = list(obj)
                out[index] = new
        return obj if out is None else out
    return obj


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    The creating side (the client) owns unlink; attaching still registers
    the name with this process's ``resource_tracker`` on CPython < 3.13,
    which then warns at exit about segments the client already unlinked.
    Unregister right away -- the server never unlinks what it did not make.
    """
    segment = shared_memory.SharedMemory(name=name, create=False)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close one segment handle, tolerating still-live zero-copy views.

    A request decoded zero-copy can outlive its connection (a service
    worker thread may still hold the view when the reader tears down).
    ``SharedMemory.close`` would raise ``BufferError`` -- and then raise it
    *again* from ``__del__`` during interpreter GC, where finalization
    order inside a cycle is arbitrary.  Instead: close the fd now and hand
    the mapping's lifetime to its exporters -- the ``mmap`` object is
    freed silently when the last view dies (or with the process).
    """
    try:
        segment.close()
    except BufferError:
        try:
            if segment._fd >= 0:  # noqa: SLF001 -- defusing the stdlib finalizer
                os.close(segment._fd)
                segment._fd = -1
        except OSError:
            pass
        segment._buf = None
        segment._mmap = None
    except OSError:
        pass


def _is_shm_descriptor(obj: dict) -> bool:
    return (
        obj.get("encoding") == "shm"
        and "dtype" in obj
        and "shape" in obj
        and "data" in obj
    )


def _descriptor_span(tensor: dict, segment_size: int) -> Tuple[int, int]:
    """Validate a slab descriptor's ``data`` and return ``(offset, length)``."""
    data = tensor.get("data")
    if not isinstance(data, dict):
        raise BadSchemaError("shm tensor 'data' must be a slab descriptor object")
    offset = data.get("offset")
    length = data.get("length")
    for name, value in (("offset", offset), ("length", length)):
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise BadSchemaError(
                f"shm slab descriptor field '{name}' must be a non-negative integer"
            )
    if offset + length > segment_size:
        raise BadSchemaError(
            f"shm slab [{offset}, {offset + length}) exceeds the "
            f"{segment_size}-byte shared segment"
        )
    return offset, length


class SlabRing:
    """Thread-safe first-fit slab allocator over one shared-memory segment.

    Keeps a sorted free list of ``(offset, length)`` spans; ``free``
    coalesces with both neighbours so long-lived rings do not fragment
    into confetti.  Allocation failure returns ``None`` (callers fall
    back to inline binary frames) -- it never raises.
    """

    def __init__(self, size: int, alignment: int = SLAB_ALIGNMENT):
        if size < alignment:
            raise ValueError(f"ring size {size} is smaller than one {alignment}-byte slab")
        self.size = size
        self.alignment = alignment
        self._lock = threading.Lock()
        self._free: List[Tuple[int, int]] = [(0, size)]
        self._allocated: Dict[int, int] = {}

    def alloc(self, length: int) -> Optional[int]:
        """Reserve ``length`` bytes; returns the slab offset or ``None``."""
        padded = -(-max(length, 1) // self.alignment) * self.alignment
        with self._lock:
            for index, (offset, span) in enumerate(self._free):
                if span >= padded:
                    if span == padded:
                        del self._free[index]
                    else:
                        self._free[index] = (offset + padded, span - padded)
                    self._allocated[offset] = padded
                    return offset
        return None

    def free(self, offset: int) -> bool:
        """Release the slab at ``offset``; unknown offsets are ignored."""
        with self._lock:
            padded = self._allocated.pop(offset, None)
            if padded is None:
                return False
            index = bisect.bisect_left(self._free, (offset, 0))
            if index < len(self._free) and offset + padded == self._free[index][0]:
                padded += self._free[index][1]
                del self._free[index]
            if index > 0:
                prev_offset, prev_span = self._free[index - 1]
                if prev_offset + prev_span == offset:
                    offset, padded = prev_offset, prev_span + padded
                    del self._free[index - 1]
                    index -= 1
            self._free.insert(index, (offset, padded))
            return True

    @property
    def bytes_in_use(self) -> int:
        with self._lock:
            return sum(self._allocated.values())

    @property
    def slabs_in_use(self) -> int:
        with self._lock:
            return len(self._allocated)


def _stage_tensors(
    payload: Dict[str, Any],
    ring: SlabRing,
    buffer: memoryview,
    staged: List[int],
) -> Dict[str, Any]:
    """Move every binary tensor of ``payload`` into ring slabs (best effort).

    Tensors that do not fit (ring momentarily full) stay inline -- a mixed
    envelope is legal and resolves tensor-by-tensor on the other side.
    Offsets of every slab taken are appended to ``staged`` so the caller
    can reclaim them.
    """

    def stage(tensor: dict) -> dict:
        try:
            view = _binary_data_view(tensor["data"])
        except ApiError:
            return tensor  # malformed: let the normal decode path report it
        offset = ring.alloc(len(view))
        if offset is None:
            return tensor  # ring full: keep the tensor inline in the frame
        buffer[offset : offset + len(view)] = view
        staged.append(offset)
        return {
            "encoding": "shm",
            "dtype": tensor["dtype"],
            "shape": tensor["shape"],
            "data": {"offset": offset, "length": len(view)},
        }

    return _rewrite(payload, is_binary_tensor_dict, stage)


class ServerShmSession:
    """Server side of one connection's shared-memory session.

    Attaches (never creates, never unlinks) the client's segment pair,
    rewrites inbound slab descriptors to zero-copy memoryview tensors,
    and stages outbound response tensors into the rx ring it allocates.
    """

    def __init__(self, tx: shared_memory.SharedMemory, rx: shared_memory.SharedMemory,
                 tx_size: int, rx_size: int):
        self._tx = tx
        self._rx = rx
        self._tx_size = tx_size
        self._rx_size = rx_size
        self._ring = SlabRing(rx_size)
        self._closed = False

    @classmethod
    def attach(cls, payload: Dict[str, Any]) -> "ServerShmSession":
        """Attach to the segment pair named in an ``shm_attach`` envelope."""
        sizes = {}
        names = {}
        for key in ("tx", "rx"):
            entry = payload.get(key)
            if not isinstance(entry, dict):
                raise BadSchemaError(f"shm_attach missing segment descriptor '{key}'")
            name = entry.get("name")
            size = entry.get("size")
            if not isinstance(name, str) or not name:
                raise BadSchemaError(f"shm_attach '{key}.name' must be a non-empty string")
            if isinstance(size, bool) or not isinstance(size, int):
                raise BadSchemaError(f"shm_attach '{key}.size' must be an integer")
            if not SLAB_ALIGNMENT <= size <= MAX_SEGMENT_BYTES:
                raise BadSchemaError(
                    f"shm_attach '{key}.size' of {size} bytes is outside the accepted "
                    f"[{SLAB_ALIGNMENT}, {MAX_SEGMENT_BYTES}] range"
                )
            names[key], sizes[key] = name, size
        tx = _attach_untracked(names["tx"])
        try:
            rx = _attach_untracked(names["rx"])
        except BaseException:
            tx.close()
            raise
        for segment, key in ((tx, "tx"), (rx, "rx")):
            if segment.size < sizes[key]:
                tx.close()
                rx.close()
                raise BadSchemaError(
                    f"shm segment '{key}' is {segment.size} bytes, smaller than the "
                    f"declared {sizes[key]}"
                )
        return cls(tx, rx, sizes["tx"], sizes["rx"])

    def resolve_inbound(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Rewrite request slab descriptors to zero-copy binary tensors."""
        if self._closed:
            raise TransportError("shared-memory session is closed")
        tx_size = self._tx_size
        buffer = self._tx.buf

        def resolve(tensor: dict) -> dict:
            offset, length = _descriptor_span(tensor, tx_size)
            out = dict(tensor)
            out["encoding"] = "binary"
            out["data"] = memoryview(buffer)[offset : offset + length]
            return out

        return _rewrite(payload, _is_shm_descriptor, resolve)

    def stage_outbound(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Move response tensors into the rx ring (inline fallback when full)."""
        if self._closed:
            return payload
        staged: List[int] = []
        return _stage_tensors(payload, self._ring, self._rx.buf, staged)

    def release(self, slabs: Any) -> int:
        """Free the rx slabs a client ``shm_release`` frame names."""
        if self._closed or not isinstance(slabs, list):
            return 0
        freed = 0
        for offset in slabs:
            if isinstance(offset, bool) or not isinstance(offset, int):
                continue
            freed += 1 if self._ring.free(offset) else 0
        return freed

    def close(self) -> None:
        """Detach from both segments (the client owns their lifetime)."""
        if self._closed:
            return
        self._closed = True
        for segment in (self._tx, self._rx):
            _close_segment(segment)


class _ClientShmSession:
    """Client side: owns the segment pair and the tx ring for one connection."""

    def __init__(self, ring_bytes: int):
        self.tx = shared_memory.SharedMemory(create=True, size=ring_bytes)
        try:
            self.rx = shared_memory.SharedMemory(create=True, size=ring_bytes)
        except BaseException:
            self.tx.close()
            self.tx.unlink()
            raise
        self.ring = SlabRing(ring_bytes)
        self._lock = threading.Lock()
        #: request_id -> tx slab offsets staged for that request; freed when
        #: the reply arrives (or wholesale on close), never on abandon.
        self._staged: Dict[int, List[int]] = {}
        self._closed = False

    def attach_envelope(self, version: int) -> Dict[str, Any]:
        return {
            "schema_version": version,
            "op": "shm_attach",
            "request_id": 0,
            "tx": {"name": self.tx.name, "size": self.tx.size},
            "rx": {"name": self.rx.name, "size": self.rx.size},
        }

    def stage_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Stage a request's binary tensors into tx slabs (best effort)."""
        if self._closed:
            return payload
        request_id = payload.get("request_id")
        if isinstance(request_id, bool) or not isinstance(request_id, int):
            return payload  # nothing to key reclamation on: keep it inline
        staged: List[int] = []
        rewritten = _stage_tensors(payload, self.ring, self.tx.buf, staged)
        if staged:
            with self._lock:
                self._staged.setdefault(request_id, []).extend(staged)
        return rewritten

    def translate_reply(
        self, envelope: Dict[str, Any], conn: _PoolConnection, version: int
    ) -> Dict[str, Any]:
        """Receiver-thread hook: reclaim tx slabs, copy rx slabs out, release.

        Runs for orphaned replies too (the sender abandoned the request) --
        that is precisely when reclamation matters most.
        """
        request_id = envelope.get("request_id")
        if not isinstance(request_id, bool) and isinstance(request_id, int):
            with self._lock:
                for offset in self._staged.pop(request_id, ()):  # tx reclaim
                    self.ring.free(offset)
        if self._closed:
            return envelope
        released: List[int] = []
        rx_size = self.rx.size
        buffer = self.rx.buf

        def copy_out(tensor: dict) -> dict:
            offset, length = _descriptor_span(tensor, rx_size)
            out = dict(tensor)
            out["encoding"] = "binary"
            # Owned copy: the slab is recycled the moment we release it.
            out["data"] = bytes(memoryview(buffer)[offset : offset + length])
            released.append(offset)
            return out

        try:
            envelope = _rewrite(envelope, _is_shm_descriptor, copy_out)
        finally:
            if released:
                self._send_release(conn, released, version)
        return envelope

    def _send_release(
        self, conn: _PoolConnection, offsets: List[int], version: int
    ) -> None:
        """One-way ``shm_release``; a lost release just leaks until close."""
        frame = {"schema_version": version, "op": "shm_release", "slabs": offsets}
        try:
            with conn._send_lock:
                send_frame(conn.sock, frame, conn.max_frame_bytes)
        except (ApiError, OSError):
            pass

    def close(self) -> None:
        """Destroy both segments (the client created them, it unlinks them)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._staged.clear()
        for segment in (self.tx, self.rx):
            _close_segment(segment)
            try:
                # Re-register first: when the server shares this process (the
                # in-process parity experiment), its attach unregistered the
                # name, and unlink's own unregister would make the tracker
                # daemon log a KeyError.  Registering is set-idempotent.
                from multiprocessing import resource_tracker

                resource_tracker.register(segment._name, "shared_memory")
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass


class SharedMemoryTransport(SocketTransport):
    """`SocketTransport` that moves tensor payloads through shared memory.

    Same constructor, plus ``ring_bytes`` (per-direction segment size).
    The attach handshake is opportunistic: when the server refuses (flag
    off, different host, pre-v3 peer) the transport behaves exactly like a
    plain binary-frame :class:`SocketTransport` -- same-host placement is
    an optimization, never a correctness requirement.
    """

    def __init__(self, *args, ring_bytes: int = DEFAULT_RING_BYTES, **kwargs):
        super().__init__(*args, **kwargs)
        if ring_bytes < SLAB_ALIGNMENT:
            raise ValueError(
                f"ring_bytes must be at least {SLAB_ALIGNMENT}, got {ring_bytes}"
            )
        self.ring_bytes = ring_bytes
        self._shm_lock = threading.Lock()
        self._sessions: Dict[_PoolConnection, _ClientShmSession] = {}
        #: Connections whose attach was refused (gauge for stats/tests).
        self._shm_refusals = 0

    # -- attach handshake ----------------------------------------------------

    def _after_handshake(self, conn: _PoolConnection) -> None:
        if (
            self.negotiated_version is not None
            and self.negotiated_version < BINARY_WIRE_VERSION
        ):
            return  # pre-binary peer: descriptors would be gibberish to it
        version = self.negotiated_version or SCHEMA_VERSION
        try:
            session = _ClientShmSession(self.ring_bytes)
        except (OSError, ValueError):
            return  # no shared-memory facility here: stay on plain TCP
        accepted = False
        try:
            conn.sock.settimeout(self.connect_timeout)
            try:
                send_frame(conn.sock, session.attach_envelope(version), self.max_frame_bytes)
                ack = recv_frame(conn.sock, self.max_frame_bytes)
            finally:
                conn.sock.settimeout(None)
            accepted = (
                isinstance(ack, dict)
                and ack.get("op") == "shm_attach"
                and ack.get("accepted") is True
            )
        except (ApiError, OSError):
            accepted = False
        if not accepted:
            session.close()
            with self._shm_lock:
                self._shm_refusals += 1
            return
        with self._shm_lock:
            self._sessions[conn] = session
        conn.translate = lambda envelope: session.translate_reply(envelope, conn, version)
        conn.on_close = lambda: self._drop_session(conn)

    def _drop_session(self, conn: _PoolConnection) -> None:
        with self._shm_lock:
            session = self._sessions.pop(conn, None)
        if session is not None:
            session.close()

    # -- per-send staging ----------------------------------------------------

    def _prepare(self, payload: Dict[str, Any], conn: _PoolConnection) -> Dict[str, Any]:
        payload = super()._prepare(payload, conn)
        with self._shm_lock:
            session = self._sessions.get(conn)
        if session is not None:
            payload = session.stage_request(payload)
        return payload

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        with self._shm_lock:
            sessions = list(self._sessions.values())
            refusals = self._shm_refusals
        base["shm"] = {
            "sessions": len(sessions),
            "refusals": refusals,
            "ring_bytes": self.ring_bytes,
            "tx_bytes_in_use": sum(s.ring.bytes_in_use for s in sessions),
            "tx_slabs_in_use": sum(s.ring.slabs_in_use for s in sessions),
        }
        return base

    def close(self) -> None:
        super().close()  # closes connections -> on_close drops their sessions
        with self._shm_lock:
            sessions, self._sessions = list(self._sessions.values()), {}
        for session in sessions:
            session.close()


register_transport("shm", SharedMemoryTransport)
