"""`NormServer`: the normalization service behind a TCP socket.

A thin, dependency-free network front with **pipelined** request handling:
one listener thread accepts connections; one reader thread per connection
decodes length-prefixed JSON frames incrementally
(:class:`~repro.api.framing.FrameDecoder`, so a burst of pipelined frames
costs one ``recv``) and hands each envelope to a shared worker pool.
Workers run the :class:`~repro.api.handler.ApiHandler` and write their
response frame back under the connection's send lock -- so a connection may
have many requests in flight and responses go out **in completion order**,
not arrival order (clients demultiplex by ``request_id``).  Concurrent
in-flight ``normalize`` requests coalesce in the service's micro-batcher,
which is where pipelining's throughput win comes from: a single connection
can fill a whole batch by itself.

Per-connection in-flight is bounded (``max_inflight``): the reader blocks
once the bound is reached, which turns into TCP backpressure on the client
instead of unbounded server-side buffering.

Shutdown is cooperative and clean: :meth:`close` stops the listener, shuts
down every live connection (unblocking their reads), drains the worker
pool, joins the threads and leaves the wrapped service untouched (the
owner closes it).
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.api.admission import WORK_OPS, AdmissionController, PreDecodeGate
from repro.api.envelopes import (
    SCHEMA_VERSION,
    ApiError,
    AuthenticationError,
    ErrorResponse,
    OverloadedError,
    TransportError,
)
from repro.api.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_payload,
    encode_frame,
    peek_payload,
)
from repro.api.handler import ApiHandler
from repro.tenancy.quota import estimate_rows

#: Transport-level control ops of the shared-memory tier: handled inline by
#: the reader thread, never parsed as API requests, never admitted as work.
SHM_CONTROL_OPS = ("shm_attach", "shm_release")


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (host may be empty for all interfaces)."""
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host or "0.0.0.0", int(port)


def shed_error_envelope(
    payload: dict, error: BaseException, min_version: int, max_version: int
) -> dict:
    """An error envelope for a frame rejected before reaching the handler.

    Mirrors the handler's request_id / schema_version echo so shed
    responses demultiplex and parse exactly like handled ones.  Shared by
    both server cores so their rejection envelopes are bit-identical.
    """
    request_id = payload.get("request_id") if isinstance(payload, dict) else None
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        request_id = None
    envelope = ErrorResponse.from_exception(error, request_id).to_wire()
    if isinstance(payload, dict):
        version = payload.get("schema_version")
        if (
            not isinstance(version, bool)
            and isinstance(version, int)
            and min_version <= version <= max_version
        ):
            envelope["schema_version"] = version
    return envelope


def _applied_degradation(response: dict) -> Optional[int]:
    """The ``degradation`` stamp of a response envelope, wherever it lives.

    Single responses carry it at the top level, stream responses inside
    ``result``, bulk responses per item in ``results`` (all items of one
    bulk ran at one level -- the first is representative).
    """
    candidates = [response]
    result = response.get("result")
    if isinstance(result, dict):
        candidates.append(result)
    results = response.get("results")
    if isinstance(results, (list, tuple)) and results and isinstance(results[0], dict):
        candidates.append(results[0])
    for candidate in candidates:
        value = candidate.get("degradation")
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


class _Connection:
    """Per-connection pipelining state: send lock + in-flight bound."""

    __slots__ = (
        "sock",
        "conn_id",
        "send_lock",
        "inflight",
        "inflight_count",
        "peak_inflight",
        "frames",
        "backpressure_waits",
        "closed",
        "bytes_in",
        "bytes_out",
        "encoding",
        "shm",
        "tenant",
    )

    def __init__(self, sock: socket.socket, max_inflight: int, conn_id: int):
        self.sock = sock
        #: Stable per-server ordinal (1-based connection counter), so the
        #: telemetry's per-connection rows stay identifiable across snapshots.
        self.conn_id = conn_id
        self.send_lock = threading.Lock()
        #: Reader blocks acquiring once ``max_inflight`` requests are being
        #: handled -- backpressure instead of unbounded buffering.
        self.inflight = threading.BoundedSemaphore(max_inflight)
        self.inflight_count = 0
        self.peak_inflight = 0
        self.frames = 0
        #: Times the reader found the in-flight bound exhausted and had to
        #: block -- each one is a stall that became TCP backpressure.
        self.backpressure_waits = 0
        #: Set (and the fd closed) under ``send_lock``: a worker checking it
        #: under the same lock can never write into a reused fd number.
        self.closed = False
        #: Codec gauges: raw bytes read off / written to this socket (the
        #: reader owns ``bytes_in``; ``bytes_out`` mutates under the send
        #: lock), and the encoding tag of the traffic this connection
        #: carries ("json" until a binary frame or shm attach is seen).
        self.bytes_in = 0
        self.bytes_out = 0
        self.encoding = "json"
        #: Per-connection shared-memory session (None until the client
        #: sends ``shm_attach``); owned by the reader thread's lifecycle.
        self.shm = None
        #: :class:`~repro.tenancy.TenantContext` stamped by the hello
        #: handshake's bearer token (None until a hello arrives; anonymous
        #: connections stay None and are metered as "anonymous").  Written
        #: only by the reader thread, read by pooled workers.
        self.tenant = None


class NormServer:
    """Serve one :class:`NormalizationService` over the wire protocol.

    Parameters
    ----------
    service:
        The serving runtime to front (usually threaded, so concurrent
        in-flight requests coalesce into shared micro-batches).
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        construction).
    handler:
        Override the request handler (tests inject size limits or schema
        ranges).
    max_frame_bytes:
        Frame-size bound applied to every connection.
    workers:
        Size of the shared request-handling pool (the server-side
        pipelining depth across all connections).
    max_inflight:
        Per-connection bound on requests being handled concurrently.
    admission:
        The :class:`~repro.api.admission.AdmissionController` shedding
        work *before* decode when the queue is full or a request's
        ``deadline_ms`` cannot plausibly be met.  Defaults to a
        controller with ``max_queue_depth``; pass an instance to tune it.
    max_queue_depth:
        Queue bound of the default admission controller (ignored when
        ``admission`` is passed).
    ladder:
        Opt-in :class:`~repro.serving.degrade.DegradationLadder`: under
        sustained queue pressure, serving ops step down the paper's
        fidelity knobs instead of shedding, and every response is stamped
        with the level applied.  ``None`` (the default) disables
        degradation entirely.
    fault_gate:
        Opt-in server-side chaos hook (:class:`~repro.chaos.gate.FaultGate`):
        consulted once per received frame, it may delay, drop, corrupt or
        kill deterministically from a seeded
        :class:`~repro.chaos.plan.FaultPlan`.  ``None`` in production.
    tenancy:
        Opt-in :class:`~repro.tenancy.TenancyController`
        (``haan-serve --tenants``): hello tokens authenticate connections,
        per-tenant token buckets shed over-quota work in the reader thread
        *before* frame decode (sharing one
        :class:`~repro.api.admission.PreDecodeGate` with overload
        shedding), and every served request is metered into the tenant's
        cost ledger.  ``None`` (the default) serves anonymously and
        unmetered, exactly as before.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        handler: Optional[ApiHandler] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        workers: int = 8,
        max_inflight: int = 32,
        admission: Optional[AdmissionController] = None,
        max_queue_depth: int = 256,
        ladder=None,
        fault_gate=None,
        enable_shm: bool = True,
        tenancy=None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.service = service
        self.handler = handler if handler is not None else ApiHandler(service)
        self.max_frame_bytes = max_frame_bytes
        self.workers = workers
        self.max_inflight = max_inflight
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_queue_depth=max_queue_depth)
        )
        self.ladder = ladder
        self.fault_gate = fault_gate
        self.tenancy = tenancy
        #: The single pre-decode shedding gate every reader thread runs
        #: each peeked envelope through: tenant quota first, then overload.
        self.gate = PreDecodeGate(
            self.admission, None if tenancy is None else tenancy.quota_check
        )
        if tenancy is not None and getattr(service, "cost_observer", False) is None:
            # Wire the exact per-tenant cost split into the service's
            # batch executor (only when nothing else claimed the hook).
            service.cost_observer = tenancy.cost_observer
        #: Accept ``shm_attach`` requests (the same-host shared-memory
        #: transport).  When off, attach attempts are answered with a typed
        #: transport error and the client falls back to binary TCP.
        self.enable_shm = enable_shm
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._connections: Dict[socket.socket, _Connection] = {}
        self._threads: list = []
        self._accept_thread: Optional[threading.Thread] = None
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="haan-norm-worker"
        )
        self._closing = False
        self._draining = False
        self.requests_served = 0
        #: Wire/pipelining gauges (guarded by ``_lock``).
        self.connections_total = 0
        self.frames_received = 0
        self.peak_inflight = 0
        self.backpressure_waits = 0
        #: Codec totals folded in from connections that already closed;
        #: live connections contribute their own gauges at snapshot time.
        self._retired_bytes_in = 0
        self._retired_bytes_out = 0
        self._retired_frames_json = 0
        self._retired_frames_binary = 0
        #: Per-kind frame counters of live connections are read from their
        #: decoders at snapshot time via this registry (conn -> decoder).
        self._decoders: Dict[_Connection, FrameDecoder] = {}
        # Surface the wire gauges in the service's telemetry snapshot (and
        # therefore in the `telemetry` op and the haan-serve summary).
        attach = getattr(service.telemetry, "attach_section", None)
        if attach is not None:
            attach("wire", self.wire_snapshot)
            attach("admission", self.admission.snapshot)
            if self.ladder is not None:
                attach("degradation", self.ladder.snapshot)
            if self.tenancy is not None:
                attach("tenancy", self.tenancy.snapshot)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` the server is listening on."""
        return f"{self.host}:{self.port}"

    def start(self) -> "NormServer":
        """Start accepting connections in the background (idempotent)."""
        with self._lock:
            if self._closing:
                raise RuntimeError("server is closed and cannot be restarted")
            if self._accept_thread is not None:
                return self
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="haan-norm-server", daemon=True
            )
        self._accept_thread.start()
        return self

    def close(self, drain_timeout: float = 0.0) -> None:
        """Stop the listener, drop every connection, join all threads.

        ``drain_timeout`` > 0 performs a graceful drain first: the
        listener stops and new frames are refused, but frames already
        admitted keep executing and their response frames are flushed --
        for up to ``drain_timeout`` seconds, after which the shutdown
        proceeds unconditionally (the hard timeout).  The default (0)
        preserves the historical immediate shutdown; the ``haan-serve``
        SIGTERM path passes its ``--drain-timeout``.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._draining = drain_timeout > 0
        # shutdown() before close(): closing the fd alone does not wake a
        # thread blocked in accept() (the kernel socket would linger in
        # LISTEN and block a rebind of the port); shutdown does.  Some
        # platforms refuse to shut down a listening socket (ENOTCONN) --
        # wake the accept loop with a throwaway connection instead.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            try:
                with socket.create_connection((self.host, self.port), timeout=1.0):
                    pass
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        if drain_timeout > 0:
            # Graceful drain: wait for admitted in-flight frames to finish
            # (their responses flush through _try_send) before cutting the
            # sockets.  Readers refuse *new* frames once _closing is set,
            # so the in-flight count can only fall.
            deadline = time.monotonic() + drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    inflight = sum(
                        c.inflight_count for c in self._connections.values()
                    )
                if inflight == 0:
                    break
                time.sleep(0.01)
        with self._lock:
            connections = list(self._connections)
        # shutdown() only -- never close() from here: each reader thread
        # owns its fd's close (under the connection send lock), so a pooled
        # worker mid-send cannot race against fd reuse.  shutdown unblocks
        # the reader's recv, which then performs the locked close.
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)
        # After the readers exited no new work lands in the pool; drain what
        # is still executing so worker sends never race interpreter teardown.
        self._pool.shutdown(wait=True)
        # Swap the live wire-gauge provider for a frozen final snapshot:
        # the shutdown summary still reports the session's totals, but the
        # (possibly long-lived) service no longer pins this closed server.
        # A restarted server re-attaches its own live section.
        attach = getattr(self.service.telemetry, "attach_section", None)
        if attach is not None:
            final_snapshot = self.wire_snapshot()
            attach("wire", lambda: dict(final_snapshot))

    def __enter__(self) -> "NormServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- telemetry -----------------------------------------------------------

    def wire_snapshot(self) -> Dict[str, object]:
        """Pipelining/wire gauges for the telemetry snapshot.

        A **stable** section: the scalar keys of PR 5 keep their names, and
        the per-connection in-flight/backpressure gauges ride along under
        ``per_connection`` (one row per live connection, in accept order)
        plus the ``inflight_current`` / ``backpressure_waits`` aggregates --
        consumed by the ``haan-serve`` summary and the per-replica fleet
        table alike.
        """
        with self._lock:
            live = sorted(self._connections.values(), key=lambda c: c.conn_id)
            frames_json = self._retired_frames_json
            frames_binary = self._retired_frames_binary
            for c in live:
                decoder = self._decoders.get(c)
                if decoder is not None:
                    frames_json += decoder.frames_json
                    frames_binary += decoder.frames_binary
            return {
                "connections_total": self.connections_total,
                "connections_active": len(live),
                "frames_received": self.frames_received,
                "requests_served": self.requests_served,
                "peak_inflight": self.peak_inflight,
                "inflight_current": sum(c.inflight_count for c in live),
                "backpressure_waits": self.backpressure_waits,
                "workers": self.workers,
                "max_inflight": self.max_inflight,
                "bytes_received": self._retired_bytes_in + sum(c.bytes_in for c in live),
                "bytes_sent": self._retired_bytes_out + sum(c.bytes_out for c in live),
                "frames_json": frames_json,
                "frames_binary": frames_binary,
                "per_connection": [
                    {
                        "id": c.conn_id,
                        "inflight": c.inflight_count,
                        "peak_inflight": c.peak_inflight,
                        "frames": c.frames,
                        "backpressure_waits": c.backpressure_waits,
                        "bytes_in": c.bytes_in,
                        "bytes_out": c.bytes_out,
                        "encoding": c.encoding,
                    }
                    for c in live
                ],
            }

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _address = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Accepted sockets hold the port after close (FIN_WAIT) while a
            # client keeps its end open; mark them reusable so a restarted
            # server can rebind immediately (the reconnect contract).
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self.connections_total += 1
                connection = _Connection(conn, self.max_inflight, self.connections_total)
                self._connections[conn] = connection
                # Prune finished connection threads so a long-lived server
                # handling many short-lived clients does not accumulate one
                # dead Thread object per past connection.
                self._threads = [t for t in self._threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name="haan-norm-server-conn",
                    daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, connection: _Connection) -> None:
        sock = connection.sock
        # Raw framing: the decoder splits the byte stream into frame bodies
        # but defers payload decoding, so the shedding gate below can peek
        # a binary frame's JSON preamble without ever materializing its
        # tensor buffers -- a rejected request costs O(preamble), not
        # O(tensor bytes).
        decoder = FrameDecoder(self.max_frame_bytes, raw=True)
        with self._lock:
            self._decoders[connection] = decoder
        try:
            while True:
                try:
                    data = sock.recv(65536)
                except OSError:
                    return  # client went away (or server is closing)
                if not data:
                    return  # clean EOF
                connection.bytes_in += len(data)
                try:
                    frames = decoder.feed(data)
                except ApiError as error:
                    # Oversized or malformed frame: the stream cannot be
                    # resynchronized, so report once and drop the link.
                    self._try_send(connection, ErrorResponse.from_exception(error).to_wire())
                    return
                if frames and connection.shm is None and decoder.last_kind is not None:
                    # Tag the connection with the traffic it carries; an
                    # shm attach overrides this for good ("shm" sockets
                    # still exchange JSON control frames).
                    connection.encoding = decoder.last_kind
                for body in frames:
                    try:
                        # JSON frames decode fully here (the peek *is* the
                        # payload); binary frames yield only their preamble
                        # -- op, request_id, tensor shapes -- which is all
                        # the control plane below needs.
                        payload, is_binary = peek_payload(body)
                    except ApiError as error:
                        self._try_send(
                            connection, ErrorResponse.from_exception(error).to_wire()
                        )
                        return
                    if payload.get("op") in SHM_CONTROL_OPS:
                        # Transport-tier control: handled by the reader
                        # inline (attach/release touch only per-connection
                        # shm state), never admitted, never dispatched.
                        self._handle_shm_control(connection, payload)
                        continue
                    if self.fault_gate is not None:
                        # Server-side chaos: the gate decides per frame
                        # from its seeded plan.  Delay falls through to
                        # normal handling; drop/corrupt/kill short-circuit.
                        action = self.fault_gate.on_server_frame(payload)
                        if action is not None:
                            if action.delay_s > 0:
                                time.sleep(action.delay_s)
                            if action.kind == "drop":
                                continue
                            if action.kind == "corrupt":
                                self._send_raw(connection, action.data)
                                continue
                            if action.kind == "kill":
                                return
                    if self.tenancy is not None and payload.get("op") == "hello":
                        # Authenticate the connection from the hello's
                        # bearer token (reader-side: the handler never sees
                        # the connection).  An invalid token -- or a
                        # missing one under --require-auth -- answers the
                        # hello itself with a typed error, which fails the
                        # client's handshake.
                        token = payload.get("token")
                        try:
                            connection.tenant = self.tenancy.authenticate(
                                token if isinstance(token, str) else None
                            )
                        except ApiError as error:
                            self._try_send(
                                connection, self._error_envelope(payload, error)
                            )
                            continue
                    is_work = payload.get("op") in WORK_OPS
                    if (
                        is_work
                        and self.tenancy is not None
                        and self.tenancy.require_auth
                        and (connection.tenant is None or not connection.tenant.authenticated)
                    ):
                        # --require-auth: work never runs on a connection
                        # that has not presented a valid token (whether it
                        # skipped the hello or its hello was rejected).
                        self._try_send(
                            connection,
                            self._error_envelope(
                                payload,
                                AuthenticationError(
                                    "this server requires a tenant bearer token; "
                                    "reconnect with token=... / --token"
                                ),
                            ),
                        )
                        continue
                    # The shedding gate *before* any tensor decode: tenant
                    # quota first (rows classified from the peeked tensor
                    # shapes, bytes from the frame length), then overload
                    # admission -- both O(1) on the already-parsed peek.
                    # Shed requests answer in microseconds with a typed
                    # quota_exceeded / overloaded envelope.
                    try:
                        self.gate.check(
                            payload, tenant=connection.tenant, nbytes=len(body)
                        )
                    except (OverloadedError, ApiError) as error:
                        self._try_send(
                            connection, self._error_envelope(payload, error)
                        )
                        continue
                    # Blocks at max_inflight: backpressure, not buffering.
                    # The failed fast-path acquire is counted -- each miss
                    # is a reader stall the client felt as TCP backpressure.
                    if not connection.inflight.acquire(blocking=False):
                        with self._lock:
                            connection.backpressure_waits += 1
                            self.backpressure_waits += 1
                        connection.inflight.acquire()
                    with self._lock:
                        self.frames_received += 1
                        connection.frames += 1
                        connection.inflight_count += 1
                        if connection.inflight_count > connection.peak_inflight:
                            connection.peak_inflight = connection.inflight_count
                        if connection.inflight_count > self.peak_inflight:
                            self.peak_inflight = connection.inflight_count
                        closing = self._closing
                        draining = self._draining
                    if closing:
                        connection.inflight.release()
                        with self._lock:
                            connection.inflight_count -= 1
                        if is_work:
                            self.admission.complete()
                        if not draining:
                            # Immediate shutdown: stop reading; the dropped
                            # connection surfaces client-side as a
                            # TransportError, never a typed response racing
                            # the teardown.
                            return
                        # Draining: finish admitted frames, refuse new ones
                        # with a typed error instead of silently closing.
                        self._try_send(
                            connection,
                            self._error_envelope(
                                payload,
                                OverloadedError(
                                    "server is draining and accepts no new work"
                                ),
                            ),
                        )
                        continue
                    if is_binary:
                        # Admitted: only now pay for the tensor buffers.
                        try:
                            payload = decode_payload(body)
                        except ApiError as error:
                            connection.inflight.release()
                            with self._lock:
                                connection.inflight_count -= 1
                            if is_work:
                                self.admission.complete()
                            self._try_send(
                                connection, ErrorResponse.from_exception(error).to_wire()
                            )
                            return
                    try:
                        self._pool.submit(
                            self._handle_one, connection, payload, is_work, len(body)
                        )
                    except RuntimeError:  # pool shut down under us
                        connection.inflight.release()
                        with self._lock:
                            connection.inflight_count -= 1
                        if is_work:
                            self.admission.complete()
                        return
        finally:
            with self._lock:
                self._connections.pop(sock, None)
                self._decoders.pop(connection, None)
                # Fold the codec gauges into the retired totals so the
                # session-wide counters survive the connection.
                self._retired_bytes_in += connection.bytes_in
                self._retired_bytes_out += connection.bytes_out
                self._retired_frames_json += decoder.frames_json
                self._retired_frames_binary += decoder.frames_binary
            # Close under the send lock with the flag flipped first: pooled
            # workers still holding this connection re-check ``closed``
            # under the same lock before writing, so a worker can never
            # send into this fd number after the OS has reused it for a
            # new connection (silent cross-connection corruption).
            with connection.send_lock:
                connection.closed = True
                try:
                    sock.close()
                except OSError:
                    pass
            if connection.shm is not None:
                connection.shm.close()
                connection.shm = None

    def _handle_one(
        self,
        connection: _Connection,
        payload: dict,
        is_work: bool = False,
        nbytes: int = 0,
    ) -> None:
        """Worker body: handle one envelope, send its response frame."""
        started = time.perf_counter()
        try:
            if connection.shm is not None:
                try:
                    # Swap shm slab descriptors for zero-copy views over the
                    # shared segment before the handler sees the envelope.
                    payload = connection.shm.resolve_inbound(payload)
                except ApiError as error:
                    self._try_send(connection, self._error_envelope(payload, error))
                    return
            degrade_level = 0
            if self.ladder is not None and is_work:
                # Feed the ladder the queue pressure at execution time; it
                # answers the fidelity level this request runs at.
                degrade_level = self.ladder.observe(self.admission.pressure())
            tenant_name = (
                connection.tenant.name if connection.tenant is not None else None
            )
            response = self.handler.handle(payload, degrade_level, tenant_name)
            if self.ladder is not None and is_work:
                applied = _applied_degradation(response)
                if applied is not None:
                    self.ladder.record_applied(applied)
            sent = self._try_send(connection, response)
            if sent:
                with self._lock:
                    self.requests_served += 1
        finally:
            elapsed = time.perf_counter() - started
            if is_work:
                self.admission.complete(elapsed)
                if self.tenancy is not None:
                    # Meter the served request against the connection's
                    # tenant (modelled cycles/energy arrive separately via
                    # the service's cost observer, split exactly per batch).
                    self.tenancy.charge_request(
                        connection.tenant,
                        rows=estimate_rows(payload),
                        nbytes=nbytes,
                        wall_seconds=elapsed,
                    )
            with self._lock:
                connection.inflight_count -= 1
            connection.inflight.release()

    def _error_envelope(self, payload: dict, error: BaseException) -> dict:
        """An error envelope for a frame rejected before reaching the handler."""
        return shed_error_envelope(
            payload,
            error,
            self.handler.min_schema_version,
            self.handler.max_schema_version,
        )

    def _send_raw(self, connection: _Connection, data: bytes) -> None:
        """Write raw bytes (a chaos-corrupted frame) under the send lock."""
        try:
            with connection.send_lock:
                if connection.closed:
                    return
                connection.sock.sendall(data)
                connection.bytes_out += len(data)
        except OSError:
            pass

    def _try_send(self, connection: _Connection, payload: dict) -> bool:
        try:
            if connection.shm is not None:
                # Move response tensors into the shared ring; on a full
                # ring this degrades to inline binary in the frame itself.
                payload = connection.shm.stage_outbound(payload)
            data = encode_frame(payload, self.max_frame_bytes)
            with connection.send_lock:
                if connection.closed:
                    return False
                connection.sock.sendall(data)
                connection.bytes_out += len(data)
            return True
        except ApiError as error:
            # The *response* outgrew the frame limit (huge tensor): replace
            # it with an error envelope so the client is never left hanging.
            fallback = ErrorResponse.from_exception(error).to_wire()
            fallback["request_id"] = payload.get("request_id")
            try:
                data = encode_frame(fallback, self.max_frame_bytes)
                with connection.send_lock:
                    if connection.closed:
                        return False
                    connection.sock.sendall(data)
                    connection.bytes_out += len(data)
            except (ApiError, OSError):
                return False
            return True
        except OSError:
            return False

    def _handle_shm_control(self, connection: _Connection, payload: dict) -> None:
        """Handle an shm_attach / shm_release control frame inline.

        These never enter admission control: they are transport plumbing,
        not work, and a release must succeed even when the server sheds.
        """
        op = payload.get("op")
        if op == "shm_attach":
            request_id = payload.get("request_id")
            version = payload.get("schema_version")
            if isinstance(version, bool) or not isinstance(version, int):
                version = SCHEMA_VERSION
            ack = {
                "schema_version": version,
                "op": "shm_attach",
                "request_id": request_id,
                "ok": True,
                "accepted": False,
            }
            if self.enable_shm and connection.shm is None:
                try:
                    from repro.api.shm import ServerShmSession

                    connection.shm = ServerShmSession.attach(payload)
                    connection.encoding = "shm"
                    ack["accepted"] = True
                except (ApiError, OSError, ValueError) as error:
                    # Refuse but keep the socket: the client falls back to
                    # inline binary frames over TCP.
                    ack["accepted"] = False
                    ack["reason"] = str(error)
            self._try_send(connection, ack)
        elif op == "shm_release":
            if connection.shm is not None:
                connection.shm.release(payload.get("slabs"))
            # One-way: no response, releases are fire-and-forget.
