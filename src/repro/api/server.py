"""`NormServer`: the normalization service behind a TCP socket.

A thin, dependency-free network front: one listener thread accepts
connections, one daemon thread per connection reads length-prefixed JSON
frames, hands each to the shared :class:`~repro.api.handler.ApiHandler`,
and writes the response frame back.  All request semantics (validation,
error taxonomy, batching through :class:`NormalizationService`) live in the
handler -- the server only moves frames.

Shutdown is cooperative and clean: :meth:`close` stops the listener,
shuts down every live connection (unblocking their reads), joins the
threads and leaves the wrapped service untouched (the owner closes it).
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Set, Tuple

from repro.api.envelopes import ApiError, ErrorResponse
from repro.api.framing import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.api.handler import ApiHandler


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (host may be empty for all interfaces)."""
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host or "0.0.0.0", int(port)


class NormServer:
    """Serve one :class:`NormalizationService` over the wire protocol.

    Parameters
    ----------
    service:
        The serving runtime to front (usually threaded, so concurrent
        connections coalesce into shared micro-batches).
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        construction).
    handler:
        Override the request handler (tests inject size limits).
    max_frame_bytes:
        Frame-size bound applied to every connection.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        handler: Optional[ApiHandler] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.service = service
        self.handler = handler if handler is not None else ApiHandler(service)
        self.max_frame_bytes = max_frame_bytes
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._connections: Set[socket.socket] = set()
        self._threads: list = []
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = False
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` the server is listening on."""
        return f"{self.host}:{self.port}"

    def start(self) -> "NormServer":
        """Start accepting connections in the background (idempotent)."""
        with self._lock:
            if self._closing:
                raise RuntimeError("server is closed and cannot be restarted")
            if self._accept_thread is not None:
                return self
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="haan-norm-server", daemon=True
            )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop the listener, drop every connection, join all threads."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            connections = list(self._connections)
        # shutdown() before close(): closing the fd alone does not wake a
        # thread blocked in accept() (the kernel socket would linger in
        # LISTEN and block a rebind of the port); shutdown does.  Some
        # platforms refuse to shut down a listening socket (ENOTCONN) --
        # wake the accept loop with a throwaway connection instead.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            try:
                with socket.create_connection((self.host, self.port), timeout=1.0):
                    pass
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "NormServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _address = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Accepted sockets hold the port after close (FIN_WAIT) while a
            # client keeps its end open; mark them reusable so a restarted
            # server can rebind immediately (the reconnect contract).
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self._connections.add(conn)
                # Prune finished connection threads so a long-lived server
                # handling many short-lived clients does not accumulate one
                # dead Thread object per past connection.
                self._threads = [t for t in self._threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="haan-norm-server-conn",
                    daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    payload = recv_frame(conn, self.max_frame_bytes)
                except (ConnectionError, OSError):
                    return  # client went away (or server is closing)
                except ApiError as error:
                    # Oversized or non-JSON frame: the stream cannot be
                    # resynchronized, so report once and drop the link.
                    self._try_send(conn, ErrorResponse.from_exception(error).to_wire())
                    return
                response = self.handler.handle(payload)
                with self._lock:  # += is not atomic across connection threads
                    self.requests_served += 1
                if not self._try_send(conn, response):
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _try_send(self, conn: socket.socket, payload: dict) -> bool:
        try:
            send_frame(conn, payload, self.max_frame_bytes)
            return True
        except ApiError as error:
            # The *response* outgrew the frame limit (huge tensor): replace
            # it with an error envelope so the client is never left hanging.
            fallback = ErrorResponse.from_exception(error).to_wire()
            try:
                send_frame(conn, fallback, self.max_frame_bytes)
            except (ApiError, OSError):
                return False
            return True
        except OSError:
            return False
