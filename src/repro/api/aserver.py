"""`AsyncNormServer`: the asyncio server core.

Functionally identical to the threaded :class:`~repro.api.server.NormServer`
-- same wire protocol, same pre-decode shedding gate, same error taxonomy,
same telemetry section keys, bit-identical responses -- but connections are
coroutines on one event loop instead of a reader thread each, so holding
10k mostly-idle connections costs kilobytes apiece rather than a thread
stack.

Division of labor per frame:

* **event loop** -- incremental framing (:class:`FrameDecoder`), the
  pre-decode gate (tenant quota + overload admission on the peeked JSON
  preamble, before any tensor bytes are touched), shm control ops, chaos
  gate, hello authentication, per-connection in-flight accounting.
* **bounded executor** -- everything that touches tensors: payload decode,
  request validation, ``execute`` engine runs, response encoding.  The
  loop never blocks on kernels.
* **the service's scheduler thread** -- actual normalization work.
  Serving ops are *submitted* (:meth:`ApiHandler.begin`), their
  :class:`~repro.serving.batcher.ResponseFuture` done-callbacks bridged
  onto the loop via ``call_soon_threadsafe`` -- which is what lets pending
  requests from **all connections** pool in the continuous batching
  scheduler and drain together each engine tick.

Shutdown mirrors the threaded core: :meth:`close` (callable from any
thread, e.g. a SIGTERM handler) optionally drains admitted work for
``drain_timeout`` seconds -- new frames are answered with a typed
``overloaded`` "draining" error -- then tears the loop down and joins every
thread it started.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, Optional, Set

from repro.api.admission import WORK_OPS, AdmissionController, PreDecodeGate
from repro.api.envelopes import (
    ApiError,
    AuthenticationError,
    ErrorResponse,
    OverloadedError,
)
from repro.api.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_payload,
    encode_frame,
    peek_payload,
)
from repro.api.handler import SERVING_OPS, ApiHandler
from repro.api.server import (
    SHM_CONTROL_OPS,
    _applied_degradation,
    shed_error_envelope,
)
from repro.tenancy.quota import estimate_rows


class _AsyncConnection:
    """Per-connection pipelining state (the coroutine twin of _Connection)."""

    __slots__ = (
        "writer",
        "conn_id",
        "send_lock",
        "inflight",
        "inflight_count",
        "peak_inflight",
        "frames",
        "backpressure_waits",
        "closed",
        "bytes_in",
        "bytes_out",
        "encoding",
        "shm",
        "tenant",
        "decoder",
    )

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        max_inflight: int,
        conn_id: int,
        decoder: FrameDecoder,
    ):
        self.writer = writer
        self.conn_id = conn_id
        self.send_lock = asyncio.Lock()
        #: The reader coroutine awaits this once ``max_inflight`` requests
        #: are being handled: reading pauses, the kernel buffer fills and
        #: the client feels TCP backpressure -- exactly the threaded
        #: server's contract, minus the blocked thread.
        self.inflight = asyncio.Semaphore(max_inflight)
        self.inflight_count = 0
        self.peak_inflight = 0
        self.frames = 0
        self.backpressure_waits = 0
        self.closed = False
        self.bytes_in = 0
        self.bytes_out = 0
        self.encoding = "json"
        self.shm = None
        self.tenant = None
        self.decoder = decoder


class AsyncNormServer:
    """Serve one :class:`NormalizationService` on an asyncio event loop.

    Drop-in for :class:`~repro.api.server.NormServer`: same constructor
    surface (``workers`` sizes the executor that replaces the thread
    pool), same ``start`` / ``close(drain_timeout=...)`` lifecycle, same
    ``wire_snapshot`` keys.  Requires a *threaded* service (its scheduler
    must drain itself; nothing pumps queues between submit and resolve).
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        handler: Optional[ApiHandler] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        workers: int = 8,
        max_inflight: int = 32,
        admission: Optional[AdmissionController] = None,
        max_queue_depth: int = 256,
        ladder=None,
        fault_gate=None,
        enable_shm: bool = True,
        tenancy=None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.service = service
        self.handler = handler if handler is not None else ApiHandler(service)
        self.max_frame_bytes = max_frame_bytes
        self.workers = workers
        self.max_inflight = max_inflight
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_queue_depth=max_queue_depth)
        )
        self.ladder = ladder
        self.fault_gate = fault_gate
        self.tenancy = tenancy
        self.gate = PreDecodeGate(
            self.admission, None if tenancy is None else tenancy.quota_check
        )
        if tenancy is not None and getattr(service, "cost_observer", False) is None:
            service.cost_observer = tenancy.cost_observer
        self.enable_shm = enable_shm
        # Bind synchronously so the port is known at construction (the
        # fleet supervisor and tests read .port before start()).
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(256)
        self.host, self.port = self._sock.getsockname()[:2]
        self._lock = threading.Lock()
        self._connections: Dict[int, _AsyncConnection] = {}
        #: Strong refs to in-flight dispatch tasks (the loop only keeps
        #: weak ones; an untracked task can be garbage-collected mid-run).
        self._tasks: Set["asyncio.Task"] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aserver: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="haan-async-worker"
        )
        self._closing = False
        self._draining = False
        self.requests_served = 0
        self.connections_total = 0
        self.frames_received = 0
        self.peak_inflight = 0
        self.backpressure_waits = 0
        self._retired_bytes_in = 0
        self._retired_bytes_out = 0
        self._retired_frames_json = 0
        self._retired_frames_binary = 0
        attach = getattr(service.telemetry, "attach_section", None)
        if attach is not None:
            attach("wire", self.wire_snapshot)
            attach("admission", self.admission.snapshot)
            if self.ladder is not None:
                attach("degradation", self.ladder.snapshot)
            if self.tenancy is not None:
                attach("tenancy", self.tenancy.snapshot)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` the server is listening on."""
        return f"{self.host}:{self.port}"

    def start(self) -> "AsyncNormServer":
        """Start the event-loop thread and begin accepting (idempotent)."""
        with self._lock:
            if self._closing:
                raise RuntimeError("server is closed and cannot be restarted")
            if self._thread is not None:
                return self
            started = threading.Event()
            self._thread = threading.Thread(
                target=self._run_loop,
                args=(started,),
                name="haan-async-server",
                daemon=True,
            )
        self._thread.start()
        started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            raise RuntimeError(f"async server failed to start: {error}") from error
        return self

    def _run_loop(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._aserver = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, sock=self._sock)
            )
        except BaseException as error:  # noqa: BLE001 -- surface via start()
            self._startup_error = error
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            # close() stopped the loop; finish cancelling whatever remains
            # *on this thread* (the loop's owner), then free it.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self, drain_timeout: float = 0.0) -> None:
        """Stop accepting, optionally drain, tear the loop down, join threads.

        Callable from any thread (the ``haan-serve`` SIGTERM handler calls
        it from the main thread).  Semantics match the threaded core:
        ``drain_timeout`` > 0 lets admitted frames finish (new work is
        answered with a typed ``overloaded`` "draining" error) before the
        connections are cut.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._draining = drain_timeout > 0
            thread = self._thread
        if thread is None or self._loop is None:
            # Never started: only the listening socket exists.
            try:
                self._sock.close()
            except OSError:
                pass
            self._pool.shutdown(wait=True)
            return
        loop = self._loop
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(drain_timeout), loop
            )
            future.result(timeout=drain_timeout + 10.0)
        except (RuntimeError, TimeoutError, FuturesTimeoutError):
            pass  # loop already gone (or drain overran): proceed to stop
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass
        thread.join(timeout=10.0)
        self._pool.shutdown(wait=True)
        # Freeze the final wire gauges so the shutdown summary still reports
        # session totals without pinning this closed server (mirror of the
        # threaded core).
        attach = getattr(self.service.telemetry, "attach_section", None)
        if attach is not None:
            final_snapshot = self.wire_snapshot()
            attach("wire", lambda: dict(final_snapshot))

    async def _shutdown(self, drain_timeout: float) -> None:
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        if drain_timeout > 0:
            deadline = time.monotonic() + drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    inflight = sum(
                        c.inflight_count for c in self._connections.values()
                    )
                if inflight == 0:
                    break
                await asyncio.sleep(0.01)
        with self._lock:
            connections = list(self._connections.values())
        for connection in connections:
            # Closing the transport EOFs the reader coroutine, whose finally
            # block retires the connection's gauges.
            try:
                connection.writer.close()
            except Exception:  # noqa: BLE001 -- transport may be half-dead
                pass

    def __enter__(self) -> "AsyncNormServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- telemetry -----------------------------------------------------------

    def wire_snapshot(self) -> Dict[str, object]:
        """Pipelining/wire gauges; keys identical to the threaded core's."""
        with self._lock:
            live = sorted(self._connections.values(), key=lambda c: c.conn_id)
            frames_json = self._retired_frames_json
            frames_binary = self._retired_frames_binary
            for c in live:
                frames_json += c.decoder.frames_json
                frames_binary += c.decoder.frames_binary
            return {
                "connections_total": self.connections_total,
                "connections_active": len(live),
                "frames_received": self.frames_received,
                "requests_served": self.requests_served,
                "peak_inflight": self.peak_inflight,
                "inflight_current": sum(c.inflight_count for c in live),
                "backpressure_waits": self.backpressure_waits,
                "workers": self.workers,
                "max_inflight": self.max_inflight,
                "bytes_received": self._retired_bytes_in + sum(c.bytes_in for c in live),
                "bytes_sent": self._retired_bytes_out + sum(c.bytes_out for c in live),
                "frames_json": frames_json,
                "frames_binary": frames_binary,
                "per_connection": [
                    {
                        "id": c.conn_id,
                        "inflight": c.inflight_count,
                        "peak_inflight": c.peak_inflight,
                        "frames": c.frames,
                        "backpressure_waits": c.backpressure_waits,
                        "bytes_in": c.bytes_in,
                        "bytes_out": c.bytes_out,
                        "encoding": c.encoding,
                    }
                    for c in live
                ],
            }

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            except OSError:
                pass
        decoder = FrameDecoder(self.max_frame_bytes, raw=True)
        with self._lock:
            if self._closing and not self._draining:
                writer.close()
                return
            self.connections_total += 1
            connection = _AsyncConnection(
                writer, self.max_inflight, self.connections_total, decoder
            )
            self._connections[connection.conn_id] = connection
        try:
            await self._read_loop(reader, connection, decoder)
        finally:
            with self._lock:
                self._connections.pop(connection.conn_id, None)
                self._retired_bytes_in += connection.bytes_in
                self._retired_bytes_out += connection.bytes_out
                self._retired_frames_json += decoder.frames_json
                self._retired_frames_binary += decoder.frames_binary
            # Mark closed under the send lock first: a dispatch task
            # holding this connection re-checks ``closed`` under the same
            # lock before writing (the threaded core's fd-reuse guard,
            # translated to transports).
            async with connection.send_lock:
                connection.closed = True
                try:
                    writer.close()
                except Exception:  # noqa: BLE001
                    pass
            if connection.shm is not None:
                connection.shm.close()
                connection.shm = None

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        connection: _AsyncConnection,
        decoder: FrameDecoder,
    ) -> None:
        """The reader state machine -- step-for-step the threaded server's."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                data = await reader.read(65536)
            except (OSError, asyncio.IncompleteReadError):
                return  # client went away (or server is closing)
            if not data:
                return  # clean EOF
            connection.bytes_in += len(data)
            try:
                frames = decoder.feed(data)
            except ApiError as error:
                await self._try_send(
                    connection, ErrorResponse.from_exception(error).to_wire()
                )
                return
            if frames and connection.shm is None and decoder.last_kind is not None:
                connection.encoding = decoder.last_kind
            for body in frames:
                try:
                    # JSON frames decode fully here; binary frames yield
                    # only their preamble -- all the control plane needs.
                    payload, is_binary = peek_payload(body)
                except ApiError as error:
                    await self._try_send(
                        connection, ErrorResponse.from_exception(error).to_wire()
                    )
                    return
                if payload.get("op") in SHM_CONTROL_OPS:
                    await self._handle_shm_control(connection, payload)
                    continue
                if self.fault_gate is not None:
                    action = self.fault_gate.on_server_frame(payload)
                    if action is not None:
                        if action.delay_s > 0:
                            await asyncio.sleep(action.delay_s)
                        if action.kind == "drop":
                            continue
                        if action.kind == "corrupt":
                            await self._send_raw(connection, action.data)
                            continue
                        if action.kind == "kill":
                            return
                if self.tenancy is not None and payload.get("op") == "hello":
                    token = payload.get("token")
                    try:
                        connection.tenant = self.tenancy.authenticate(
                            token if isinstance(token, str) else None
                        )
                    except ApiError as error:
                        await self._try_send(
                            connection, self._error_envelope(payload, error)
                        )
                        continue
                is_work = payload.get("op") in WORK_OPS
                if (
                    is_work
                    and self.tenancy is not None
                    and self.tenancy.require_auth
                    and (connection.tenant is None or not connection.tenant.authenticated)
                ):
                    await self._try_send(
                        connection,
                        self._error_envelope(
                            payload,
                            AuthenticationError(
                                "this server requires a tenant bearer token; "
                                "reconnect with token=... / --token"
                            ),
                        ),
                    )
                    continue
                # The shedding gate *before* any tensor decode, evaluated
                # right here on the event loop -- O(1) on the peeked
                # preamble, so a shed request never touches the executor.
                try:
                    self.gate.check(
                        payload, tenant=connection.tenant, nbytes=len(body)
                    )
                except (OverloadedError, ApiError) as error:
                    await self._try_send(
                        connection, self._error_envelope(payload, error)
                    )
                    continue
                # Awaiting at max_inflight pauses this coroutine's reads:
                # backpressure, not buffering.
                if connection.inflight.locked():
                    with self._lock:
                        connection.backpressure_waits += 1
                        self.backpressure_waits += 1
                await connection.inflight.acquire()
                with self._lock:
                    self.frames_received += 1
                    connection.frames += 1
                    connection.inflight_count += 1
                    if connection.inflight_count > connection.peak_inflight:
                        connection.peak_inflight = connection.inflight_count
                    if connection.inflight_count > self.peak_inflight:
                        self.peak_inflight = connection.inflight_count
                    closing = self._closing
                    draining = self._draining
                if closing:
                    connection.inflight.release()
                    with self._lock:
                        connection.inflight_count -= 1
                    if is_work:
                        self.admission.complete()
                    if not draining:
                        return
                    await self._try_send(
                        connection,
                        self._error_envelope(
                            payload,
                            OverloadedError(
                                "server is draining and accepts no new work"
                            ),
                        ),
                    )
                    continue
                if is_binary:
                    # Admitted: only now pay for the tensor buffers -- and
                    # in the executor, never on the loop.
                    try:
                        payload = await loop.run_in_executor(
                            self._pool, decode_payload, body
                        )
                    except ApiError as error:
                        connection.inflight.release()
                        with self._lock:
                            connection.inflight_count -= 1
                        if is_work:
                            self.admission.complete()
                        await self._try_send(
                            connection, ErrorResponse.from_exception(error).to_wire()
                        )
                        return
                task = loop.create_task(
                    self._handle_one(connection, payload, is_work, len(body))
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _handle_one(
        self,
        connection: _AsyncConnection,
        payload: dict,
        is_work: bool = False,
        nbytes: int = 0,
    ) -> None:
        """Dispatch-task body: handle one envelope, send its response frame."""
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            if connection.shm is not None:
                try:
                    payload = connection.shm.resolve_inbound(payload)
                except ApiError as error:
                    await self._try_send(
                        connection, self._error_envelope(payload, error)
                    )
                    return
            degrade_level = 0
            if self.ladder is not None and is_work:
                degrade_level = self.ladder.observe(self.admission.pressure())
            tenant_name = (
                connection.tenant.name if connection.tenant is not None else None
            )
            if payload.get("op") in SERVING_OPS:
                # Submit into the batching scheduler and yield the loop
                # while the engine works; handler.begin/finish run in the
                # executor (they decode/encode tensors).
                pendings, finish = await loop.run_in_executor(
                    self._pool, self.handler.begin, payload, degrade_level, tenant_name
                )
                if pendings:
                    await self._await_pendings(loop, pendings)
                response = await loop.run_in_executor(self._pool, finish)
            else:
                # execute/spec/hello/ping/telemetry: one blocking handler
                # call in the executor (execute runs kernels; telemetry
                # snapshots can be large).
                response = await loop.run_in_executor(
                    self._pool, self.handler.handle, payload, degrade_level, tenant_name
                )
            if self.ladder is not None and is_work:
                applied = _applied_degradation(response)
                if applied is not None:
                    self.ladder.record_applied(applied)
            sent = await self._try_send(connection, response)
            if sent:
                with self._lock:
                    self.requests_served += 1
        finally:
            elapsed = time.perf_counter() - started
            if is_work:
                self.admission.complete(elapsed)
                if self.tenancy is not None:
                    self.tenancy.charge_request(
                        connection.tenant,
                        rows=estimate_rows(payload),
                        nbytes=nbytes,
                        wall_seconds=elapsed,
                    )
            with self._lock:
                connection.inflight_count -= 1
            connection.inflight.release()

    @staticmethod
    async def _await_pendings(loop: asyncio.AbstractEventLoop, pendings) -> None:
        """Await scheduler futures without blocking any thread.

        Each :class:`ResponseFuture` done-callback fires on the scheduler's
        executor thread; ``call_soon_threadsafe`` hops it onto the loop,
        where the last one resolves a loop future this coroutine awaits.
        Results/errors are *not* extracted here -- ``finish()`` does that
        through the shared taxonomy mapping.
        """
        waiter = loop.create_future()
        remaining = len(pendings)

        def on_loop_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not waiter.done():
                waiter.set_result(None)

        def on_future_done(_future) -> None:
            try:
                loop.call_soon_threadsafe(on_loop_done)
            except RuntimeError:
                pass  # loop already closed mid-shutdown; nothing to wake

        for pending in pendings:
            pending.add_done_callback(on_future_done)
        await waiter

    def _error_envelope(self, payload: dict, error: BaseException) -> dict:
        return shed_error_envelope(
            payload,
            error,
            self.handler.min_schema_version,
            self.handler.max_schema_version,
        )

    # -- sending -------------------------------------------------------------

    async def _send_raw(self, connection: _AsyncConnection, data: bytes) -> None:
        """Write raw bytes (a chaos-corrupted frame) under the send lock."""
        try:
            async with connection.send_lock:
                if connection.closed:
                    return
                connection.writer.write(data)
                connection.bytes_out += len(data)
                await connection.writer.drain()
        except (OSError, ConnectionError):
            pass

    async def _try_send(self, connection: _AsyncConnection, payload: dict) -> bool:
        try:
            if connection.shm is not None:
                payload = connection.shm.stage_outbound(payload)
            data = encode_frame(payload, self.max_frame_bytes)
        except ApiError as error:
            # The *response* outgrew the frame limit: replace it with an
            # error envelope so the client is never left hanging.
            fallback = ErrorResponse.from_exception(error).to_wire()
            fallback["request_id"] = payload.get("request_id")
            try:
                data = encode_frame(fallback, self.max_frame_bytes)
            except ApiError:
                return False
        try:
            async with connection.send_lock:
                if connection.closed:
                    return False
                connection.writer.write(data)
                connection.bytes_out += len(data)
                await connection.writer.drain()
            return True
        except (OSError, ConnectionError):
            return False

    # -- shm control ---------------------------------------------------------

    async def _handle_shm_control(
        self, connection: _AsyncConnection, payload: dict
    ) -> None:
        """shm_attach / shm_release, handled inline (never admitted as work)."""
        from repro.api.envelopes import SCHEMA_VERSION

        op = payload.get("op")
        if op == "shm_attach":
            request_id = payload.get("request_id")
            version = payload.get("schema_version")
            if isinstance(version, bool) or not isinstance(version, int):
                version = SCHEMA_VERSION
            ack = {
                "schema_version": version,
                "op": "shm_attach",
                "request_id": request_id,
                "ok": True,
                "accepted": False,
            }
            if self.enable_shm and connection.shm is None:
                try:
                    from repro.api.shm import ServerShmSession

                    connection.shm = ServerShmSession.attach(payload)
                    connection.encoding = "shm"
                    ack["accepted"] = True
                except (ApiError, OSError, ValueError) as error:
                    ack["accepted"] = False
                    ack["reason"] = str(error)
            await self._try_send(connection, ack)
        elif op == "shm_release":
            if connection.shm is not None:
                connection.shm.release(payload.get("slabs"))
