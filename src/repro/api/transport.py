"""Client transports: the same envelopes, in-process or over TCP.

A transport is one method -- ``request(envelope_dict) -> envelope_dict`` --
so :class:`~repro.api.client.NormClient` code is identical whether it talks
to a :class:`NormalizationService` in this process or to a
:class:`~repro.api.server.NormServer` on another host:

* :class:`InProcessTransport` hands the envelope straight to a shared
  :class:`~repro.api.handler.ApiHandler` (no socket, no JSON bytes on the
  floor, but the *same* schema validation and dispatch path).
* :class:`SocketTransport` speaks the length-prefixed JSON frame protocol
  of :mod:`repro.api.framing` over TCP, reconnecting transparently when a
  server was restarted between requests -- safe because every API request
  is a pure function of its envelope (retrying cannot double-apply).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.api.envelopes import ApiError, TransportError
from repro.api.framing import MAX_FRAME_BYTES, recv_frame, send_frame


class Transport:
    """Contract every client transport implements."""

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request envelope and return the response envelope."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessTransport(Transport):
    """Client transport over a service living in this process.

    Wraps an existing :class:`NormalizationService` -- or builds an inline
    (non-threaded, deterministic) one when none is given -- behind the same
    :class:`~repro.api.handler.ApiHandler` a network server uses.

    Parameters
    ----------
    service:
        An existing service to front.  When omitted a fresh inline service
        is created (and owned: closing the transport closes it).
    registry / loader:
        Forwarded to the owned service's
        :class:`~repro.serving.registry.CalibrationRegistry` when no
        ``service`` is given.
    max_payload_elements:
        Handler-side tensor size bound (same default as a real server).
    """

    def __init__(
        self,
        service=None,
        registry=None,
        loader=None,
        max_payload_elements: Optional[int] = None,
    ):
        from repro.api.handler import ApiHandler

        self._owns_service = service is None
        if service is None:
            from repro.serving.registry import CalibrationRegistry
            from repro.serving.service import NormalizationService

            if registry is None:
                registry = CalibrationRegistry(loader=loader)
            service = NormalizationService(registry=registry, threaded=False)
        self.service = service
        kwargs = {} if max_payload_elements is None else {
            "max_payload_elements": max_payload_elements
        }
        self.handler = ApiHandler(service, **kwargs)
        self._closed = False

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("in-process transport is closed")
        return self.handler.handle(payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()


class SocketTransport(Transport):
    """Length-prefixed JSON frames over one TCP connection.

    The connection is opened lazily on the first request and re-opened
    transparently when a request hits a dead socket (server restarted,
    idle timeout): one reconnect-and-resend attempt per request, then
    :class:`TransportError`.

    Parameters
    ----------
    host / port:
        The server address.
    timeout:
        Per-request socket timeout in seconds (send + receive).
    connect_timeout:
        Bound on establishing the TCP connection.
    max_frame_bytes:
        Refuse to send or accept frames larger than this.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None

    # -- connection management ----------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` of the server this transport targets."""
        return f"{self.host}:{self.port}"

    def connected(self) -> bool:
        """Whether a (believed-live) connection is currently held."""
        return self._sock is not None

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as error:
                raise TransportError(
                    f"cannot connect to {self.address}: {error}"
                ) from error
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- request/response ---------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        last_error: Optional[BaseException] = None
        for attempt in (1, 2):
            sock = self._ensure_connected()
            try:
                send_frame(sock, payload, self.max_frame_bytes)
                return recv_frame(sock, self.max_frame_bytes)
            except ApiError:
                # Protocol-level failures (oversized frame, junk payload)
                # are not connection staleness; surface them immediately.
                self._drop()
                raise
            except OSError as error:
                # Covers ConnectionError (EOF mid-frame / reset) and
                # timeouts: drop the socket and retry exactly once against
                # a fresh connection.
                self._drop()
                last_error = error
                if attempt == 2:
                    break
        raise TransportError(
            f"request to {self.address} failed after reconnect: {last_error}"
        ) from last_error

    def wait_until_ready(self, timeout: float = 10.0, poll_interval: float = 0.1) -> None:
        """Block until a connection can be established (server startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._ensure_connected()
                return
            except TransportError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval)

    def close(self) -> None:
        self._drop()
