"""Client transports: the same envelopes, in-process or over TCP.

A transport is two methods -- blocking ``request(envelope) -> envelope``
and pipelined ``submit(envelope) -> PendingReply`` -- so
:class:`~repro.api.client.NormClient` code is identical whether it talks to
a :class:`NormalizationService` in this process or to a
:class:`~repro.api.server.NormServer` on another host:

* :class:`InProcessTransport` hands the envelope straight to a shared
  :class:`~repro.api.handler.ApiHandler` (no socket, no JSON bytes on the
  floor, but the *same* schema validation and dispatch path).
* :class:`SocketTransport` speaks the length-prefixed JSON frame protocol
  of :mod:`repro.api.framing` over a **pool** of TCP connections.  It is
  safe for concurrent callers and for pipelining: every connection may
  carry many requests in flight, a dedicated receiver thread demultiplexes
  responses by ``request_id`` (the server answers in completion order, not
  arrival order), and requests spread over the pool by load.  On connect it
  performs the ``hello`` schema-version handshake -- the server advertises
  its ``min..max`` range and the client downgrades within its own -- and
  stamps every outgoing envelope with the negotiated version.

Reconnect semantics: a connection that dies fails its in-flight requests
with :class:`TransportError` (pending requests never hang), and the pool
transparently opens a fresh connection for subsequent traffic.  The
blocking ``request`` path additionally retries exactly once against a
fresh connection -- safe because every API request is a pure function of
its envelope (retrying cannot double-apply).
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.api.envelopes import (
    BINARY_WIRE_VERSION,
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    ApiError,
    BadSchemaError,
    HelloRequest,
    SchemaVersionError,
    TransportError,
    downgrade_binary_tensors,
    negotiate_version,
    parse_hello_response,
)
from repro.api.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    recv_frame,
    send_frame,
)
from repro.api.retry import AMBIGUOUS, CLEAN, OVERLOADED, RetryPolicy


class PendingReply:
    """Client-side future of one in-flight request envelope."""

    __slots__ = ("_event", "_value", "_error", "_on_abandon")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        #: Called when a waiter times out: the owning connection withdraws
        #: the request_id registration so abandoned requests do not pile up
        #: in the in-flight map of a wedged-but-connected server.
        self._on_abandon = None

    def set_result(self, value: Dict[str, Any]) -> None:
        self._value = value
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether a response (or failure) has arrived."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block up to ``timeout`` for completion; returns :meth:`done`.

        Unlike :meth:`result`, a timeout here has **no** side effect: the
        request stays registered and may still complete.  Hedged dispatch
        uses this to watch a straggler without abandoning it.
        """
        return self._event.wait(timeout)

    def abandon(self) -> None:
        """Withdraw the request registration (drop a hedged loser).

        The server may still answer; the connection's demultiplexer drops
        the orphaned response.  Idempotent, and a no-op for transports
        without a registration to withdraw.
        """
        if self._on_abandon is not None:
            self._on_abandon()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the response envelope arrives; failures re-raise."""
        if not self._event.wait(timeout):
            if self._on_abandon is not None:
                self._on_abandon()
            raise TransportError(
                f"no response within {timeout}s (request still in flight)"
            )
        if self._error is not None:
            raise self._error
        return self._value


#: Error codes meaning "the server shed this request before any work ran".
#: Overload shedding and per-tenant quota shedding share the same retry
#: semantics: nothing executed, so resending is safe for every op once the
#: server-supplied ``retry_after_ms`` has elapsed.
_SHED_ERROR_CODES = frozenset({"overloaded", "quota_exceeded"})


def _overload_error(response: Dict[str, Any]) -> Optional[float]:
    """``retry_after_ms`` of a shed-before-work error envelope, else ``None``.

    Cheap structural peek (no full decode): retry loops use it to decide
    whether a response envelope is really the server shedding load --
    either overload (``overloaded``) or a tenant quota (``quota_exceeded``).
    Returns 0.0 when the envelope carries no usable ``retry_after_ms``.
    """
    if not isinstance(response, dict):
        return None
    error = response.get("error")
    if not isinstance(error, dict) or error.get("code") not in _SHED_ERROR_CODES:
        return None
    retry_after = error.get("retry_after_ms")
    if isinstance(retry_after, bool) or not isinstance(retry_after, (int, float)):
        return 0.0
    return float(retry_after)


class Transport:
    """Contract every client transport implements."""

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request envelope and return the response envelope."""
        raise NotImplementedError

    def submit(self, payload: Dict[str, Any]) -> PendingReply:
        """Send one request envelope without waiting; returns its reply.

        The base implementation completes synchronously (in-process
        transports have no wire to overlap); :class:`SocketTransport`
        overrides it with true pipelining.
        """
        reply = PendingReply()
        try:
            reply.set_result(self.request(payload))
        except ApiError as error:
            reply.set_exception(error)
        return reply

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessTransport(Transport):
    """Client transport over a service living in this process.

    Wraps an existing :class:`NormalizationService` -- or builds an inline
    (non-threaded, deterministic) one when none is given -- behind the same
    :class:`~repro.api.handler.ApiHandler` a network server uses.

    Parameters
    ----------
    service:
        An existing service to front.  When omitted a fresh inline service
        is created (and owned: closing the transport closes it).
    registry / loader:
        Forwarded to the owned service's
        :class:`~repro.serving.registry.CalibrationRegistry` when no
        ``service`` is given.
    max_payload_elements:
        Handler-side tensor size bound (same default as a real server).
    """

    def __init__(
        self,
        service=None,
        registry=None,
        loader=None,
        max_payload_elements: Optional[int] = None,
    ):
        from repro.api.handler import ApiHandler

        self._owns_service = service is None
        if service is None:
            from repro.serving.registry import CalibrationRegistry
            from repro.serving.service import NormalizationService

            if registry is None:
                registry = CalibrationRegistry(loader=loader)
            service = NormalizationService(registry=registry, threaded=False)
        self.service = service
        kwargs = {} if max_payload_elements is None else {
            "max_payload_elements": max_payload_elements
        }
        self.handler = ApiHandler(service, **kwargs)
        self._closed = False

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("in-process transport is closed")
        return self.handler.handle(payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()


class _PoolConnection:
    """One pooled TCP connection: socket, receiver thread, in-flight map."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float,
        max_frame_bytes: int,
        send_timeout: Optional[float] = None,
    ):
        #: ``host:port`` this connection dials; every failure this
        #: connection raises carries it (message and structured attribute)
        #: so fleet-level dispatch can attribute the failure to one replica.
        self.address = f"{host}:{port}"
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as error:
            raise TransportError(
                f"cannot connect to {self.address}: {error}", address=self.address
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The receiver thread owns reads and must tolerate idle periods;
        # per-request deadlines live on PendingReply.result, not the socket.
        sock.settimeout(None)
        if send_timeout is not None and send_timeout > 0:
            # Kernel-level send deadline (SO_SNDTIMEO touches only sends,
            # unlike settimeout): a peer that stops reading while we hold
            # the send lock surfaces as an OSError -> connection failure
            # instead of blocking every sender on this connection forever.
            try:
                seconds = int(send_timeout)
                micros = int((send_timeout - seconds) * 1e6)
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_SNDTIMEO,
                    struct.pack("ll", seconds, micros),
                )
            except (OSError, ValueError, struct.error):
                pass  # best effort: platforms without SO_SNDTIMEO keep blocking sends
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, PendingReply] = {}
        self._dead = False
        self._receiver: Optional[threading.Thread] = None
        #: Optional response hook (``envelope -> envelope``) run in the
        #: receiver thread before a reply resolves -- and also for orphaned
        #: responses, so a translating transport (shared memory) can
        #: reclaim per-request resources even when the waiter abandoned.
        #: An :class:`ApiError` it raises fails the reply.
        self.translate = None
        #: Called once when the connection dies, for owner-side cleanup.
        self.on_close = None

    # -- lifecycle -----------------------------------------------------------

    def start_receiver(self) -> None:
        """Start demultiplexing responses (after any handshake traffic)."""
        self._receiver = threading.Thread(
            target=self._receive_loop, name="haan-norm-client-recv", daemon=True
        )
        self._receiver.start()

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def in_flight(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def close(self, error: Optional[BaseException] = None) -> None:
        """Drop the socket and fail everything still in flight."""
        self._dead = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self._fail_pending(
            error
            or TransportError(
                f"connection to {self.address} closed", address=self.address
            )
        )
        on_close, self.on_close = self.on_close, None
        if on_close is not None:
            try:
                on_close()
            except Exception:  # noqa: BLE001 -- cleanup must not mask the close
                pass

    def _fail_pending(self, error: BaseException) -> None:
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for reply in pending.values():
            reply.set_exception(error)

    # -- sending -------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> PendingReply:
        """Register the request and write its frame; returns the reply."""
        request_id = payload.get("request_id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise TransportError(
                "pipelined requests need an integer request_id to demultiplex by"
            )
        reply = PendingReply()
        reply._on_abandon = lambda: self._discard(request_id)
        with self._pending_lock:
            if self._dead:
                raise TransportError(
                    f"connection to {self.address} is closed", address=self.address
                )
            if request_id in self._pending:
                raise TransportError(
                    f"request_id {request_id} is already in flight on this connection"
                )
            self._pending[request_id] = reply
        try:
            with self._send_lock:
                send_frame(self.sock, payload, self.max_frame_bytes)
        except ApiError:
            # Protocol-level failure (frame too large): the connection is
            # still healthy; withdraw the registration and surface it.
            self._discard(request_id)
            raise
        except OSError as error:
            self._discard(request_id)
            message = f"send to {self.address} failed: {error}"
            self.close(TransportError(message, address=self.address))
            raise TransportError(message, address=self.address) from error
        return reply

    def _discard(self, request_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(request_id, None)

    # -- receiving -----------------------------------------------------------

    def _receive_loop(self) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        while True:
            try:
                data = self.sock.recv(65536)
            except OSError as error:
                self._on_disconnect(f"connection to {self.address} lost: {error}")
                return
            if not data:
                self._on_disconnect(f"server {self.address} closed the connection")
                return
            try:
                frames = decoder.feed(data)
            except ApiError as error:
                # The stream is unsynchronizable; everything in flight on
                # this connection is unanswerable.
                self.close(error)
                return
            for envelope in frames:
                self._route(envelope)

    def _on_disconnect(self, message: str) -> None:
        self._dead = True
        in_flight = self.in_flight
        suffix = f" with {in_flight} request(s) in flight" if in_flight else ""
        self._fail_pending(TransportError(message + suffix, address=self.address))

    def _route(self, envelope: Dict[str, Any]) -> None:
        request_id = envelope.get("request_id")
        if isinstance(request_id, bool) or not isinstance(request_id, int):
            # A connection-fatal server error (unsynchronizable stream)
            # carries no request_id; it poisons everything in flight.
            from repro.api.envelopes import ErrorResponse, error_for_code

            try:
                decoded = ErrorResponse.from_wire(envelope)
                error: BaseException = error_for_code(decoded.code, decoded.message)
            except ApiError:
                error = TransportError(f"unroutable response envelope: {envelope!r}")
            self.close(error)
            return
        with self._pending_lock:
            reply = self._pending.pop(request_id, None)
        if self.translate is not None:
            # Run the hook even for orphaned responses: it reclaims
            # per-request transport resources (shared-memory slabs).
            try:
                envelope = self.translate(envelope)
            except ApiError as error:
                if reply is not None:
                    reply.set_exception(error)
                return
        if reply is not None:
            reply.set_result(envelope)
        # else: a response for an abandoned (timed-out) request; drop it.


class SocketTransport(Transport):
    """Pooled, pipelined, thread-safe client side of the wire protocol.

    Parameters
    ----------
    host / port:
        The server address.
    timeout:
        Per-request deadline in seconds (waiting on the demultiplexed
        response, not holding the socket).
    connect_timeout:
        Bound on establishing one TCP connection.
    max_frame_bytes:
        Refuse to send or accept frames larger than this.
    pool_size:
        Number of TCP connections concurrent callers spread over.  Even at
        1 the transport pipelines (many requests in flight per connection);
        more connections mainly help once a single socket's byte stream
        saturates.
    schema_versions:
        The ``(min, max)`` schema-version range this client speaks
        (defaults to the package range; tests inject shifted ranges).
    negotiate:
        Perform the hello handshake on the first connection.  Disabling it
        skips version negotiation and stamps envelopes with this build's
        newest version (used by raw-protocol tests).
    retry_policy:
        The :class:`~repro.api.retry.RetryPolicy` governing the blocking
        ``request`` path: backoff with full jitter, a retry budget, honor
        ``retry_after_ms`` on overload, and never resend a non-idempotent
        execute op after an ambiguous (post-send) failure.  Defaults to a
        two-attempt policy matching the transport's historical behaviour.
    token:
        Tenant bearer token presented in the hello handshake of every
        fresh connection.  The server stamps the connection with the
        matching :class:`~repro.tenancy.TenantContext`; an invalid token
        fails the handshake with a typed
        :class:`~repro.api.envelopes.AuthenticationError`.  ``None``
        (the default) connects anonymously.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        pool_size: int = 1,
        schema_versions: Tuple[int, int] = (MIN_SCHEMA_VERSION, SCHEMA_VERSION),
        negotiate: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        token: Optional[str] = None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.token = token
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self.pool_size = pool_size
        self.min_schema_version, self.max_schema_version = schema_versions
        self._negotiate = negotiate
        #: Version agreed in the hello handshake (None until connected, or
        #: when negotiation is disabled).
        self.negotiated_version: Optional[int] = None
        self.server_schema_range: Optional[Tuple[int, int]] = None
        self._pool_lock = threading.Lock()
        self._pool_cond = threading.Condition(self._pool_lock)
        self._connections: List[_PoolConnection] = []
        #: Dials in progress; ``connections + dialing`` never exceeds
        #: ``pool_size`` (concurrent first-callers reserve a slot before
        #: releasing the lock to dial).
        self._dialing = 0
        self._reconnects = 0
        self._closed = False

    # -- connection management ----------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` of the server this transport targets."""
        return f"{self.host}:{self.port}"

    def connected(self) -> bool:
        """Whether at least one (believed-live) connection is held."""
        with self._pool_lock:
            return any(not conn.dead for conn in self._connections)

    def stats(self) -> Dict[str, Any]:
        """Pool gauges: live connections, in-flight requests, reconnects."""
        with self._pool_lock:
            live = [conn for conn in self._connections if not conn.dead]
            return {
                "pool_size": self.pool_size,
                "connections": len(live),
                "in_flight": sum(conn.in_flight for conn in live),
                "reconnects": self._reconnects,
                "negotiated_version": self.negotiated_version,
                "retry": self.retry_policy.snapshot(),
            }

    def kill_connections(self) -> int:
        """Force-close every pooled connection without closing the transport.

        A chaos hook (:class:`repro.chaos.transport.ChaosTransport`'s
        ``kill_after`` fault): in-flight requests fail with a
        ``TransportError`` and the next request redials transparently --
        exactly what a mid-flight server death looks like from here.
        Returns the number of connections killed.
        """
        with self._pool_lock:
            victims = [conn for conn in self._connections if not conn.dead]
        for conn in victims:
            conn.close(
                TransportError(
                    f"connection to {self.address} killed by chaos plan",
                    address=self.address,
                )
            )
        return len(victims)

    def _open_connection(self) -> _PoolConnection:
        """Dial one connection; the first performs the hello handshake."""
        conn = _PoolConnection(
            self.host,
            self.port,
            self.connect_timeout,
            self.max_frame_bytes,
            send_timeout=self.timeout,
        )
        try:
            # With a tenant token, *every* fresh connection performs the
            # hello: the server stamps its TenantContext per connection, so
            # pool growth and reconnects must re-present the credential
            # (re-deriving the already-negotiated version is harmless).
            if self._negotiate and (self.negotiated_version is None or self.token is not None):
                self._handshake(conn)
            # Subclass hook (e.g. the shared-memory transport's segment
            # attach): runs after version negotiation, before the receiver
            # thread takes over reads, so it may exchange frames
            # synchronously on the bare socket.
            self._after_handshake(conn)
        except BaseException:
            conn.close()
            raise
        conn.start_receiver()
        return conn

    def _after_handshake(self, conn: _PoolConnection) -> None:
        """Post-handshake hook on each fresh connection (default: no-op)."""

    def _handshake(self, conn: _PoolConnection) -> None:
        """Synchronous hello exchange on a fresh socket (pre-receiver).

        The hello envelope itself is stamped with the *minimum* version
        this client speaks: a legacy strict-equality peer at that version
        can then at least parse the envelope, and its "unknown op" rejection
        becomes the downgrade signal (it speaks exactly that version).  A
        ``schema_version`` rejection, by contrast, is a genuine range
        mismatch and propagates.
        """
        hello = HelloRequest(
            min_schema_version=self.min_schema_version,
            max_schema_version=self.max_schema_version,
            token=self.token,
        )
        wire = hello.to_wire()
        wire["schema_version"] = self.min_schema_version
        conn.sock.settimeout(self.connect_timeout)
        try:
            send_frame(conn.sock, wire, self.max_frame_bytes)
            response = parse_hello_response(recv_frame(conn.sock, self.max_frame_bytes))
        except SchemaVersionError:
            raise  # disjoint ranges: the server named both in the message
        except BadSchemaError:
            # Pre-hello peer: it parsed our min-version envelope but does
            # not know the op, so it speaks exactly that version.
            self.negotiated_version = self.min_schema_version
            self.server_schema_range = (
                self.min_schema_version,
                self.min_schema_version,
            )
            return
        except OSError as error:
            raise TransportError(f"hello handshake failed: {error}") from error
        finally:
            conn.sock.settimeout(None)
        self.server_schema_range = (
            response.min_schema_version,
            response.max_schema_version,
        )
        # Re-derive locally: the client downgrades within its own range and
        # rejects a server whose advertisement does not overlap it.
        self.negotiated_version = negotiate_version(
            self.min_schema_version,
            self.max_schema_version,
            response.min_schema_version,
            response.max_schema_version,
        )

    def _get_connection(self) -> _PoolConnection:
        """The least-loaded live connection, dialing up to ``pool_size``.

        The dial decision reserves a slot under the pool lock before the
        (slow, unlocked) connect + handshake runs, so concurrent callers
        can never grow the pool past ``pool_size``; callers finding every
        slot mid-dial wait for one to land or fail instead of over-dialing.
        """
        with self._pool_cond:
            while True:
                if self._closed:
                    raise TransportError("socket transport is closed")
                before = len(self._connections)
                self._connections = [c for c in self._connections if not c.dead]
                self._reconnects += before - len(self._connections)
                if before > 0 and not self._connections and self._dialing == 0:
                    # The whole pool died (server restart): re-run the hello
                    # on the next dial -- the restarted server may speak a
                    # different version range than the one we negotiated.
                    self.negotiated_version = None
                    self.server_schema_range = None
                if len(self._connections) + self._dialing < self.pool_size:
                    self._dialing += 1
                    break
                if self._connections:
                    return min(self._connections, key=lambda c: c.in_flight)
                # every slot is mid-dial: wait for one of those dials to
                # land (or fail) rather than exceeding the pool bound
                self._pool_cond.wait(timeout=self.connect_timeout + 1.0)
        try:
            conn = self._open_connection()
        except BaseException as dial_error:
            with self._pool_cond:
                self._dialing -= 1
                self._pool_cond.notify_all()
                if isinstance(dial_error, TransportError) and not self._closed:
                    # A refused dial while *topping up* the pool must not
                    # fail the request: the pool may still hold live
                    # connections that can carry it (the dial was an
                    # optimization, not a requirement).  Only a request
                    # with nowhere else to go surfaces the dial failure.
                    live = [c for c in self._connections if not c.dead]
                    if live:
                        return min(live, key=lambda c: c.in_flight)
            raise
        with self._pool_cond:
            self._dialing -= 1
            if self._closed:
                conn.close()
                self._pool_cond.notify_all()
                raise TransportError("socket transport is closed")
            self._connections.append(conn)
            self._pool_cond.notify_all()
        return conn

    # -- request/response ---------------------------------------------------

    def _stamp_version(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if (
            self.negotiated_version is not None
            and payload.get("schema_version") != self.negotiated_version
            and payload.get("op") != "hello"
        ):
            payload = dict(payload)
            payload["schema_version"] = self.negotiated_version
        if (
            self.negotiated_version is not None
            and self.negotiated_version < BINARY_WIRE_VERSION
        ):
            # v2-or-older peer: silently fall back to base64 JSON frames.
            # Copy-on-write, so a fleet sending the same envelope to
            # replicas at different versions never cross-contaminates.
            payload = downgrade_binary_tensors(payload)
        return payload

    def _prepare(self, payload: Dict[str, Any], conn: _PoolConnection) -> Dict[str, Any]:
        """Per-send envelope rewrite: version stamp + binary downgrade.

        Subclasses may rewrite further against the target connection (the
        shared-memory transport stages tensor buffers into its slabs here).
        """
        return self._stamp_version(payload)

    def submit(self, payload: Dict[str, Any]) -> PendingReply:
        """Pipeline one request; the reply resolves when its frame arrives.

        A dead connection discovered at send time is replaced transparently
        (one redial attempt); a connection dying *after* the send fails the
        reply with :class:`TransportError` -- the pipelined path never
        resends on its own, the caller decides (the blocking ``request``
        wrapper retries exactly once).
        """
        last_error: Optional[BaseException] = None
        for _attempt in (1, 2):
            try:
                conn = self._get_connection()
                # Stamp after dialing: the first dial performs the hello
                # handshake that decides the version to stamp.
                return conn.submit(self._prepare(payload, conn))
            except TransportError as error:
                last_error = error
            except ApiError:
                raise  # protocol-level (frame too large): not retryable
        raise TransportError(
            f"request to {self.address} failed after reconnect: {last_error}",
            address=self.address,
        ) from last_error

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one envelope, retrying under the transport's retry policy.

        Failure classification drives the policy: a send-time failure is
        *clean* (the frame never hit the wire -- any op may resend), a
        post-send failure is *ambiguous* (the server may have executed the
        request -- non-idempotent execute ops surface it instead of
        resending), and an ``overloaded`` error envelope is clean with the
        server-supplied ``retry_after_ms`` as the backoff floor.
        """
        policy = self.retry_policy
        policy.record_attempt()
        op = payload.get("op") if isinstance(payload, dict) else None
        op = op if isinstance(op, str) else ""
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            failure = CLEAN
            retry_after_ms: Optional[float] = None
            response: Optional[Dict[str, Any]] = None
            try:
                conn = self._get_connection()
                reply = conn.submit(self._prepare(payload, conn))
            except TransportError as error:
                # Dead connection at send time: the frame never left this
                # process, so resending cannot double-apply for any op.
                last_error = error
            except ApiError:
                raise  # protocol-level (frame too large): not retryable
            else:
                try:
                    response = reply.result(self.timeout)
                except TransportError as error:
                    # The frame was sent; the server may have executed it.
                    # A timed-out reply withdrew its own request_id (the
                    # abandon hook), so a resend can reuse the envelope.
                    last_error = error
                    failure = AMBIGUOUS
            if response is not None:
                shed = _overload_error(response)
                if shed is None:
                    return response
                # The server shed the request before doing any work:
                # retryable for every op, honoring its retry_after_ms.
                failure = OVERLOADED
                retry_after_ms = shed
                last_error = None
            delay = policy.next_delay(attempt, op, failure, retry_after_ms)
            if delay is None:
                if response is not None:
                    # Out of retries for an overloaded response: surface
                    # the typed error envelope to the caller as-is.
                    return response
                raise TransportError(
                    f"request to {self.address} failed after reconnect "
                    f"({attempt + 1} attempt(s)): {last_error}",
                    address=self.address,
                ) from last_error
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def wait_until_ready(self, timeout: float = 10.0, poll_interval: float = 0.1) -> None:
        """Block until a connection can be established (server startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._get_connection()
                return
            except TransportError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval)

    def close(self) -> None:
        with self._pool_cond:
            self._closed = True
            connections, self._connections = self._connections, []
            self._pool_cond.notify_all()  # wake callers waiting on a dial
        for conn in connections:
            conn.close()


# ---------------------------------------------------------------------------
# transport registry
# ---------------------------------------------------------------------------

#: Transport name -> factory.  A factory takes the keyword arguments of its
#: transport class and returns a ready :class:`Transport`.
_TRANSPORT_FACTORIES: Dict[str, Any] = {}


def register_transport(name: str, factory) -> None:
    """Register a named transport factory (idempotent re-registration).

    The registry lets configuration-driven callers (CLIs, supervisors)
    select a transport by name -- ``in-process``, ``socket``, or ``fleet``
    (registered by :mod:`repro.fleet.transport` on import) -- without
    hard-coding constructor imports.
    """
    if not name:
        raise ValueError("transport name must be non-empty")
    _TRANSPORT_FACTORIES[name] = factory


def available_transports() -> Tuple[str, ...]:
    """Registered transport names, sorted."""
    # The fleet and shared-memory transports register themselves on import;
    # make the listing complete even when nothing imported them yet.
    try:
        import repro.fleet.transport  # noqa: F401
    except ImportError:
        pass
    try:
        import repro.api.shm  # noqa: F401
    except ImportError:
        pass
    return tuple(sorted(_TRANSPORT_FACTORIES))


def create_transport(name: str, **kwargs) -> Transport:
    """Instantiate a registered transport by name."""
    if name not in _TRANSPORT_FACTORIES and name == "fleet":
        import repro.fleet.transport  # noqa: F401  (self-registers)
    if name not in _TRANSPORT_FACTORIES and name == "shm":
        import repro.api.shm  # noqa: F401  (self-registers)
    try:
        factory = _TRANSPORT_FACTORIES[name]
    except KeyError:
        known = ", ".join(available_transports()) or "(none)"
        raise ValueError(f"unknown transport {name!r}; registered: {known}") from None
    return factory(**kwargs)


register_transport("in-process", InProcessTransport)
register_transport("socket", SocketTransport)
