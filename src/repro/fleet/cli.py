"""`haan-fleet`: launch, drive and supervise a replica fleet.

Two modes share one flag set:

* **Traffic mode** (default) -- launch ``--replicas N`` local servers
  (or ``--attach`` to already-running ones), drive pipelined and bulk
  normalization through the fleet transport, golden-check every response
  against a local rebuild of the served spec, and print the dispatch
  counters plus a per-replica health/telemetry table.  ``--kill-one``
  SIGKILLs a replica mid-run: the run must still complete, bit-identical
  -- the fleet's whole claim, exercised from the console::

      haan-fleet --replicas 3 --model tiny --requests 24 --kill-one
      haan-fleet --attach 127.0.0.1:8471,127.0.0.1:8472 --requests 16

* **Serve mode** (``--serve``) -- launch the replicas and supervise
  them until Ctrl-C/SIGTERM, restarting any that die (on fresh ports,
  printed as churn lines so an attached client operator can follow)::

      haan-fleet --replicas 3 --model tiny --serve

Traffic spreads across ``--datasets K`` calibration keys because the
ring routes on (model, dataset, accelerator): one dataset pins all
pipelined singles to one replica (its registry stays hot -- by design),
K datasets exercise the whole fleet.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import ApiError
from repro.api.server import parse_address
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.transport import FleetTransport


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``haan-fleet`` command."""
    parser = argparse.ArgumentParser(
        prog="haan-fleet",
        description="Launch and drive N NormServer replicas behind the fleet transport.",
    )
    parser.add_argument(
        "--replicas", type=int, default=3, help="local replicas to launch"
    )
    parser.add_argument(
        "--attach",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="drive already-running servers instead of launching any",
    )
    parser.add_argument("--model", default="tiny", help="model to serve and normalize")
    parser.add_argument("--dataset", default="default", help="calibration dataset stem")
    parser.add_argument(
        "--datasets",
        type=int,
        default=3,
        help="distinct dataset keys to spread traffic across the ring",
    )
    parser.add_argument("--layer", type=int, default=0, help="normalization layer index")
    parser.add_argument("--backend", default="vectorized", help="execution backend")
    parser.add_argument(
        "--requests", type=int, default=24, help="pipelined requests per dataset"
    )
    parser.add_argument(
        "--bulk-items", type=int, default=8, help="tensors in the scatter-gather bulk frame"
    )
    parser.add_argument("--rows", type=int, default=4, help="rows per synthetic tensor")
    parser.add_argument("--depth", type=int, default=8, help="pipelining depth")
    parser.add_argument("--seed", type=int, default=0, help="synthetic payload RNG seed")
    parser.add_argument("--workers", type=int, default=8, help="worker threads per replica")
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="per-replica micro-batch window"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-request client timeout"
    )
    parser.add_argument(
        "--kill-one",
        action="store_true",
        help="SIGKILL one replica mid-run; the run must still complete",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="supervise the replicas until interrupted instead of driving traffic",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="tenant bearer token presented to every replica's handshake",
    )
    parser.add_argument(
        "--no-golden-check",
        action="store_true",
        help="skip the bit-identity check against the locally rebuilt spec",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the run summary as JSON on stdout"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.replicas < 1 or args.datasets < 1:
        parser.error("--replicas and --datasets must be positive")
    if args.requests < 1 or args.bulk_items < 1 or args.rows < 1 or args.depth < 1:
        parser.error("--requests, --bulk-items, --rows and --depth must be positive")
    if args.serve and (args.attach or args.kill_one):
        parser.error("--serve launches and supervises; drop --attach/--kill-one")

    attach: Optional[List[str]] = None
    if args.attach:
        attach = [part.strip() for part in args.attach.split(",") if part.strip()]
        if not attach:
            parser.error("--attach needs at least one HOST:PORT")
        try:
            for address in attach:
                parse_address(address)
        except ValueError as error:
            parser.error(str(error))
        if args.kill_one:
            parser.error("--kill-one needs supervised replicas, not --attach")

    if args.serve:
        return _serve(args)
    return _traffic(args, attach)


# -- serve mode ---------------------------------------------------------------


def _serve(args: argparse.Namespace) -> int:
    supervisor = FleetSupervisor(
        args.replicas,
        restart=True,
        model=args.model,
        dataset=args.dataset,
        workers=args.workers,
        max_wait_ms=args.max_wait_ms,
    )
    interrupted = signal.getsignal(signal.SIGTERM)

    def _on_term(signum, frame):  # noqa: ARG001 - signal handler shape
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _on_term)
    try:
        with supervisor:
            addresses = supervisor.start()
            print(
                f"haan-fleet: serving {len(addresses)} replica(s) of "
                f"{args.model!r}: {','.join(addresses)}",
                flush=True,
            )
            print("haan-fleet: Ctrl-C to stop", flush=True)
            try:
                while True:
                    time.sleep(0.5)
                    for old, new in supervisor.poll():
                        print(
                            f"haan-fleet: replica {old} died; "
                            + (f"restarted on {new}" if new else "not restarted"),
                            flush=True,
                        )
            except KeyboardInterrupt:
                print("haan-fleet: shutting down", flush=True)
            _print_replica_table(supervisor.addresses(), stats=None)
        return 0
    finally:
        signal.signal(signal.SIGTERM, interrupted)


# -- traffic mode -------------------------------------------------------------


def _dataset_keys(args: argparse.Namespace) -> List[str]:
    if args.datasets == 1:
        return [args.dataset]
    return [f"{args.dataset}-{index}" for index in range(args.datasets)]


def _traffic(args: argparse.Namespace, attach: Optional[List[str]]) -> int:
    supervisor: Optional[FleetSupervisor] = None
    if attach is None:
        supervisor = FleetSupervisor(
            args.replicas,
            restart=False,  # a --kill-one death must stick: failover, not restart
            model=args.model,
            dataset=args.dataset,
            workers=args.workers,
            max_wait_ms=args.max_wait_ms,
        )
    try:
        if supervisor is not None:
            addresses = supervisor.start()
            print(
                f"haan-fleet: launched {len(addresses)} replica(s): "
                f"{','.join(addresses)}",
                flush=True,
            )
        else:
            addresses = list(attach or [])
            print(f"haan-fleet: attached to {','.join(addresses)}", flush=True)
        client = NormClient(
            FleetTransport(addresses, timeout=args.timeout, token=args.token)
        )
        with client:
            client.wait_until_ready(timeout=30.0)
            try:
                return _drive(client, args, supervisor, addresses)
            except ApiError as error:
                print(f"haan-fleet: [{error.code}] {error}", file=sys.stderr)
                return 1
    finally:
        if supervisor is not None:
            supervisor.close()


def _drive(
    client: NormClient,
    args: argparse.Namespace,
    supervisor: Optional[FleetSupervisor],
    addresses: Sequence[str],
) -> int:
    datasets = _dataset_keys(args)
    rng = np.random.default_rng(args.seed)
    golden = {}
    specs = {}
    for dataset in datasets:
        served = client.fetch_spec(args.model, layer_index=args.layer, dataset=dataset)
        specs[dataset] = served
        if not args.no_golden_check:
            from repro.engine.registry import build

            golden[dataset] = build(
                served.spec, backend="reference", gamma=served.gamma, beta=served.beta
            )

    hidden = specs[datasets[0]].hidden_size
    payloads = {
        dataset: [
            rng.normal(0.0, 1.0, size=(args.rows, hidden)) for _ in range(args.requests)
        ]
        for dataset in datasets
    }
    bulk_payloads = [rng.normal(0.0, 1.0, size=(args.rows, hidden)) for _ in range(args.bulk_items)]

    checked = 0
    mismatches = 0

    def _check(dataset: str, payload: np.ndarray, output: np.ndarray) -> None:
        nonlocal checked, mismatches
        engine = golden.get(dataset)
        if engine is None:
            return
        stacked = np.asarray(payload, dtype=np.float64).reshape(-1, hidden)
        expected = engine.run(stacked)[0].reshape(output.shape)
        checked += 1
        if not np.array_equal(output, expected):
            mismatches += 1

    kill_after = len(datasets) // 2 if args.kill_one else None
    killed: Optional[str] = None
    print(
        f"haan-fleet: driving {len(datasets)} dataset(s) x {args.requests} pipelined "
        f"request(s) (depth {args.depth}) + {args.bulk_items}-item bulk frame",
        flush=True,
    )
    for index, dataset in enumerate(datasets):
        if kill_after is not None and index == kill_after and supervisor is not None:
            victim = supervisor.replica(0)
            killed = victim.address
            victim.kill()
            print(f"haan-fleet: killed replica {killed} mid-run", flush=True)
        results = client.normalize_many(
            payloads[dataset],
            args.model,
            depth=args.depth,
            dataset=dataset,
            backend=args.backend,
        )
        for payload, result in zip(payloads[dataset], results):
            _check(dataset, payload, result.output)

    bulk_results = client.normalize_bulk(
        bulk_payloads, args.model, dataset=datasets[0], backend=args.backend
    )
    for payload, result in zip(bulk_payloads, bulk_results):
        _check(datasets[0], payload, result.output)

    transport = client.transport
    stats = transport.stats() if isinstance(transport, FleetTransport) else {}
    total = len(datasets) * args.requests + args.bulk_items
    summary = {
        "replicas": list(addresses),
        "killed": killed,
        "requests": total,
        "golden_checked": checked,
        "golden_mismatches": mismatches,
        "dispatch": {
            key: value for key, value in stats.items() if key != "replicas"
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        dispatch = summary["dispatch"]
        print(
            f"haan-fleet: {total} request(s) done; hedges "
            f"{dispatch.get('hedges_issued', 0)} ({dispatch.get('hedge_wins', 0)} won), "
            f"failovers {dispatch.get('failovers', 0)}, scatter "
            f"{dispatch.get('scatter_requests', 0)} "
            f"(+{dispatch.get('scatter_retries', 0)} retried slice(s))",
            flush=True,
        )
        _print_replica_table(addresses, stats=stats, token=args.token)
    if mismatches:
        print(
            f"haan-fleet: GOLDEN CHECK FAILED: {mismatches}/{checked} response(s) "
            "differ from the local rebuild of the served spec",
            file=sys.stderr,
        )
        return 1
    if checked:
        print(
            f"haan-fleet: golden check passed: {checked} response(s) bit-identical",
            flush=True,
        )
    return 0


# -- reporting ----------------------------------------------------------------


def _print_replica_table(
    addresses: Sequence[str],
    stats: Optional[Dict[str, object]],
    token: Optional[str] = None,
) -> None:
    """Per-replica table: breaker state + served-side wire/tenancy telemetry."""
    health: Dict[str, Dict[str, object]] = {}
    if stats:
        replicas = stats.get("replicas")
        if isinstance(replicas, dict):
            for address, entry in replicas.items():
                if isinstance(entry, dict) and isinstance(entry.get("health"), dict):
                    health[address] = entry["health"]  # type: ignore[assignment]

    rows = [
        [
            "replica",
            "state",
            "ok",
            "fail",
            "p99(ms)",
            "requests",
            "frames",
            "peak",
            "tenants",
            "q-shed",
        ]
    ]
    tenant_rows: Dict[str, Dict[str, float]] = {}
    for address in addresses:
        info = health.get(address, {})
        state = str(info.get("state", "-"))
        ok = str(info.get("successes", "-"))
        fail = str(info.get("failures", "-"))
        p99 = info.get("latency_p99")
        p99_text = f"{1e3 * p99:.1f}" if isinstance(p99, float) else "-"
        served = frames = peak = "-"
        tenants = shed = "-"
        try:
            host, port = parse_address(address)
            with NormClient.connect(host, port, timeout=5.0, token=token) as probe:
                telemetry = probe.telemetry()["telemetry"]
            served = str(telemetry.get("requests_total", "-"))
            wire = telemetry.get("wire")
            if isinstance(wire, dict):
                frames = str(wire.get("frames_received", "-"))
                peak = str(wire.get("peak_inflight", "-"))
            tenancy = telemetry.get("tenancy")
            if isinstance(tenancy, dict):
                quotas = tenancy.get("quotas")
                quotas = quotas if isinstance(quotas, dict) else {}
                tenants = str(tenancy.get("tenants_declared", "-"))
                shed = str(
                    sum(
                        sum(quota.get("shed", {}).values())
                        for quota in quotas.values()
                        if isinstance(quota, dict)
                    )
                )
                ledger = tenancy.get("ledger")
                if isinstance(ledger, dict):
                    for tenant, account in ledger.items():
                        if not isinstance(account, dict):
                            continue
                        sums = tenant_rows.setdefault(
                            tenant, {"requests": 0, "rows": 0, "cycles": 0}
                        )
                        for key in sums:
                            value = account.get(key)
                            if isinstance(value, (int, float)):
                                sums[key] += value
        except (ApiError, OSError, ValueError, KeyError):
            state = state if state != "-" else "down"
            served = "down"
        rows.append(
            [address, state, ok, fail, p99_text, served, frames, peak, tenants, shed]
        )

    _print_table(rows)
    if tenant_rows:
        # Per-tenant rollup across the fleet, from each replica's ledger.
        print("per-tenant (fleet-wide):", flush=True)
        table = [["tenant", "requests", "rows", "cycles"]]
        for tenant in sorted(tenant_rows):
            sums = tenant_rows[tenant]
            table.append(
                [
                    tenant,
                    str(int(sums["requests"])),
                    str(int(sums["rows"])),
                    str(int(sums["cycles"])),
                ]
            )
        _print_table(table)


def _print_table(rows: List[List[str]]) -> None:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    for row in rows:
        print(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip(),
            flush=True,
        )


if __name__ == "__main__":
    sys.exit(main())
