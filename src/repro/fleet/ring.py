"""Consistent-hash ring with virtual nodes.

The fleet routes every request key -- ``(model, dataset, accelerator)``
for serving ops, a spec digest for ``execute`` ops -- to a replica via a
classic consistent-hash ring: each replica owns ``vnodes`` points on a
64-bit circle, a key hashes to one point, and its owner is the first
replica point clockwise from there.  Two properties matter operationally:

* **Stickiness** -- the same key always lands on the same replica (while
  membership is stable), so each replica's ``CalibrationRegistry`` stays
  hot for the models it owns instead of every replica calibrating
  everything.
* **Minimal rebalancing** -- when a replica joins, only the keys whose
  clockwise-first point becomes one of the newcomer's points move (an
  expected ``1/(N+1)`` fraction), and they all move *to* the newcomer;
  when a replica leaves, only its own keys move, scattering over the
  survivors.  Everyone else's cache stays warm.

Hashing is :mod:`hashlib`-based (SHA-1, first 8 bytes): stable across
processes and runs, unlike the builtin ``hash()`` which is randomized per
process by ``PYTHONHASHSEED`` -- a fleet whose client and supervisor
disagree on key placement would calibrate every model everywhere.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple, Union

#: A routing key: any string, or a tuple of (possibly None) parts.
RingKey = Union[str, Sequence[object]]

#: Unit separator: joins key parts unambiguously ("a", "bc") != ("ab", "c").
_SEPARATOR = "\x1f"


def stable_hash(text: str) -> int:
    """Process-stable 64-bit hash of a string (first 8 SHA-1 bytes)."""
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")


def canonical_key(key: RingKey) -> str:
    """Flatten a routing key into the string that gets hashed."""
    if isinstance(key, str):
        return key
    return _SEPARATOR.join("\x00" if part is None else str(part) for part in key)


class HashRing:
    """Consistent-hash ring over replica addresses.

    Not thread-safe on its own: the :class:`~repro.fleet.router.FleetRouter`
    guards membership changes with its lock; lookups on a stable ring are
    reads of immutable lists.
    """

    def __init__(self, replicas: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._replicas: List[str] = []
        self._hashes: List[int] = []
        self._owners: List[str] = []
        for replica in replicas:
            self.add(replica)

    # -- membership ----------------------------------------------------------

    @property
    def replicas(self) -> Tuple[str, ...]:
        """Member replicas in join order."""
        return tuple(self._replicas)

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica: object) -> bool:
        return replica in self._replicas

    def add(self, replica: str) -> None:
        """Join a replica (its ``vnodes`` points enter the ring)."""
        if not replica:
            raise ValueError("replica address must be non-empty")
        if replica in self._replicas:
            raise ValueError(f"replica {replica!r} is already on the ring")
        self._replicas.append(replica)
        self._rebuild()

    def remove(self, replica: str) -> None:
        """Leave a replica (its keys scatter over the survivors)."""
        try:
            self._replicas.remove(replica)
        except ValueError:
            raise ValueError(f"replica {replica!r} is not on the ring") from None
        self._rebuild()

    def _rebuild(self) -> None:
        points = sorted(
            (stable_hash(f"{replica}{_SEPARATOR}{index}"), replica)
            for replica in self._replicas
            for index in range(self.vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    # -- lookup --------------------------------------------------------------

    def primary(self, key: RingKey) -> str:
        """The replica owning ``key`` (first point clockwise of its hash)."""
        candidates = self.candidates(key)
        if not candidates:
            raise ValueError("ring has no replicas")
        return candidates[0]

    def candidates(self, key: RingKey) -> List[str]:
        """Every replica, ordered by ring distance from ``key``.

        The first entry is the primary; each subsequent entry is the next
        *distinct* replica clockwise -- the natural failover/hedging order,
        and the order keys rebalance in when replicas leave.
        """
        if not self._replicas:
            return []
        point = stable_hash(canonical_key(key))
        start = bisect.bisect_left(self._hashes, point)
        total = len(self._hashes)
        ordered: List[str] = []
        seen = set()
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(ordered) == len(self._replicas):
                    break
        return ordered
