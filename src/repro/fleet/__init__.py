"""Fleet tier: N `NormServer` replicas behind one client transport.

The subsystem that takes the serving stack from one process to a replica
set, bit-identically to a single server:

* :mod:`repro.fleet.ring` -- consistent-hash ring with virtual nodes
  (stable :mod:`hashlib` placement, minimal rebalancing on join/leave).
* :mod:`repro.fleet.health` -- per-replica rolling success/latency
  windows and the closed/open/half-open circuit breaker.
* :mod:`repro.fleet.router` -- :class:`FleetRouter`: health-gated
  candidate selection plus the p99-derived hedge-delay policy.
* :mod:`repro.fleet.transport` -- :class:`FleetTransport`: the
  :class:`~repro.api.transport.Transport` implementation that hedges
  single requests and scatter-gathers bulk requests over the replicas
  (``NormClient(transport=FleetTransport([...]))`` -- zero client-code
  changes; registered as transport name ``"fleet"``).
* :mod:`repro.fleet.supervisor` -- launch/supervise N local
  ``haan-serve --listen`` subprocesses, restarting the dead.
* :mod:`repro.fleet.cli` -- the ``haan-fleet`` console script.

Lazy exports (PEP 562), like :mod:`repro.api`: the ring/health/router
modules are leaves, but the transport layer pulls in :mod:`repro.api`.
"""

from __future__ import annotations

from typing import List

_EXPORTS = {
    "HashRing": "ring",
    "stable_hash": "ring",
    "canonical_key": "ring",
    "BreakerConfig": "health",
    "ReplicaHealth": "health",
    "CLOSED": "health",
    "OPEN": "health",
    "HALF_OPEN": "health",
    "FleetRouter": "router",
    "FleetTransport": "transport",
    "ReplicaProcess": "supervisor",
    "FleetSupervisor": "supervisor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
