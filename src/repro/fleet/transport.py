"""`FleetTransport`: N replicas behind the one-transport client contract.

Conforms to the :class:`repro.api.transport.Transport` interface --
blocking ``request``, pipelined ``submit``, ``close`` -- so
``NormClient(transport=FleetTransport([...]))`` runs unchanged client code
against a whole fleet, bit-identically to a single server (every API
request is a pure function of its envelope, so re-dispatch, hedging and
scatter can never change a result, only who computes it).

Dispatch policy per envelope:

* **Keyed single requests** (``normalize``, ``stream``, ``spec``,
  ``execute``) route by consistent hash -- ``(model, dataset,
  accelerator)`` for serving ops, a spec digest for ``execute`` ops -- so
  each replica's registries stay hot.  The blocking path is **hedged**:
  after a p99-derived delay the straggling request is re-issued to the
  next ring replica and the first response wins; the loser is abandoned
  (its late response is dropped by the connection demultiplexer).
* **Bulk requests** (``normalize_bulk``, ``execute_bulk``) **scatter**
  over the currently-healthy shards in ring order: contiguous item slices,
  one sub-request per shard under a fresh ``request_id``, responses
  reassembled in request order.  A shard failing mid-flight is retried on
  the survivors; an *error envelope* from any shard fails the whole bulk
  (single-server semantics).
* **Un-keyed ops** (``ping``, ``telemetry``) go to the first healthy
  replica in join order.

Each replica is fronted by one pooled
:class:`~repro.api.transport.SocketTransport` (created lazily; a factory
is injectable for tests).  Transport-level failures feed the
:class:`~repro.fleet.router.FleetRouter` health gate; when every replica
is ejected the fleet **fails closed** with
:class:`~repro.api.envelopes.NoHealthyReplicaError` instead of hammering
dead servers.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.envelopes import (
    ApiError,
    NoHealthyReplicaError,
    TransportError,
    next_request_id,
)
from repro.api.framing import MAX_FRAME_BYTES
from repro.api.retry import AMBIGUOUS, NON_IDEMPOTENT_OPS, OVERLOADED, RetryPolicy
from repro.api.transport import (
    PendingReply,
    SocketTransport,
    Transport,
    _overload_error,
    register_transport,
)
from repro.fleet.health import BreakerConfig
from repro.fleet.router import FleetRouter

#: Ops whose routing key is the serving tuple (model, dataset, accelerator).
_SERVING_OPS = ("normalize", "normalize_bulk", "stream", "spec")

#: Bulk ops and the envelope field their item list lives in.
_BULK_FIELDS = {"normalize_bulk": "tensors", "execute_bulk": "groups"}

#: Poll granularity while more than one hedged reply is in flight.
_POLL_INTERVAL = 0.001


def _default_factory(
    address: str,
    timeout: float,
    connect_timeout: float,
    pool_size: int,
    max_frame_bytes: int,
    retry_policy: Optional[RetryPolicy] = None,
    token: Optional[str] = None,
) -> SocketTransport:
    from repro.api.server import parse_address

    host, port = parse_address(address)
    return SocketTransport(
        host,
        port,
        timeout=timeout,
        connect_timeout=connect_timeout,
        pool_size=pool_size,
        max_frame_bytes=max_frame_bytes,
        retry_policy=retry_policy,
        token=token,
    )


class _FleetReply:
    """Pipelined reply that feeds its outcome back into replica health."""

    __slots__ = ("_transport", "address", "_reply", "_started", "_recorded")

    def __init__(self, transport: "FleetTransport", address: str, reply: PendingReply):
        self._transport = transport
        self.address = address
        self._reply = reply
        self._started = transport._clock()
        self._recorded = False

    def done(self) -> bool:
        return self._reply.done()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._reply.wait(timeout)

    def abandon(self) -> None:
        self._reply.abandon()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        try:
            value = self._reply.result(timeout)
        except TransportError:
            self._record(False)
            raise
        self._record(True)
        return value

    def _record(self, ok: bool) -> None:
        if self._recorded:
            return
        self._recorded = True
        router = self._transport._router
        if ok:
            router.record_success(self.address, self._transport._clock() - self._started)
        else:
            router.record_failure(self.address)


class FleetTransport(Transport):
    """Consistent-hash, health-gated, hedging transport over N replicas.

    Parameters
    ----------
    addresses:
        ``host:port`` strings of the replica servers (at least one).
    timeout / connect_timeout / pool_size / max_frame_bytes:
        Forwarded to each replica's :class:`SocketTransport`; ``timeout``
        is also the fleet-level per-request deadline.
    vnodes / breaker:
        Hash-ring density and breaker tunables
        (:class:`~repro.fleet.health.BreakerConfig`).
    hedge:
        Enable hedged retries on the blocking single-request path.
    hedge_delay:
        Fixed hedge delay in seconds, overriding the p99-derived policy
        (mainly for tests and benchmarks).
    hedge_default / hedge_floor / hedge_ceiling:
        The p99-derived policy: wait ``clamp(p99, floor, ceiling)`` on the
        primary (``default`` while its latency window is still cold)
        before re-issuing to the next ring replica.
    scatter:
        Split multi-item bulk requests across healthy shards.  Off, bulks
        route whole by their key (still hedged/failed over).
    transport_factory:
        ``address -> Transport`` override (tests inject scripted fakes).
    clock:
        Injectable monotonic clock shared with the health trackers.
    token:
        Tenant bearer token presented in every replica's hello handshake
        (the fleet acts as one tenant across all replicas).
    """

    def __init__(
        self,
        addresses: Sequence[str],
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        pool_size: int = 1,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        vnodes: int = 64,
        breaker: Optional[BreakerConfig] = None,
        hedge: bool = True,
        hedge_delay: Optional[float] = None,
        hedge_default: float = 0.05,
        hedge_floor: float = 0.005,
        hedge_ceiling: float = 1.0,
        scatter: bool = True,
        transport_factory: Optional[Callable[[str], Transport]] = None,
        clock: Callable[[], float] = time.monotonic,
        retry_policy: Optional[RetryPolicy] = None,
        token: Optional[str] = None,
    ):
        self.timeout = timeout
        # One bearer token spans the fleet: every replica authenticates the
        # same tenant, so hedges and failovers keep a single identity.
        self.token = token
        self.connect_timeout = connect_timeout
        self.pool_size = pool_size
        self.max_frame_bytes = max_frame_bytes
        self.hedge = hedge
        self.hedge_delay = hedge_delay
        self.hedge_default = hedge_default
        self.hedge_floor = hedge_floor
        self.hedge_ceiling = hedge_ceiling
        self.scatter = scatter
        # One policy instance spans the whole fleet: every replica's
        # SocketTransport shares this token bucket, so failovers and
        # per-replica retries draw from a single budget instead of each
        # replica amplifying overload independently.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._clock = clock
        self._router = FleetRouter(
            addresses, vnodes=vnodes, breaker=breaker, clock=clock
        )
        self._factory = transport_factory
        self._lock = threading.Lock()
        self._transports: Dict[str, Transport] = {}
        self._closed = False
        # Dispatch counters (guarded by _lock).
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.scatter_requests = 0
        self.scatter_retries = 0

    # -- membership / introspection ------------------------------------------

    @property
    def router(self) -> FleetRouter:
        """The routing/health core (exposed for telemetry and supervision)."""
        return self._router

    @property
    def addresses(self) -> Tuple[str, ...]:
        return self._router.addresses

    @property
    def address(self) -> str:
        """Fleet pseudo-address (what ``haan-client`` prints)."""
        return f"fleet({','.join(self._router.addresses)})"

    @property
    def negotiated_version(self) -> Optional[int]:
        """Schema version of the first connected replica (fleet-uniform)."""
        with self._lock:
            transports = list(self._transports.values())
        for transport in transports:
            version = getattr(transport, "negotiated_version", None)
            if version is not None:
                return version
        return None

    def add_replica(self, address: str) -> None:
        """Join a replica; its transport dials lazily on first dispatch."""
        self._router.add_replica(address)

    def remove_replica(self, address: str) -> None:
        """Leave a replica and drop its pooled connections."""
        self._router.remove_replica(address)
        with self._lock:
            transport = self._transports.pop(address, None)
        if transport is not None:
            transport.close()

    def stats(self) -> Dict[str, Any]:
        """Fleet gauges: dispatch counters plus per-replica health/pool."""
        with self._lock:
            transports = dict(self._transports)
            counters = {
                "hedges_issued": self.hedges_issued,
                "hedge_wins": self.hedge_wins,
                "failovers": self.failovers,
                "scatter_requests": self.scatter_requests,
                "scatter_retries": self.scatter_retries,
                "retry": self.retry_policy.snapshot(),
            }
        health = self._router.snapshot()
        replicas = {}
        for address in self._router.addresses:
            transport = transports.get(address)
            stats = getattr(transport, "stats", None)
            replicas[address] = {
                "health": health.get(address),
                "pool": stats() if callable(stats) else None,
            }
        counters["replicas"] = replicas
        return counters

    # -- transport plumbing --------------------------------------------------

    def _transport_for(self, address: str) -> Transport:
        with self._lock:
            if self._closed:
                raise TransportError("fleet transport is closed")
            transport = self._transports.get(address)
            if transport is None:
                if self._factory is not None:
                    transport = self._factory(address)
                else:
                    transport = _default_factory(
                        address,
                        self.timeout,
                        self.connect_timeout,
                        self.pool_size,
                        self.max_frame_bytes,
                        retry_policy=self.retry_policy,
                        token=self.token,
                    )
                self._transports[address] = transport
        return transport

    @staticmethod
    def routing_key(payload: Dict[str, Any]) -> Optional[Tuple]:
        """The consistent-hash key of one request envelope (None: un-keyed)."""
        op = payload.get("op")
        if op in _SERVING_OPS:
            return (
                payload.get("model"),
                payload.get("dataset"),
                payload.get("accelerator"),
            )
        if op in ("execute", "execute_bulk"):
            spec = payload.get("spec")
            digest = hashlib.sha1(
                json.dumps(spec, sort_keys=True, default=str).encode("utf-8")
            ).hexdigest()
            return ("execute", digest, payload.get("backend"))
        return None

    def _hedge_delay_for(self, address: str) -> float:
        if self.hedge_delay is not None:
            return self.hedge_delay
        return self._router.hedge_delay(
            address, self.hedge_default, self.hedge_floor, self.hedge_ceiling
        )

    # -- pipelined path ------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> PendingReply:
        """Pipeline one envelope to its primary healthy replica.

        Failing over at submit time walks the ring; a connection dying
        *after* the send fails the reply (and the replica's health) -- the
        pipelined path never resends on its own, matching
        :class:`SocketTransport` semantics.  Hedging applies only to the
        blocking :meth:`request` path, where there is a waiter to race.
        """
        reply, _address = self._submit_once(payload, self.routing_key(payload), ())
        return reply  # type: ignore[return-value]

    def _submit_once(
        self,
        payload: Dict[str, Any],
        key: Optional[Tuple],
        exclude: Sequence[str],
    ) -> Tuple["_FleetReply", str]:
        """Send to the first admitted candidate; fail closed when none take it."""
        last_error: Optional[TransportError] = None
        attempts = 0
        for address in self._router.candidates(key):
            if address in exclude:
                continue
            if not self._router.admit(address):
                continue
            attempts += 1
            try:
                transport = self._transport_for(address)
                reply = transport.submit(payload)
            except TransportError as error:
                self._router.record_failure(address)
                last_error = error
                continue
            except ApiError:
                raise  # protocol-level (frame too large): no replica involved
            if attempts > 1:
                with self._lock:
                    self.failovers += 1
            return _FleetReply(self, address, reply), address
        detail = f": last failure: {last_error}" if last_error is not None else ""
        raise NoHealthyReplicaError(
            f"no healthy replica among {list(self._router.addresses)} "
            f"for key {key!r}{detail}"
        ) from last_error

    # -- blocking path -------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        self.retry_policy.record_attempt()
        attempt = 0
        while True:
            envelope = self._dispatch(payload, op)
            retry_after_ms = _overload_error(envelope)
            if retry_after_ms is None:
                return envelope
            # The winning replica shed this request before doing any work.
            # Re-dispatching is safe for every op, but only as the shared
            # budget allows and never before the server's own estimate of
            # when capacity frees up.
            delay = self.retry_policy.next_delay(
                attempt, op, OVERLOADED, retry_after_ms=retry_after_ms
            )
            if delay is None:
                return envelope
            time.sleep(delay)
            attempt += 1

    def _dispatch(self, payload: Dict[str, Any], op: Optional[str]) -> Dict[str, Any]:
        field = _BULK_FIELDS.get(op)
        if field is not None and self.scatter:
            items = payload.get(field)
            if isinstance(items, list) and len(items) > 1:
                return self._scatter_request(payload, field)
        envelope, _address = self._hedged_request(payload)
        return envelope

    def _hedged_request(
        self,
        payload: Dict[str, Any],
        exclude: Sequence[str] = (),
        deadline: Optional[float] = None,
    ) -> Tuple[Dict[str, Any], str]:
        """Dispatch one envelope with hedging; returns (response, winner).

        One reply starts on the primary; once its hedge delay elapses a
        second copy goes to the next ring candidate and both race.  A reply
        failing (its connection died) feeds the breaker and frees its slot
        for the next candidate.  Runs until a response envelope arrives,
        the candidate set is exhausted (``NoHealthyReplicaError``), or the
        deadline passes.
        """
        key = self.routing_key(payload)
        if deadline is None:
            deadline = self._clock() + self.timeout
        tried: List[str] = list(exclude)
        inflight: List[_FleetReply] = []
        hedged = not self.hedge
        last_error: Optional[TransportError] = None

        def _launch() -> bool:
            nonlocal last_error
            try:
                reply, address = self._submit_once(payload, key, tried)
            except NoHealthyReplicaError as error:
                last_error = error
                return False
            tried.append(address)
            inflight.append(reply)
            return True

        _launch_ok = _launch()
        if not _launch_ok:
            raise last_error  # type: ignore[misc]  -- set by _launch
        primary = inflight[0]
        while True:
            # Collect any finished reply; first response envelope wins.
            for reply in list(inflight):
                if not reply.done():
                    continue
                try:
                    value = reply.result(0)
                except TransportError as error:
                    last_error = error
                    inflight.remove(reply)
                    continue
                if reply is not primary:
                    with self._lock:
                        self.hedge_wins += 1
                for loser in inflight:
                    if loser is not reply:
                        loser.abandon()
                return value, reply.address
            now = self._clock()
            if now >= deadline:
                for reply in inflight:
                    reply.abandon()
                raise TransportError(
                    f"fleet request timed out after {self.timeout}s "
                    f"(tried {tried})"
                )
            if not inflight:
                # Everything in flight failed *after* its frame was sent --
                # an ambiguous failure: the op may already have run on the
                # dead replica.  Failing over re-sends, which the retry
                # discipline forbids for non-idempotent execute ops.
                op = payload.get("op")
                if op in NON_IDEMPOTENT_OPS:
                    self.retry_policy.next_delay(0, op, AMBIGUOUS)  # counted
                    raise TransportError(
                        f"ambiguous failure for non-idempotent op {op!r} "
                        f"(tried {tried}); not re-sent: {last_error}"
                    ) from last_error
                # Idempotent ops move to the next candidate.
                if not _launch():
                    raise NoHealthyReplicaError(
                        f"no healthy replica left for key {key!r} "
                        f"(tried {tried}): {last_error}"
                    ) from last_error
                continue
            if not hedged and now - primary._started >= self._hedge_delay_for(
                primary.address
            ):
                hedged = True
                if _launch():
                    with self._lock:
                        self.hedges_issued += 1
                continue
            if len(inflight) == 1 and not hedged:
                # Sleep until the hedge would fire (or the deadline).
                hedge_at = primary._started + self._hedge_delay_for(primary.address)
                inflight[0].wait(max(0.0, min(hedge_at, deadline) - now))
            else:
                # Racing replies: watch the first, poll the rest.
                inflight[0].wait(_POLL_INTERVAL)

    # -- scatter-gather ------------------------------------------------------

    def _scatter_request(self, payload: Dict[str, Any], field: str) -> Dict[str, Any]:
        """Split a bulk envelope across healthy shards; gather in order."""
        items = payload[field]
        key = self.routing_key(payload)
        deadline = self._clock() + self.timeout
        shards = self._router.healthy_shards(key)
        if len(shards) < 2:
            envelope, _address = self._hedged_request(payload, deadline=deadline)
            return envelope
        shards = shards[: len(items)]
        with self._lock:
            self.scatter_requests += 1

        # Contiguous, balanced slices: shard i takes base(+1) items.
        base, extra = divmod(len(items), len(shards))
        bounds: List[Tuple[int, int]] = []
        offset = 0
        for index in range(len(shards)):
            size = base + (1 if index < extra else 0)
            bounds.append((offset, offset + size))
            offset += size

        def _sub_payload(lo: int, hi: int) -> Dict[str, Any]:
            sub = dict(payload)
            sub[field] = items[lo:hi]
            # Fresh ids keep a retried slice from colliding with a sibling
            # slice already in flight on the same replica connection.
            sub["request_id"] = next_request_id()
            return sub

        pending: List[Optional[_FleetReply]] = []
        for (lo, hi), address in zip(bounds, shards):
            try:
                reply, _addr = self._submit_to(address, _sub_payload(lo, hi))
            except TransportError:
                reply = None  # collected below via the retry path
            pending.append(reply)

        op = payload.get("op")
        responses: List[Optional[Dict[str, Any]]] = [None] * len(bounds)
        for index, reply in enumerate(pending):
            lo, hi = bounds[index]
            envelope: Optional[Dict[str, Any]] = None
            slice_error: Optional[TransportError] = None
            if reply is not None:
                try:
                    envelope = reply.result(max(0.0, deadline - self._clock()))
                except TransportError as error:
                    envelope = None
                    slice_error = error
            if envelope is None and slice_error is not None and op in NON_IDEMPOTENT_OPS:
                # The slice was sent and its shard died before replying --
                # ambiguous: the groups may already have executed there.
                self.retry_policy.next_delay(0, op, AMBIGUOUS)  # counted
                raise TransportError(
                    f"ambiguous failure for non-idempotent op {op!r} on "
                    f"scatter slice [{lo}:{hi}]; not re-sent: {slice_error}"
                ) from slice_error
            if envelope is None:
                # The shard died under this slice (or never took it):
                # re-dispatch on the survivors, hedged, same deadline.
                with self._lock:
                    self.scatter_retries += 1
                envelope, _addr = self._hedged_request(
                    _sub_payload(lo, hi), deadline=deadline
                )
            responses[index] = envelope

        return self._combine(payload, responses)

    def _submit_to(
        self, address: str, payload: Dict[str, Any]
    ) -> Tuple["_FleetReply", str]:
        """Pipeline one sub-envelope to a specific shard (health-gated)."""
        if not self._router.admit(address):
            raise TransportError(
                f"shard {address} stopped admitting", address=address
            )
        try:
            reply = self._transport_for(address).submit(payload)
        except TransportError as error:
            self._router.record_failure(address)
            raise error
        return _FleetReply(self, address, reply), address

    @staticmethod
    def _combine(
        payload: Dict[str, Any], responses: Sequence[Optional[Dict[str, Any]]]
    ) -> Dict[str, Any]:
        """Reassemble shard responses in request order.

        Any shard answering with an error envelope fails the whole bulk
        (exactly what a single server does when one item is bad); its
        envelope is surfaced under the original ``request_id``.
        """
        for envelope in responses:
            if envelope is None:
                raise TransportError("scatter shard produced no response")
            if envelope.get("ok") is False or envelope.get("op") == "error":
                combined = dict(envelope)
                combined["request_id"] = payload.get("request_id")
                return combined
        first = responses[0]
        combined = dict(first)
        combined["request_id"] = payload.get("request_id")
        results: List[Any] = []
        for envelope in responses:
            results.extend(envelope.get("results") or [])
        combined["results"] = results
        return combined

    # -- lifecycle -----------------------------------------------------------

    def wait_until_ready(self, timeout: float = 10.0, poll_interval: float = 0.1) -> None:
        """Block until at least one replica accepts connections."""
        deadline = time.monotonic() + timeout
        last_error: Optional[BaseException] = None
        while True:
            for address in self._router.addresses:
                transport = self._transport_for(address)
                waiter = getattr(transport, "wait_until_ready", None)
                try:
                    if waiter is not None:
                        waiter(timeout=poll_interval, poll_interval=poll_interval)
                    return
                except TransportError as error:
                    last_error = error
            if time.monotonic() >= deadline:
                raise NoHealthyReplicaError(
                    f"no replica of {list(self._router.addresses)} became "
                    f"ready within {timeout}s: {last_error}"
                ) from last_error

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            transports, self._transports = list(self._transports.values()), {}
        for transport in transports:
            transport.close()


register_transport("fleet", FleetTransport)
