"""`FleetRouter`: consistent-hash candidate selection gated by health.

The router owns the two membership-wide structures -- the
:class:`~repro.fleet.ring.HashRing` and one
:class:`~repro.fleet.health.ReplicaHealth` per replica -- and answers the
dispatch-time questions of the fleet transport:

* :meth:`candidates` -- every replica ordered by ring distance from a key
  (primary first, then the hedging/failover order),
* :meth:`admit` / :meth:`peek` -- the breaker gate for one replica,
* :meth:`hedge_delay` -- the p99-derived delay before re-issuing a
  straggling request to the next candidate,
* :meth:`record_success` / :meth:`record_failure` -- outcome feedback.

Membership is dynamic: :meth:`add_replica` / :meth:`remove_replica` keep
ring and health map in lockstep (the supervisor calls them when a replica
restarts on a fresh port).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.fleet.health import BreakerConfig, ReplicaHealth
from repro.fleet.ring import HashRing, RingKey


class FleetRouter:
    """Health-gated consistent-hash routing over a replica set."""

    def __init__(
        self,
        addresses,
        vnodes: int = 64,
        breaker: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        addresses = list(addresses)
        if not addresses:
            raise ValueError("a fleet needs at least one replica address")
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate replica addresses: {addresses!r}")
        self._breaker = breaker if breaker is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._ring = HashRing(addresses, vnodes=vnodes)
        self._health: Dict[str, ReplicaHealth] = {
            address: ReplicaHealth(address, self._breaker, clock)
            for address in addresses
        }

    # -- membership ----------------------------------------------------------

    @property
    def addresses(self):
        """Member addresses in join order."""
        with self._lock:
            return self._ring.replicas

    def add_replica(self, address: str) -> None:
        """Join a replica: ring points added, fresh (closed) health."""
        with self._lock:
            self._ring.add(address)
            self._health[address] = ReplicaHealth(address, self._breaker, self._clock)

    def remove_replica(self, address: str) -> None:
        """Leave a replica: its keys scatter over the survivors."""
        with self._lock:
            self._ring.remove(address)
            del self._health[address]

    def health(self, address: str) -> ReplicaHealth:
        """The health tracker of one member replica."""
        with self._lock:
            return self._health[address]

    # -- dispatch questions --------------------------------------------------

    def candidates(self, key: Optional[RingKey]) -> List[str]:
        """Replicas in dispatch-preference order for ``key``.

        ``None`` (un-keyed ops: ping, telemetry, hello) preserves join
        order -- deterministic, and the health gate still applies at
        :meth:`admit` time.
        """
        with self._lock:
            if key is None:
                return list(self._ring.replicas)
            return self._ring.candidates(key)

    def admit(self, address: str) -> bool:
        """Breaker gate (stateful: may consume the half-open probe slot)."""
        health = self._health.get(address)
        return health is not None and health.admit()

    def peek(self, address: str) -> bool:
        """Breaker gate without side effects (scatter-shard planning)."""
        health = self._health.get(address)
        return health is not None and health.peek()

    def healthy_shards(self, key: Optional[RingKey]) -> List[str]:
        """Candidates that would currently be admitted (no side effects)."""
        return [address for address in self.candidates(key) if self.peek(address)]

    def record_success(self, address: str, latency: Optional[float] = None) -> None:
        health = self._health.get(address)
        if health is not None:
            health.record_success(latency)

    def record_failure(self, address: str) -> None:
        health = self._health.get(address)
        if health is not None:
            health.record_failure()

    def hedge_delay(
        self,
        address: str,
        default: float,
        floor: float,
        ceiling: float,
    ) -> float:
        """Seconds to wait on ``address`` before hedging to the next replica.

        The replica's rolling p99 latency, clamped to ``[floor, ceiling]``;
        ``default`` (also clamped) applies while the latency window is too
        small to trust.  Deriving from p99 means a hedge fires only for
        requests already slower than ~99% of this replica's recent traffic.
        """
        health = self._health.get(address)
        p99 = health.latency_percentile(99) if health is not None else None
        delay = default if p99 is None else p99
        return min(max(delay, floor), ceiling)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-replica health rows keyed by address (telemetry)."""
        with self._lock:
            trackers = list(self._health.values())
        return {tracker.address: tracker.snapshot() for tracker in trackers}
