"""Launch and supervise N local `NormServer` replicas as subprocesses.

Each replica is one ``haan-serve --listen 127.0.0.1:0`` process
(:mod:`repro.serving.cli`): its own interpreter, its own
``CalibrationRegistry``, its own worker pool -- a real failure domain, so
killing one exercises exactly what the fleet's health/failover layer must
absorb.  The supervisor parses the server's startup line
(``haan-serve: listening on HOST:PORT ...``, printed with ``flush=True``
precisely so supervisors can do this) to learn the ephemeral port.

Supervision is pull-based: :meth:`FleetSupervisor.poll` reaps dead
replicas and (when ``restart=True``) launches replacements on fresh
ports, reporting ``(old_address, new_address)`` pairs so the caller can
update its :class:`~repro.fleet.transport.FleetTransport` membership.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

_STARTUP_MARKER = "listening on "


class ReplicaProcess:
    """One supervised ``haan-serve --listen`` subprocess."""

    def __init__(
        self,
        model: str = "tiny",
        dataset: str = "default",
        workers: int = 8,
        max_inflight: int = 32,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        registry_capacity: int = 4,
        host: str = "127.0.0.1",
        extra_args: Sequence[str] = (),
        startup_timeout: float = 60.0,
    ):
        self.model = model
        self.dataset = dataset
        self.startup_timeout = startup_timeout
        self.address: Optional[str] = None
        #: Recent output lines (diagnostics when a replica dies).
        self.output: Deque[str] = deque(maxlen=200)
        self._argv = [
            sys.executable,
            "-m",
            "repro.serving.cli",
            "--model",
            model,
            "--dataset",
            dataset,
            "--listen",
            f"{host}:0",
            "--workers",
            str(workers),
            "--max-inflight",
            str(max_inflight),
            "--max-batch-size",
            str(max_batch_size),
            "--max-wait-ms",
            str(max_wait_ms),
            "--registry-capacity",
            str(registry_capacity),
            *extra_args,
        ]
        self._process: Optional[subprocess.Popen] = None
        self._drain: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        """Launch the process; blocks until it prints its listen address."""
        if self._process is not None:
            raise RuntimeError("replica already started")
        self._process = subprocess.Popen(
            self._argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + self.startup_timeout
        stdout = self._process.stdout
        assert stdout is not None
        while True:
            line = stdout.readline()
            if line:
                self.output.append(line.rstrip())
                if _STARTUP_MARKER in line:
                    after = line.split(_STARTUP_MARKER, 1)[1]
                    self.address = after.split()[0].strip()
                    break
            elif self._process.poll() is not None:
                raise RuntimeError(
                    "replica exited before listening; last output:\n"
                    + "\n".join(self.output)
                )
            if time.monotonic() > deadline:
                self.kill()
                raise RuntimeError(
                    f"replica did not start within {self.startup_timeout}s"
                )
        # Keep draining in the background so the pipe never fills and the
        # shutdown telemetry stays available for diagnostics.
        self._drain = threading.Thread(
            target=self._drain_loop, name="haan-fleet-replica-out", daemon=True
        )
        self._drain.start()
        return self.address

    def _drain_loop(self) -> None:
        stdout = self._process.stdout if self._process else None
        if stdout is None:
            return
        for line in stdout:
            self.output.append(line.rstrip())

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def stop(self, timeout: float = 10.0) -> Optional[int]:
        """SIGTERM (clean shutdown path), escalating to SIGKILL on timeout."""
        if self._process is None:
            return None
        if self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()
        return self._process.poll()

    def kill(self) -> None:
        """SIGKILL: the abrupt mid-run death the fleet must survive."""
        if self._process is not None and self._process.poll() is None:
            self._process.kill()
            try:
                self._process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass


class FleetSupervisor:
    """Own N replica processes; restart the dead; report the churn."""

    def __init__(
        self,
        replicas: int,
        restart: bool = True,
        **replica_kwargs,
    ):
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        self._count = replicas
        self._restart = restart
        self._kwargs = replica_kwargs
        self._replicas: List[ReplicaProcess] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> List[str]:
        """Launch every replica; returns their addresses."""
        if self._replicas:
            raise RuntimeError("supervisor already started")
        for _ in range(self._count):
            replica = ReplicaProcess(**self._kwargs)
            replica.start()
            self._replicas.append(replica)
        return self.addresses()

    def addresses(self) -> List[str]:
        return [replica.address for replica in self._replicas if replica.address]

    def replica(self, index: int) -> ReplicaProcess:
        return self._replicas[index]

    def poll(self) -> List[Tuple[str, Optional[str]]]:
        """Reap dead replicas; returns ``(old_address, new_address)`` churn.

        With ``restart=False`` (or when closing) the new address is None:
        the replica is simply gone and the caller should drop it from the
        router.  Restarted replicas come back on a *fresh* ephemeral port
        -- deliberately: address reuse would mask stale-connection bugs.
        """
        events: List[Tuple[str, Optional[str]]] = []
        for index, replica in enumerate(self._replicas):
            if replica.alive or replica.address is None:
                continue
            old_address = replica.address
            if self._restart and not self._closed:
                replacement = ReplicaProcess(**self._kwargs)
                replacement.start()
                self._replicas[index] = replacement
                events.append((old_address, replacement.address))
            else:
                replica.address = None
                events.append((old_address, None))
        return events

    def close(self) -> None:
        self._closed = True
        for replica in self._replicas:
            replica.stop()

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
