"""Per-replica health: rolling outcome/latency windows + circuit breaker.

Every replica gets one :class:`ReplicaHealth`.  The fleet transport records
an outcome for each dispatch -- success with its latency, or a transport
failure -- and the tracker runs a three-state circuit breaker over them:

* **closed** -- healthy; the replica takes traffic.
* **open** -- ejected after ``failure_threshold`` *consecutive* transport
  failures; no traffic until ``cooldown`` seconds pass.
* **half-open** -- cooldown elapsed: exactly **one** probe request is
  admitted.  Success readmits (back to closed, streak reset); failure
  re-opens with a fresh cooldown.

Only transport-level failures count against a replica: an *error envelope*
(unknown model, bad schema, ...) is a healthy server answering a bad
request, and must not eject it.

The latency window feeds the hedging policy: the router derives the hedge
delay from a replica's rolling p99, so hedges fire only for genuine
stragglers instead of doubling all traffic.

The clock is injectable (``clock=time.monotonic`` by default) so breaker
tests step time deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

import numpy as np

#: Breaker states (plain strings: they travel in telemetry snapshots).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one replica's health tracking."""

    #: Rolling outcome/latency window length (requests).
    window: int = 128
    #: Consecutive transport failures that open the breaker.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before admitting a half-open probe.
    cooldown: float = 2.0
    #: Latency samples required before percentiles are considered known.
    min_latency_samples: int = 8

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.min_latency_samples < 1:
            raise ValueError("min_latency_samples must be at least 1")


class ReplicaHealth:
    """Health state of one replica (thread-safe)."""

    def __init__(
        self,
        address: str,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.address = address
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._latencies: Deque[float] = deque(maxlen=self.config.window)
        self.successes = 0
        self.failures = 0
        self.consecutive_failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False

    # -- state ---------------------------------------------------------------

    def _refresh_locked(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.config.cooldown
        ):
            self._state = HALF_OPEN
            self._probe_inflight = False

    @property
    def state(self) -> str:
        """Current breaker state (cooldown expiry applied lazily)."""
        with self._lock:
            self._refresh_locked()
            return self._state

    def admit(self) -> bool:
        """Whether a request may be dispatched **now** (stateful).

        Closed admits freely.  Half-open admits exactly one caller -- the
        probe slot is consumed here, so concurrent callers cannot stampede
        a barely-recovered replica; the slot frees when the probe's outcome
        is recorded (or another path records for this replica).
        """
        with self._lock:
            self._refresh_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def peek(self) -> bool:
        """Whether a request *could* be admitted now (no side effects).

        The scatter planner uses this to choose shards without consuming
        half-open probe slots for shards it may not pick.
        """
        with self._lock:
            self._refresh_locked()
            if self._state == CLOSED:
                return True
            return self._state == HALF_OPEN and not self._probe_inflight

    # -- outcomes ------------------------------------------------------------

    def record_success(self, latency: Optional[float] = None) -> None:
        """A dispatch to this replica got a response envelope back."""
        with self._lock:
            self._outcomes.append(True)
            self.successes += 1
            self.consecutive_failures = 0
            if latency is not None and latency >= 0:
                self._latencies.append(latency)
            # Readmission: a half-open probe succeeding (or any success
            # racing the breaker) closes it and clears the probe slot.
            self._state = CLOSED
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A dispatch to this replica failed at the transport level."""
        with self._lock:
            self._refresh_locked()
            self._outcomes.append(False)
            self.failures += 1
            self.consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self.consecutive_failures >= self.config.failure_threshold
            ):
                # A failed probe re-opens immediately; a closed replica
                # opens once the consecutive-failure threshold is crossed.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False

    # -- derived -------------------------------------------------------------

    def latency_percentile(self, percentile: float) -> Optional[float]:
        """Rolling latency percentile, or None below ``min_latency_samples``."""
        with self._lock:
            if len(self._latencies) < self.config.min_latency_samples:
                return None
            return float(np.percentile(np.asarray(self._latencies), percentile))

    def failure_rate(self) -> float:
        """Failure fraction over the rolling outcome window (0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - (sum(self._outcomes) / len(self._outcomes))

    def snapshot(self) -> Dict[str, object]:
        """Telemetry row of this replica."""
        p50 = self.latency_percentile(50)
        p99 = self.latency_percentile(99)
        with self._lock:
            self._refresh_locked()
            return {
                "address": self.address,
                "state": self._state,
                "successes": self.successes,
                "failures": self.failures,
                "consecutive_failures": self.consecutive_failures,
                "window": len(self._outcomes),
                "failure_rate": (
                    1.0 - (sum(self._outcomes) / len(self._outcomes))
                    if self._outcomes
                    else 0.0
                ),
                "latency_p50": p50,
                "latency_p99": p99,
            }

    def __repr__(self) -> str:
        return f"ReplicaHealth({self.address!r}, state={self.state!r})"
