"""Reproduction of HAAN (DATE 2025): accelerating normalization in LLMs.

Package layout
--------------

* :mod:`repro.numerics` -- fixed-point / floating-point formats, FP<->FX
  converters, fast inverse square root, quantization.
* :mod:`repro.llm` -- the NumPy LLM substrate (transformer engine, model
  zoo, tokenizer, synthetic corpora and tasks).
* :mod:`repro.core` -- the HAAN algorithm: ISD skipping (Algorithm 1),
  log-linear ISD prediction, subsampling, the HAAN normalization layer and
  the calibration pipeline.
* :mod:`repro.hardware` -- the HAAN accelerator model (datapath units,
  memory layout, pipeline, FPGA resource/power models) and the DFX / SOLE /
  MHAA / GPU baselines.
* :mod:`repro.eval` -- accuracy, perplexity, latency-breakdown and
  end-to-end harnesses plus the experiment registry mapping every table and
  figure of the paper to a callable.
* :mod:`repro.serving` -- the online serving runtime: dynamic
  micro-batching of normalization requests, the calibration artifact
  registry, telemetry, and the ``haan-serve`` CLI.
* :mod:`repro.api` -- the versioned public client/server API:
  ``NormClient`` with in-process and socket transports, ``NormServer``
  (``haan-serve --listen``), the wire envelopes, and the ``haan-client``
  CLI; the engine's ``remote`` backend rides the same protocol.
"""

__version__ = "1.2.0"

__all__ = ["numerics", "llm", "core", "hardware", "eval", "serving", "api", "__version__"]
