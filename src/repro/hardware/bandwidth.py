"""Memory-bandwidth and roofline analysis of the normalization workload.

Normalization is a famously memory-bound operation: every element is read
once, a handful of arithmetic operations happen, and every element is
written back.  Whether the HAAN accelerator can actually sustain its
datapath width therefore depends on the memory system of the Alveo U280
(HBM2 + DDR4) feeding it.  This module provides:

* :class:`MemorySystem` -- bandwidth/latency description of the U280's HBM
  and DDR channels (and a configurable custom system);
* :class:`BandwidthReport` -- bytes moved, arithmetic intensity, the
  roofline-limited throughput and whether the accelerator is compute- or
  memory-bound for a given configuration and workload;
* :func:`roofline_analysis` -- the headline helper used by the design-space
  exploration and the ablation benchmarks.

The subsampling optimization of the paper shows up directly here: statistics
reads shrink by the subsample factor, raising arithmetic intensity for the
statistics pass while the normalization pass stays streaming-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.configs import AcceleratorConfig
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind


@dataclass(frozen=True)
class MemorySystem:
    """Bandwidth description of the memory feeding the accelerator.

    Attributes
    ----------
    name:
        Label used in reports.
    bandwidth_gbps:
        Sustained bandwidth in gigabytes per second.
    access_latency_ns:
        Latency of the first beat of a burst (pipelined afterwards).
    """

    name: str
    bandwidth_gbps: float
    access_latency_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def bytes_per_second(self) -> float:
        """Bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9


#: Alveo U280 HBM2 stacks (8 GB, 32 pseudo-channels): ~460 GB/s sustained.
U280_HBM = MemorySystem(name="u280-hbm2", bandwidth_gbps=460.0, access_latency_ns=120.0)

#: Alveo U280 DDR4 channels: ~38 GB/s sustained.
U280_DDR4 = MemorySystem(name="u280-ddr4", bandwidth_gbps=38.0, access_latency_ns=90.0)


@dataclass
class BandwidthReport:
    """Roofline summary of one workload on one configuration."""

    config_name: str
    memory_system: str
    bytes_read: float
    bytes_written: float
    arithmetic_ops: float
    compute_throughput_ops: float
    memory_bound_throughput_ops: float

    @property
    def total_bytes(self) -> float:
        """Total data movement in bytes."""
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte of traffic."""
        if self.total_bytes == 0:
            return 0.0
        return self.arithmetic_ops / self.total_bytes

    @property
    def attainable_throughput_ops(self) -> float:
        """Roofline-limited throughput (ops per second)."""
        return min(self.compute_throughput_ops, self.memory_bound_throughput_ops)

    @property
    def memory_bound(self) -> bool:
        """Whether memory bandwidth, not the datapath, limits throughput."""
        return self.memory_bound_throughput_ops < self.compute_throughput_ops

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the memory bandwidth needed to keep the datapath busy.

        Greater than one means the datapath will stall on memory.
        """
        if self.memory_bound_throughput_ops == 0:
            return float("inf")
        return self.compute_throughput_ops / self.memory_bound_throughput_ops


def element_bytes(config: AcceleratorConfig) -> int:
    """Storage bytes per element for a configuration's data format."""
    return config.data_format.bytes


def workload_traffic(config: AcceleratorConfig, workload: NormalizationWorkload) -> tuple[float, float]:
    """(bytes read, bytes written) of one forward pass of normalization.

    Reads cover the statistics pass over the (subsampled) prefix of each
    non-skipped layer plus the full row for the normalization pass of every
    layer; writes cover every normalized output element.  Skipped RMSNorm
    layers avoid the statistics read entirely; skipped LayerNorm layers
    still read the prefix for the mean, as in the paper.
    """
    bytes_per_element = element_bytes(config)
    rows = workload.rows_per_layer
    full = workload.embedding_dim
    effective = workload.effective_stats_length
    needs_mean = workload.norm_kind is NormKind.LAYERNORM

    stats_layers = workload.num_computed_layers + (
        workload.num_skipped_layers if needs_mean else 0
    )
    stats_reads = rows * effective * stats_layers
    norm_reads = rows * full * workload.num_norm_layers
    writes = rows * full * workload.num_norm_layers
    return (
        float((stats_reads + norm_reads) * bytes_per_element),
        float(writes * bytes_per_element),
    )


def workload_arithmetic_ops(workload: NormalizationWorkload) -> float:
    """Arithmetic operations (mul + add) of one forward pass of normalization."""
    rows = workload.rows_per_layer
    full = workload.embedding_dim
    effective = workload.effective_stats_length
    stats_ops = rows * effective * 3 * workload.num_computed_layers
    norm_ops = rows * full * 4 * workload.num_norm_layers
    isd_ops = rows * 8 * workload.num_computed_layers
    return float(stats_ops + norm_ops + isd_ops)


def datapath_throughput_ops(config: AcceleratorConfig) -> float:
    """Peak arithmetic throughput of a configuration (ops per second).

    Each statistics lane performs ~3 ops per cycle (square, scale, add) and
    each normalization lane ~4 (subtract, two multiplies, add); the clock is
    the configuration's operating frequency.
    """
    ops_per_cycle = 3 * config.stats_width + 4 * config.norm_width
    return ops_per_cycle * config.num_pipelines * config.clock_mhz * 1e6


def roofline_analysis(
    config: AcceleratorConfig,
    workload: NormalizationWorkload,
    memory: MemorySystem = U280_HBM,
) -> BandwidthReport:
    """Roofline analysis of one configuration on one workload."""
    bytes_read, bytes_written = workload_traffic(config, workload)
    ops = workload_arithmetic_ops(workload)
    intensity = ops / (bytes_read + bytes_written) if (bytes_read + bytes_written) else 0.0
    return BandwidthReport(
        config_name=config.name,
        memory_system=memory.name,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        arithmetic_ops=ops,
        compute_throughput_ops=datapath_throughput_ops(config),
        memory_bound_throughput_ops=intensity * memory.bytes_per_second,
    )
