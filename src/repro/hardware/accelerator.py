"""Top-level HAAN accelerator model (paper Section IV, Figure 3).

:class:`HaanAccelerator` assembles the datapath units, the memory layout,
the row-level pipeline, the FPGA resource estimator and the power model
into one object with two faces:

* a **functional** face -- :meth:`normalize_rows` runs real data through the
  hardware-accurate numeric path (FP2FX conversion, fixed-point statistics,
  fast inverse square root, fixed-point normalization), so tests can check
  the accelerator output against the reference LayerNorm/RMSNorm; and
* an **analytical** face -- :meth:`layer_schedule`, :meth:`workload_latency`
  and :meth:`power` turn a :class:`~repro.hardware.workload.NormalizationWorkload`
  into cycle counts, seconds, occupancies and watts, which is what the
  Figures 8/9 and Table III benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.predictor import IsdPredictor
from repro.hardware.configs import AcceleratorConfig, HAAN_V1
from repro.hardware.memory import MemoryLayout
from repro.hardware.pipeline import PipelineModel, PipelineSchedule, PipelineStage
from repro.hardware.power import PowerModel, PowerReport, TABLE3_POWER_SEQ_LENS
from repro.hardware.resources import ResourceEstimate, ResourceModel
from repro.hardware.units import (
    InputStatisticsCalculator,
    IsdPredictorUnit,
    NormalizationUnit,
    SquareRootInverter,
)
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind


@dataclass
class LatencyReport:
    """Latency estimate of one workload on one accelerator configuration."""

    config_name: str
    workload: NormalizationWorkload
    total_cycles: int
    latency_seconds: float
    computed_layer_cycles: int
    skipped_layer_cycles: int
    stats_utilization: float
    norm_utilization: float
    bottleneck_stage: str
    per_layer_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_us(self) -> float:
        """Latency in microseconds."""
        return self.latency_seconds * 1e6

    @property
    def throughput_rows_per_second(self) -> float:
        """Normalized vectors per second."""
        if self.latency_seconds == 0:
            return 0.0
        return self.workload.total_rows / self.latency_seconds


class HaanAccelerator:
    """Functional and analytical model of one HAAN accelerator instance."""

    def __init__(self, config: AcceleratorConfig = HAAN_V1):
        self.config = config
        self.stats_calculator = InputStatisticsCalculator(
            width=config.stats_width, data_format=config.data_format
        )
        self.sqrt_inverter = SquareRootInverter(latency=config.inv_sqrt_latency)
        self.norm_unit = NormalizationUnit(width=config.norm_width, data_format=config.data_format)
        self.predictor_unit = IsdPredictorUnit(latency=config.predictor_latency)
        self.memory = MemoryLayout(entry_width=config.stats_width, data_format=config.data_format)
        self.resource_model = ResourceModel()
        self.power_model = PowerModel()

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def load_predictor(self, predictor: IsdPredictor) -> None:
        """Load ISD-predictor coefficients into the scalar predictor unit."""
        self.predictor_unit.load(predictor)

    def normalize_rows(
        self,
        rows: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        norm_kind: NormKind = NormKind.LAYERNORM,
        subsample_length: Optional[int] = None,
        predicted_isd: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Normalize a ``(num_rows, D)`` array through the hardware datapath.

        When ``predicted_isd`` is given the square-root inverter is bypassed
        (the ISD-skipping path); otherwise the statistics calculator and the
        fast inverse square root produce the ISD, optionally from a
        subsampled input.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        self.memory.record_read(arr.size)
        compute_mean = norm_kind is NormKind.LAYERNORM
        self.stats_calculator.compute_mean = compute_mean
        stats = self.stats_calculator.compute(arr, subsample_length=subsample_length)
        mean = stats.mean if compute_mean else np.zeros(arr.shape[0])
        if predicted_isd is not None:
            isd = np.asarray(predicted_isd, dtype=np.float64)
            if isd.shape[0] != arr.shape[0]:
                raise ValueError("predicted_isd must have one value per row")
        else:
            isd = self.sqrt_inverter.compute(stats.variance)
        out = self.norm_unit.normalize(arr, mean, isd, np.asarray(gamma), np.asarray(beta))
        self.memory.record_write(out.size)
        return out

    # ------------------------------------------------------------------
    # Cycle / latency model
    # ------------------------------------------------------------------

    def _layer_pipeline(self, workload: NormalizationWorkload, skipped: bool) -> PipelineModel:
        """Build the three-stage pipeline of one normalization layer."""
        full_length = workload.embedding_dim
        needs_mean = workload.norm_kind is NormKind.LAYERNORM
        if skipped:
            # ISD is predicted: no variance accumulation and no square-root
            # inversion.  LayerNorm still needs the (subsampled) mean.
            stats_cycles = (
                self.stats_calculator.passes_per_row(full_length, workload.subsample_length)
                if needs_mean
                else 0
            )
            isd_stage = PipelineStage(
                name="isd-predict",
                cycles_per_row=1,
                fill_latency=self.config.predictor_latency,
            )
        else:
            stats_cycles = self.stats_calculator.passes_per_row(
                full_length, workload.subsample_length
            )
            isd_stage = PipelineStage(
                name="inv-sqrt",
                cycles_per_row=1,
                fill_latency=self.config.inv_sqrt_latency,
            )
        stages = [
            PipelineStage(name="stats", cycles_per_row=stats_cycles, fill_latency=2),
            isd_stage,
            PipelineStage(
                name="normalize",
                cycles_per_row=self.norm_unit.passes_per_row(full_length),
                fill_latency=1,
            ),
        ]
        return PipelineModel(stages)

    def layer_schedule(self, workload: NormalizationWorkload, skipped: bool = False) -> PipelineSchedule:
        """Pipeline schedule of one normalization layer of the workload."""
        pipeline = self._layer_pipeline(workload, skipped)
        rows = workload.rows_per_layer
        # Multiple pipelines split the rows evenly.
        rows_per_pipeline = int(np.ceil(rows / self.config.num_pipelines))
        return pipeline.schedule(rows_per_pipeline)

    def workload_latency(self, workload: NormalizationWorkload) -> LatencyReport:
        """Total normalization latency of a forward pass."""
        computed_schedule = self.layer_schedule(workload, skipped=False)
        skipped_schedule = self.layer_schedule(workload, skipped=True)
        computed_cycles = computed_schedule.total_cycles * workload.num_computed_layers
        skipped_cycles = skipped_schedule.total_cycles * workload.num_skipped_layers
        total_cycles = computed_cycles + skipped_cycles
        seconds = total_cycles * self.config.cycle_time_ns * 1e-9
        return LatencyReport(
            config_name=self.config.name,
            workload=workload,
            total_cycles=int(total_cycles),
            latency_seconds=seconds,
            computed_layer_cycles=int(computed_cycles),
            skipped_layer_cycles=int(skipped_cycles),
            stats_utilization=computed_schedule.utilization.get("stats", 0.0),
            norm_utilization=computed_schedule.utilization.get("normalize", 0.0),
            bottleneck_stage=computed_schedule.bottleneck_stage,
            per_layer_cycles={
                "computed": computed_schedule.total_cycles,
                "skipped": skipped_schedule.total_cycles,
            },
        )

    # ------------------------------------------------------------------
    # Power and resources
    # ------------------------------------------------------------------

    def occupancy(self, workload: NormalizationWorkload) -> float:
        """Lane-weighted pipeline occupancy of a workload (drives dynamic power)."""
        schedule = self.layer_schedule(workload, skipped=False)
        stats_occ = schedule.utilization.get("stats", 0.0)
        norm_occ = schedule.utilization.get("normalize", 0.0)
        freed = max(0, self.config.norm_width - self.config.stats_width)
        weights = self.config.stats_width + self.config.norm_width + freed
        weighted = (
            self.config.stats_width * stats_occ
            + (self.config.norm_width + freed) * norm_occ
        )
        return weighted / weights if weights else 0.0

    def power(self, workload: NormalizationWorkload) -> PowerReport:
        """Power estimate on one workload."""
        return self.power_model.estimate(self.config, occupancy=self.occupancy(workload))

    def table3_power(self, workload: NormalizationWorkload, seq_lens=TABLE3_POWER_SEQ_LENS) -> PowerReport:
        """Average power over the Table III sequence lengths (16 / 128 / 256)."""
        occupancies = [self.occupancy(workload.with_seq_len(seq)) for seq in seq_lens]
        return self.power_model.average_over_occupancies(self.config, occupancies)

    def resources(self) -> ResourceEstimate:
        """FPGA resource estimate of this configuration."""
        return self.resource_model.estimate(self.config)

    def energy(self, workload: NormalizationWorkload) -> float:
        """Energy (joules) to execute one workload."""
        report = self.workload_latency(workload)
        power = self.power(workload)
        return self.power_model.energy_joules(power, report.latency_seconds)
