"""Normalization workload descriptions.

A *workload* captures everything the latency/power models need to know
about the normalization work of one LLM forward pass: the embedding
dimension the accelerator normalizes over, how many normalization layers
the model contains, how many of them HAAN skips, the subsample length, and
the number of vectors (tokens) per layer.

Workloads are built either directly or from a
:class:`~repro.llm.config.ModelConfig` plus a
:class:`~repro.core.config.HaanConfig`, so the hardware experiments use the
same model zoo and HAAN settings as the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import HaanConfig
from repro.llm.config import ModelConfig, NormKind, get_model_config


@dataclass(frozen=True)
class NormalizationWorkload:
    """The normalization work of one forward pass.

    Attributes
    ----------
    model_name:
        Source model label, for reporting.
    embedding_dim:
        Vector length each normalization operates on (the real model's
        hidden size -- 4096 for LLaMA-7B etc.).
    num_norm_layers:
        Total normalization layers executed per forward pass.
    num_skipped_layers:
        Layers whose ISD is predicted (no statistics / square-root work).
    seq_len / batch_size:
        Tokens per sequence and sequences per batch; each token is one
        vector per layer.
    norm_kind:
        LayerNorm or RMSNorm (RMSNorm needs no mean path).
    subsample_length:
        ``N_sub`` used for the statistics of non-skipped layers, or ``None``
        when subsampling is disabled.
    """

    model_name: str
    embedding_dim: int
    num_norm_layers: int
    seq_len: int
    batch_size: int = 1
    norm_kind: NormKind = NormKind.LAYERNORM
    num_skipped_layers: int = 0
    subsample_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.embedding_dim < 1 or self.num_norm_layers < 1:
            raise ValueError("embedding_dim and num_norm_layers must be positive")
        if self.seq_len < 1 or self.batch_size < 1:
            raise ValueError("seq_len and batch_size must be positive")
        if not 0 <= self.num_skipped_layers <= self.num_norm_layers:
            raise ValueError("num_skipped_layers out of range")
        if self.subsample_length is not None and self.subsample_length < 1:
            raise ValueError("subsample_length must be positive")

    @property
    def rows_per_layer(self) -> int:
        """Vectors normalized per layer (one per token)."""
        return self.seq_len * self.batch_size

    @property
    def num_computed_layers(self) -> int:
        """Layers whose statistics are actually computed."""
        return self.num_norm_layers - self.num_skipped_layers

    @property
    def total_rows(self) -> int:
        """Vectors normalized per forward pass across all layers."""
        return self.rows_per_layer * self.num_norm_layers

    @property
    def total_elements(self) -> int:
        """Elements touched by normalization per forward pass."""
        return self.total_rows * self.embedding_dim

    @property
    def effective_stats_length(self) -> int:
        """Elements per row used for statistics (``N_sub`` or the full row)."""
        if self.subsample_length is None:
            return self.embedding_dim
        return min(self.subsample_length, self.embedding_dim)

    def with_seq_len(self, seq_len: int) -> "NormalizationWorkload":
        """Copy with a different sequence length (used by the sweeps)."""
        return replace(self, seq_len=seq_len)

    def without_optimizations(self) -> "NormalizationWorkload":
        """The same workload with skipping and subsampling disabled.

        This is what the baseline accelerators (and the non-optimized HAAN
        configuration) execute.
        """
        return replace(self, num_skipped_layers=0, subsample_length=None)

    @classmethod
    def from_model(
        cls,
        model_config: ModelConfig,
        seq_len: int,
        haan_config: Optional[HaanConfig] = None,
        batch_size: int = 1,
    ) -> "NormalizationWorkload":
        """Build a workload from a model configuration and HAAN settings."""
        haan_config = haan_config or HaanConfig.disabled()
        num_skipped = min(haan_config.num_skipped_layers(), model_config.num_norm_layers)
        return cls(
            model_name=model_config.name,
            embedding_dim=model_config.hidden_size,
            num_norm_layers=model_config.num_norm_layers,
            seq_len=seq_len,
            batch_size=batch_size,
            norm_kind=model_config.norm_kind,
            num_skipped_layers=num_skipped,
            subsample_length=haan_config.subsample_length,
        )

    @classmethod
    def from_model_name(
        cls,
        model_name: str,
        seq_len: int,
        haan_config: Optional[HaanConfig] = None,
        batch_size: int = 1,
    ) -> "NormalizationWorkload":
        """Build a workload looking up the model by name."""
        return cls.from_model(get_model_config(model_name), seq_len, haan_config, batch_size)
