"""SOLE baseline (Wang et al., ICCAD 2023).

SOLE is a hardware/software co-design of softmax and LayerNorm for
transformer inference.  Its LayerNorm unit computes the statistics with
dynamically compressed intermediates and then normalizes, reusing one wide
datapath for both passes; consecutive tokens overlap at the pass
granularity.  The HAAN paper reproduces SOLE aligned with HAAN's settings
and reports HAAN-v1/v2 being about 1.25x faster on GPT-2 and 1.6x faster on
OPT-2.7B, at slightly lower power.

Model: a 200-lane shared datapath at 100 MHz performing two passes per
vector (statistics + normalization), row-pipelined at the two-pass issue
interval.  The lane count is the calibration constant (chosen so the GPT-2
normalized latency matches the published 1.2-1.35x range); everything else
follows the SOLE architecture description.
"""

from __future__ import annotations

from repro.hardware.baselines.base import FixedFunctionBaseline


class SoleBaseline(FixedFunctionBaseline):
    """SOLE LayerNorm engine model."""

    def __init__(self):
        super().__init__(
            name="SOLE",
            lanes=200,
            passes=2,
            clock_mhz=100.0,
            row_pipelined=True,
            per_row_overhead_cycles=2,
            # Slightly above HAAN-v1's FP16 power (paper: HAAN uses
            # "slightly less power than SOLE").
            nominal_power_w=5.0,
            rms_pass_discount=0,
        )
