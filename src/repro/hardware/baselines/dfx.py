"""DFX baseline (Hong et al., MICRO 2022).

DFX is a multi-FPGA appliance for transformer text generation whose compute
cores execute LayerNorm as a sequence of vector instructions: a mean
reduction, a variance reduction and a normalization pass over the vector,
with no overlap between consecutive tokens.  The paper extracts the
LayerNorm latency share from DFX's published end-to-end numbers and reports
HAAN being roughly an order of magnitude faster (11.7x average) while using
61-64% less power.

Model: a 16-lane vector unit at 200 MHz executing three serial passes per
vector plus a small per-instruction overhead, no row pipelining.  The lane
count / clock are taken from DFX's published compute-core configuration;
the per-row overhead is the single calibration constant (see DESIGN.md).
"""

from __future__ import annotations

from repro.hardware.baselines.base import FixedFunctionBaseline


class DfxBaseline(FixedFunctionBaseline):
    """DFX LayerNorm engine model."""

    def __init__(self):
        super().__init__(
            name="DFX",
            lanes=16,
            passes=3,
            clock_mhz=200.0,
            row_pipelined=False,
            per_row_overhead_cycles=8,
            # DFX's HBM-attached compute core draws considerably more power
            # than a dedicated normalization engine; calibrated to the
            # paper's ">60% power reduction" claim (4.87 W / (1 - 0.61)).
            nominal_power_w=12.5,
            rms_pass_discount=1,
        )
