"""MHAA baseline (Lu et al., SOCC 2020).

MHAA is a hardware accelerator for multi-head attention and the
position-wise feed-forward network; its LayerNorm path processes the
residual stream with a moderately wide datapath that performs the
statistics pass and the normalization pass back to back.  The HAAN paper
reproduces MHAA aligned with HAAN's settings and reports HAAN being about
2.4x faster at slightly lower power.

Model: a 100-lane datapath at 100 MHz, two passes per vector, row-pipelined
at the two-pass issue interval, with a small per-row overhead.  The lane
count is the calibration constant (chosen so the GPT-2 normalized latency
lands at the published ~2.4x); see DESIGN.md.
"""

from __future__ import annotations

from repro.hardware.baselines.base import FixedFunctionBaseline


class MhaaBaseline(FixedFunctionBaseline):
    """MHAA LayerNorm engine model."""

    def __init__(self):
        super().__init__(
            name="MHAA",
            lanes=100,
            passes=2,
            clock_mhz=100.0,
            row_pipelined=True,
            per_row_overhead_cycles=2,
            # Slightly above HAAN-v1's FP16 power (paper Figure 8(a)).
            nominal_power_w=5.1,
            rms_pass_discount=0,
        )
