"""Common machinery of the baseline normalization accelerators.

The paper compares HAAN against DFX (MICRO'22), SOLE (ICCAD'23), MHAA
(SOCC'20) and an A100 GPU.  None of those designs is available as RTL, so
each baseline is modelled structurally -- lanes, passes over the data,
row-level pipelining, clock -- with one documented calibration constant
chosen so the normalized latency at the paper's operating points matches
the published comparison (see DESIGN.md, substitution table, and
EXPERIMENTS.md for paper-vs-model numbers).

Baselines always execute the *un-optimised* workload: no ISD skipping and
no subsampling, because those are HAAN's contributions.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind


@dataclass(frozen=True)
class BaselineLatencyReport:
    """Latency estimate of one baseline on one workload."""

    name: str
    workload: NormalizationWorkload
    cycles_per_row: float
    per_layer_seconds: float
    latency_seconds: float

    @property
    def latency_us(self) -> float:
        """Latency in microseconds."""
        return self.latency_seconds * 1e6


class BaselineAccelerator(abc.ABC):
    """A normalization accelerator (or GPU) used as a comparison point."""

    #: Human-readable name used in figures.
    name: str = "baseline"
    #: Nominal power draw of the normalization engine, in watts.
    nominal_power_w: float = 1.0

    @abc.abstractmethod
    def per_row_seconds(self, workload: NormalizationWorkload) -> float:
        """Average time to normalize one vector of the workload, in seconds."""

    def per_layer_seconds(self, workload: NormalizationWorkload) -> float:
        """Time to normalize all rows of one layer."""
        return self.per_row_seconds(workload) * workload.rows_per_layer

    def workload_latency(self, workload: NormalizationWorkload) -> BaselineLatencyReport:
        """Latency of the full (un-optimised) normalization workload."""
        plain = workload.without_optimizations()
        per_layer = self.per_layer_seconds(plain)
        total = per_layer * plain.num_norm_layers
        return BaselineLatencyReport(
            name=self.name,
            workload=plain,
            cycles_per_row=float("nan"),
            per_layer_seconds=per_layer,
            latency_seconds=total,
        )

    def power_watts(self, workload: NormalizationWorkload) -> float:
        """Power draw while executing the workload."""
        return self.nominal_power_w


class FixedFunctionBaseline(BaselineAccelerator):
    """A lane-based fixed-function LayerNorm engine.

    Parameters
    ----------
    lanes:
        Elements processed per cycle per pass.
    passes:
        Passes over the vector (e.g. statistics pass + normalization pass;
        designs without the ``E[x^2] - E[x]^2`` trick need a third pass).
    clock_mhz:
        Operating frequency.
    row_pipelined:
        Whether consecutive rows overlap in the datapath.  When False the
        per-row passes are fully serialised (the DFX instruction-driven
        vector unit behaves this way); when True the issue interval equals
        the per-row pass count.
    per_row_overhead_cycles:
        Fixed per-row control overhead.
    rms_pass_discount:
        Passes saved for RMSNorm workloads (no mean pass).
    """

    def __init__(
        self,
        name: str,
        lanes: int,
        passes: int,
        clock_mhz: float,
        row_pipelined: bool,
        per_row_overhead_cycles: int = 0,
        nominal_power_w: float = 1.0,
        rms_pass_discount: int = 0,
    ):
        if lanes < 1 or passes < 1 or clock_mhz <= 0:
            raise ValueError("lanes, passes and clock_mhz must be positive")
        self.name = name
        self.lanes = lanes
        self.passes = passes
        self.clock_mhz = clock_mhz
        self.row_pipelined = row_pipelined
        self.per_row_overhead_cycles = per_row_overhead_cycles
        self.nominal_power_w = nominal_power_w
        self.rms_pass_discount = rms_pass_discount

    def cycles_per_row(self, workload: NormalizationWorkload) -> int:
        """Cycles to process one vector (issue interval if row-pipelined)."""
        passes = self.passes
        if workload.norm_kind is NormKind.RMSNORM:
            passes = max(1, passes - self.rms_pass_discount)
        beats = math.ceil(workload.embedding_dim / self.lanes)
        cycles = passes * beats + self.per_row_overhead_cycles
        return cycles

    def per_row_seconds(self, workload: NormalizationWorkload) -> float:
        cycles = self.cycles_per_row(workload)
        return cycles / (self.clock_mhz * 1e6)

    def workload_latency(self, workload: NormalizationWorkload) -> BaselineLatencyReport:
        plain = workload.without_optimizations()
        cycles_row = self.cycles_per_row(plain)
        per_layer = cycles_row * plain.rows_per_layer / (self.clock_mhz * 1e6)
        total = per_layer * plain.num_norm_layers
        return BaselineLatencyReport(
            name=self.name,
            workload=plain,
            cycles_per_row=float(cycles_row),
            per_layer_seconds=per_layer,
            latency_seconds=total,
        )
