"""GPU baseline (A100 running HuggingFace FP16 inference).

The paper's GPU numbers come from profiling the normalization layers of
GPT-2 / OPT executed eagerly through HuggingFace on an A100: every
LayerNorm call launches several small kernels (mean/variance reductions,
elementwise normalize, affine) whose achieved bandwidth at batch size 1 is
a tiny fraction of the device peak, plus per-call launch/framework
overhead.  HAAN is reported to be ~10.5x faster.

Model: per-layer latency = launch/framework overhead + elements /
effective element rate.  The effective rate (1.2 G elements/s) is the
calibration constant, chosen so the normalized latency at sequence length
128 matches the paper's measurement; the overhead term reproduces the
paper's mild decrease of the GPU's normalized latency at longer sequences
(the overhead amortises).
"""

from __future__ import annotations

from repro.hardware.baselines.base import BaselineAccelerator
from repro.hardware.workload import NormalizationWorkload


class GpuBaseline(BaselineAccelerator):
    """A100 (eager-mode) LayerNorm latency model."""

    name = "GPU"
    #: A100 board power attributable to the normalization kernels is not
    #: reported by the paper; the GPU is only compared on latency.
    nominal_power_w = 60.0

    def __init__(
        self,
        launch_overhead_s: float = 10e-6,
        effective_rate_elems_per_s: float = 1.2e9,
    ):
        if launch_overhead_s < 0 or effective_rate_elems_per_s <= 0:
            raise ValueError("invalid GPU model parameters")
        self.launch_overhead_s = launch_overhead_s
        self.effective_rate_elems_per_s = effective_rate_elems_per_s

    def per_row_seconds(self, workload: NormalizationWorkload) -> float:
        """Average per-row time (the launch overhead amortises over rows)."""
        return self.per_layer_seconds(workload) / workload.rows_per_layer

    def per_layer_seconds(self, workload: NormalizationWorkload) -> float:
        elements = workload.rows_per_layer * workload.embedding_dim
        return self.launch_overhead_s + elements / self.effective_rate_elems_per_s
