"""Baseline normalization accelerators the paper compares against."""

from repro.hardware.baselines.base import (
    BaselineAccelerator,
    BaselineLatencyReport,
    FixedFunctionBaseline,
)
from repro.hardware.baselines.dfx import DfxBaseline
from repro.hardware.baselines.gpu import GpuBaseline
from repro.hardware.baselines.mhaa import MhaaBaseline
from repro.hardware.baselines.sole import SoleBaseline


def all_baselines() -> dict[str, BaselineAccelerator]:
    """Instantiate every baseline, keyed by its display name."""
    baselines = [DfxBaseline(), SoleBaseline(), MhaaBaseline(), GpuBaseline()]
    return {baseline.name: baseline for baseline in baselines}


#: Memoized result of :func:`baseline_accelerator_configs` -- the mapping
#: is immutable and validation calls it on the serving submit() hot path.
_BASELINE_CONFIG_CACHE: dict = {}


def baseline_accelerator_configs() -> dict:
    """The fixed-function baselines as :class:`AcceleratorConfig` instances.

    Projects each lane-based baseline model (SOLE / DFX / MHAA) onto the
    engine's accelerator-config shape -- lanes become the statistics and
    normalization datapath widths, the clock carries over -- so the
    ``simulated`` backend can price batches on a baseline datapath and the
    comparison sweeps run through plain ``engine.build``.  The GPU baseline
    has no lane/clock structure and is deliberately absent.  Structural
    approximation only: the authoritative baseline latency model remains
    :meth:`BaselineAccelerator.workload_latency`.
    """
    if not _BASELINE_CONFIG_CACHE:
        from repro.hardware.configs import AcceleratorConfig
        from repro.numerics.quantization import DataFormat

        for baseline in (SoleBaseline(), DfxBaseline(), MhaaBaseline()):
            name = baseline.name.lower()
            _BASELINE_CONFIG_CACHE[name] = AcceleratorConfig(
                name=name,
                stats_width=baseline.lanes,
                norm_width=baseline.lanes,
                data_format=DataFormat.FP16,
                clock_mhz=baseline.clock_mhz,
            )
    return _BASELINE_CONFIG_CACHE


__all__ = [
    "BaselineAccelerator",
    "BaselineLatencyReport",
    "FixedFunctionBaseline",
    "DfxBaseline",
    "GpuBaseline",
    "MhaaBaseline",
    "SoleBaseline",
    "all_baselines",
    "baseline_accelerator_configs",
]
