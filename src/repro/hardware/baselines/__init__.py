"""Baseline normalization accelerators the paper compares against."""

from repro.hardware.baselines.base import (
    BaselineAccelerator,
    BaselineLatencyReport,
    FixedFunctionBaseline,
)
from repro.hardware.baselines.dfx import DfxBaseline
from repro.hardware.baselines.gpu import GpuBaseline
from repro.hardware.baselines.mhaa import MhaaBaseline
from repro.hardware.baselines.sole import SoleBaseline


def all_baselines() -> dict[str, BaselineAccelerator]:
    """Instantiate every baseline, keyed by its display name."""
    baselines = [DfxBaseline(), SoleBaseline(), MhaaBaseline(), GpuBaseline()]
    return {baseline.name: baseline for baseline in baselines}


__all__ = [
    "BaselineAccelerator",
    "BaselineLatencyReport",
    "FixedFunctionBaseline",
    "DfxBaseline",
    "GpuBaseline",
    "MhaaBaseline",
    "SoleBaseline",
    "all_baselines",
]
