"""FPGA resource model (paper Table III).

Estimates LUT / FF / DSP usage of a HAAN accelerator configuration on the
Xilinx Alveo U280.  The model is parametric in the two datapath widths and
the input format:

* every statistics lane costs a format-dependent number of DSPs (the two
  multipliers of Figure 4 plus the adder-tree share) and LUT/FF glue,
* every normalization lane costs the Figure 6 multiply/add datapath,
* when the statistics width ``p_d`` is reduced below the normalization
  width ``p_n`` (the subsampling configurations), the freed resources are
  spent on deeper pipelining of the normalization units ("freeing up
  hardware resources (e.g., DSP) for more normalization units with more
  pipeline levels"), which shows up as *extra* LUT/FF, matching the trend in
  Table III where the (32, 128) builds use more LUTs than (128, 128).

Per-lane cost constants are calibrated against the six rows of Table III;
the calibration targets and the achieved values are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.configs import AcceleratorConfig
from repro.numerics.quantization import DataFormat

#: Device totals implied by Table III's "absolute value / percentage"
#: columns (e.g. 1536 DSP = 12.5% -> 12288 DSP).  They differ slightly from
#: the nominal Alveo U280 numbers because the paper counts SLR-level totals.
DEVICE_TOTALS: Dict[str, int] = {
    "lut": 1_714_000,
    "ff": 3_400_000,
    "dsp": 12_288,
}

#: Per-lane DSP cost of the Input Statistics Calculator, by format.
_DSP_PER_STATS_LANE = {DataFormat.FP32: 5, DataFormat.FP16: 5, DataFormat.INT8: 2}
#: Per-lane DSP cost of the Normalization Unit, by format.
_DSP_PER_NORM_LANE = {DataFormat.FP32: 7, DataFormat.FP16: 7, DataFormat.INT8: 2}

#: Per-lane LUT cost (stats / norm) and fixed control+invsqrt overhead.
_LUT_PER_STATS_LANE = {DataFormat.FP32: 260, DataFormat.FP16: 160, DataFormat.INT8: 90}
_LUT_PER_NORM_LANE = {DataFormat.FP32: 330, DataFormat.FP16: 220, DataFormat.INT8: 110}
_LUT_BASE = 8_000

#: Per-lane FF cost (stats / norm) and fixed overhead.
_FF_PER_STATS_LANE = {DataFormat.FP32: 55, DataFormat.FP16: 35, DataFormat.INT8: 40}
_FF_PER_NORM_LANE = {DataFormat.FP32: 70, DataFormat.FP16: 45, DataFormat.INT8: 40}
_FF_BASE = 1_000

#: Extra LUT/FF per unit of (p_n - p_d) spent on deeper normalization
#: pipelines when the statistics width is reduced (subsampling configs).
_PIPELINE_LUT_PER_FREED_LANE = {DataFormat.FP32: 420, DataFormat.FP16: 360, DataFormat.INT8: 40}
_PIPELINE_FF_PER_FREED_LANE = {DataFormat.FP32: 95, DataFormat.FP16: 75, DataFormat.INT8: 5}


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT / FF / DSP usage of one accelerator build."""

    lut: int
    ff: int
    dsp: int

    @property
    def lut_fraction(self) -> float:
        """LUT usage as a fraction of the device total."""
        return self.lut / DEVICE_TOTALS["lut"]

    @property
    def ff_fraction(self) -> float:
        """FF usage as a fraction of the device total."""
        return self.ff / DEVICE_TOTALS["ff"]

    @property
    def dsp_fraction(self) -> float:
        """DSP usage as a fraction of the device total."""
        return self.dsp / DEVICE_TOTALS["dsp"]

    def fits_device(self) -> bool:
        """Whether the build fits in the device."""
        return (
            self.lut <= DEVICE_TOTALS["lut"]
            and self.ff <= DEVICE_TOTALS["ff"]
            and self.dsp <= DEVICE_TOTALS["dsp"]
        )

    def as_table_row(self) -> Dict[str, str]:
        """Format in the "absolute / percentage" style of Table III."""
        return {
            "LUT": f"{self.lut / 1000:.0f}K/{self.lut_fraction * 100:.1f}%",
            "FF": f"{self.ff / 1000:.0f}K/{self.ff_fraction * 100:.1f}%",
            "DSP": f"{self.dsp}/{self.dsp_fraction * 100:.1f}%",
        }


class ResourceModel:
    """Parametric FPGA resource estimator for HAAN configurations."""

    def freed_stats_lanes(self, config: AcceleratorConfig) -> int:
        """Stats lanes freed (and re-spent on pipelining) relative to ``p_n``."""
        return max(0, config.norm_width - config.stats_width)

    def estimate(self, config: AcceleratorConfig) -> ResourceEstimate:
        """Estimate the resources of one accelerator configuration."""
        fmt = config.data_format
        pipelines = config.num_pipelines
        freed = self.freed_stats_lanes(config)

        dsp = (
            _DSP_PER_STATS_LANE[fmt] * config.stats_width
            + _DSP_PER_NORM_LANE[fmt] * config.norm_width
        )
        lut = (
            _LUT_BASE
            + _LUT_PER_STATS_LANE[fmt] * config.stats_width
            + _LUT_PER_NORM_LANE[fmt] * config.norm_width
            + _PIPELINE_LUT_PER_FREED_LANE[fmt] * freed
        )
        ff = (
            _FF_BASE
            + _FF_PER_STATS_LANE[fmt] * config.stats_width
            + _FF_PER_NORM_LANE[fmt] * config.norm_width
            + _PIPELINE_FF_PER_FREED_LANE[fmt] * freed
        )
        return ResourceEstimate(lut=lut * pipelines, ff=ff * pipelines, dsp=dsp * pipelines)
