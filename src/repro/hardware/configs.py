"""HAAN accelerator configurations.

Section IV/V-B of the paper describes a reconfigurable accelerator
parameterised by:

* ``p_d`` -- input data width (lanes) of the Input Statistics Calculator,
* ``p_n`` -- data width (lanes) of the Normalization Unit,
* the input data format (FP32 / FP16 / INT8),
* the number of pipelines, and
* the clock frequency (100 MHz on the Alveo U280).

The three named configurations evaluated in Figures 8 and 9 are provided as
:data:`HAAN_V1`, :data:`HAAN_V2` and :data:`HAAN_V3`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.numerics.quantization import DataFormat


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static configuration of one HAAN accelerator instance.

    Attributes
    ----------
    name:
        Configuration label used in reports ("haan-v1", ...).
    stats_width:
        ``p_d``: elements consumed per cycle by the Input Statistics
        Calculator.
    norm_width:
        ``p_n``: elements produced per cycle by the Normalization Unit(s).
    data_format:
        Input/output number format.
    num_pipelines:
        Independent normalization pipelines (the paper's evaluated
        configurations all use a single pipeline).
    clock_mhz:
        Operating frequency in MHz.
    inv_sqrt_latency:
        Pipeline latency (cycles) of the Square Root Inverter: FX2FP, shift,
        subtract, FP2FX and one Newton iteration.
    predictor_latency:
        Latency (cycles) of the scalar ISD predictor unit.
    """

    name: str
    stats_width: int
    norm_width: int
    data_format: DataFormat = DataFormat.FP16
    num_pipelines: int = 1
    clock_mhz: float = 100.0
    inv_sqrt_latency: int = 6
    predictor_latency: int = 2

    def __post_init__(self) -> None:
        if self.stats_width < 1 or self.norm_width < 1:
            raise ValueError("datapath widths must be positive")
        if self.num_pipelines < 1:
            raise ValueError("num_pipelines must be >= 1")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1e3 / self.clock_mhz

    @property
    def widths(self) -> tuple[int, int]:
        """The ``(p_d, p_n)`` pair."""
        return (self.stats_width, self.norm_width)

    def with_overrides(self, **kwargs) -> "AcceleratorConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: HAAN-v1: single pipeline, FP16 input, (p_d, p_n) = (128, 128).
HAAN_V1 = AcceleratorConfig(
    name="haan-v1",
    stats_width=128,
    norm_width=128,
    data_format=DataFormat.FP16,
)

#: HAAN-v2: single pipeline, FP16 input, (p_d, p_n) = (80, 160).  The
#: narrower statistics calculator relies on input subsampling; the freed
#: resources implement more normalization lanes.
HAAN_V2 = AcceleratorConfig(
    name="haan-v2",
    stats_width=80,
    norm_width=160,
    data_format=DataFormat.FP16,
)

#: HAAN-v3: single pipeline, FP16 input, (p_d, p_n) = (64, 128); introduced
#: for the OPT-2.7B comparison in Figure 8(b).
HAAN_V3 = AcceleratorConfig(
    name="haan-v3",
    stats_width=64,
    norm_width=128,
    data_format=DataFormat.FP16,
)

#: All named configurations, keyed by name.
NAMED_CONFIGS: Dict[str, AcceleratorConfig] = {
    cfg.name: cfg for cfg in (HAAN_V1, HAAN_V2, HAAN_V3)
}


def get_accelerator_config(name: str, **overrides) -> AcceleratorConfig:
    """Look up a named configuration, optionally overriding fields."""
    key = name.strip().lower()
    if key not in NAMED_CONFIGS:
        raise KeyError(f"unknown accelerator config {name!r}; available: {sorted(NAMED_CONFIGS)}")
    cfg = NAMED_CONFIGS[key]
    return cfg.with_overrides(**overrides) if overrides else cfg


def available_accelerator_configs() -> list[str]:
    """Every selectable accelerator name: HAAN variants plus the baselines."""
    from repro.hardware.baselines import baseline_accelerator_configs

    return sorted(set(NAMED_CONFIGS) | set(baseline_accelerator_configs()))


def resolve_accelerator_config(name: str) -> AcceleratorConfig:
    """Resolve any selectable accelerator name to its configuration.

    The single lookup behind per-request accelerator selection
    (``RequestKey.accelerator``) and the costed ``simulated-*`` backend
    variants: HAAN-v1/v2/v3 come from :data:`NAMED_CONFIGS`, and the
    paper's baseline accelerators (SOLE / DFX / MHAA) from
    :func:`repro.hardware.baselines.baseline_accelerator_configs`.  Unknown
    names raise ``ValueError`` listing everything selectable.
    """
    key = name.strip().lower()
    if key in NAMED_CONFIGS:
        return NAMED_CONFIGS[key]
    from repro.hardware.baselines import baseline_accelerator_configs

    baselines = baseline_accelerator_configs()
    if key in baselines:
        return baselines[key]
    raise ValueError(
        f"unknown accelerator config {name!r}; "
        f"available: {', '.join(available_accelerator_configs())}"
    )


#: Configurations of the Table III hardware-cost sweep: (format, (p_d, p_n)).
TABLE3_CONFIGS: tuple[AcceleratorConfig, ...] = (
    AcceleratorConfig(name="fp32-128-128", stats_width=128, norm_width=128, data_format=DataFormat.FP32),
    AcceleratorConfig(name="fp32-32-128", stats_width=32, norm_width=128, data_format=DataFormat.FP32),
    AcceleratorConfig(name="fp16-128-128", stats_width=128, norm_width=128, data_format=DataFormat.FP16),
    AcceleratorConfig(name="fp16-32-128", stats_width=32, norm_width=128, data_format=DataFormat.FP16),
    AcceleratorConfig(name="int8-256-256", stats_width=256, norm_width=256, data_format=DataFormat.INT8),
    AcceleratorConfig(name="int8-32-512", stats_width=32, norm_width=512, data_format=DataFormat.INT8),
)
