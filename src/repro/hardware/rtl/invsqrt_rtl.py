"""Square Root Inverter pipeline at register-transfer level (Figure 5).

The unit turns a variance (fixed-point code) into the inverse standard
deviation ``1/sqrt(var)``.  The six pipeline stages mirror the datapath of
the paper's Figure 5 and the latency assumed by
:class:`repro.hardware.configs.AcceleratorConfig.inv_sqrt_latency`:

1. **FX2FP** -- decode the variance code into an FP32 bit pattern.
2. **Seed** -- the bit hack ``0x5f3759df - (bits >> 1)`` (equation (8)).
3. **Quantize** -- convert the seed and the variance into the Q9.23 Newton
   fixed-point format (the constant 1.5 appears as ``0x00C00000``).
4. **Newton A** -- compute ``t = 0.5 * x * y0^2``.
5. **Newton B** -- compute ``y1 = y0 * (1.5 - t)`` (equation (9)).
6. **Output register** -- present the refined ISD and its valid flag.

A new variance can be accepted every cycle; results appear after
:attr:`InvSqrtRtl.latency` cycles.  The arithmetic of each stage reproduces
the functional :class:`~repro.numerics.fast_inv_sqrt.FastInvSqrt` model, so
the RTL and golden outputs agree code for code.
"""

from __future__ import annotations

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fast_inv_sqrt import NEWTON_FRACTION_BITS, NEWTON_THREE_HALVES_CODE
from repro.numerics.fixedpoint import FixedPointFormat
from repro.numerics.floating import FP32, FloatFormat, from_bits, to_bits
from repro.numerics.fast_inv_sqrt import _magic_for


class InvSqrtRtl(Module):
    """Six-stage pipelined inverse-square-root unit.

    Parameters
    ----------
    name:
        Module instance name.
    variance_format:
        Fixed-point format of the incoming variance codes.
    newton_format:
        Fixed-point format of the Newton refinement (Q9.23 per Figure 5).
    float_format:
        Floating-point format of the seed computation (FP32).
    """

    def __init__(
        self,
        name: str = "invsqrt",
        variance_format: FixedPointFormat | None = None,
        newton_format: FixedPointFormat | None = None,
        float_format: FloatFormat = FP32,
    ):
        super().__init__(name)
        self.variance_format = variance_format or FixedPointFormat.statistics()
        self.newton_format = newton_format or FixedPointFormat(
            integer_bits=9, fraction_bits=NEWTON_FRACTION_BITS
        )
        self.float_format = float_format
        self._magic = _magic_for(float_format)
        self._three_halves = NEWTON_THREE_HALVES_CODE * 2.0 ** (-NEWTON_FRACTION_BITS)

        var_bits = self.variance_format.total_bits
        newton_bits = self.newton_format.total_bits
        float_bits = float_format.total_bits

        # Interface.
        self.in_code = Wire("in_code", width=var_bits, signed=True)
        self.in_valid = Wire("in_valid", width=1)
        self.out_code = Wire("out_code", width=newton_bits, signed=True)
        self.out_valid = Wire("out_valid", width=1)

        # Stage 1: FX2FP.
        self.s1_bits = Register("s1_bits", width=float_bits)
        # Stage 2: seed bits plus the variance bits carried alongside.
        self.s2_seed_bits = Register("s2_seed_bits", width=float_bits)
        self.s2_x_bits = Register("s2_x_bits", width=float_bits)
        # Stage 3: operands quantized to the Newton format.
        self.s3_y0 = Register("s3_y0", width=newton_bits, signed=True)
        self.s3_x = Register("s3_x", width=newton_bits, signed=True)
        # Stage 4: t = 0.5 * x * y0^2 (plus y0 carried along).
        self.s4_t = Register("s4_t", width=newton_bits, signed=True)
        self.s4_y0 = Register("s4_y0", width=newton_bits, signed=True)
        # Stage 5: refined y1.
        self.s5_y1 = Register("s5_y1", width=newton_bits, signed=True)
        # Stage 6: output register.
        self.s6_out = Register("s6_out", width=newton_bits, signed=True)
        # Valid bits travel in a shift register, one bit per stage.
        self.valid_pipe = Register("valid_pipe", width=6)
        # Activity counter consumed by power/energy book-keeping tests.
        self.values_processed = Register("values_processed", width=32)

    # -- helpers --------------------------------------------------------------

    def _quantize_newton(self, value: float) -> int:
        """Encode a real value into the Newton fixed-point format."""
        return int(self.newton_format.encode(value))

    # -- behaviour --------------------------------------------------------------

    def propagate(self) -> None:
        fmt = self.float_format

        # Stage 1: variance code -> FP bits.
        variance_real = self.variance_format.decode(np.array(self.in_code.value))
        self.s1_bits.set_next(int(to_bits(variance_real, fmt)))

        # Stage 2: bit-hack seed; carry the variance bits forward.
        seed_bits = (self._magic - (self.s1_bits.value >> 1)) & ((1 << fmt.total_bits) - 1)
        self.s2_seed_bits.set_next(seed_bits)
        self.s2_x_bits.set_next(self.s1_bits.value)

        # Stage 3: quantize seed and variance into the Newton format.
        seed_real = float(from_bits(np.array(self.s2_seed_bits.value), fmt))
        x_real = float(from_bits(np.array(self.s2_x_bits.value), fmt))
        self.s3_y0.set_next(self._quantize_newton(seed_real))
        self.s3_x.set_next(self._quantize_newton(x_real))

        # Stage 4: t = 0.5 * x * y0^2 in the Newton format.
        y0 = float(self.newton_format.decode(np.array(self.s3_y0.value)))
        x = float(self.newton_format.decode(np.array(self.s3_x.value)))
        t = 0.5 * x * y0 * y0
        self.s4_t.set_next(self._quantize_newton(t))
        self.s4_y0.set_next(self.s3_y0.value)

        # Stage 5: y1 = y0 * (1.5 - t), quantized back to the Newton format.
        t_real = float(self.newton_format.decode(np.array(self.s4_t.value)))
        y0_real = float(self.newton_format.decode(np.array(self.s4_y0.value)))
        y1 = y0_real * (self._three_halves - t_real)
        self.s5_y1.set_next(self._quantize_newton(y1))

        # Stage 6: output register.
        self.s6_out.set_next(self.s5_y1.value)

        # Valid pipeline and activity counter.
        shifted = ((self.valid_pipe.value << 1) | (1 if self.in_valid.value else 0)) & 0x3F
        self.valid_pipe.set_next(shifted)
        if self.in_valid.value:
            self.values_processed.set_next(self.values_processed.value + 1)
        else:
            self.values_processed.hold()

        self.out_code.drive(self.s6_out.value)
        self.out_valid.drive((self.valid_pipe.value >> 5) & 0x1)

    @property
    def latency(self) -> int:
        """Cycles from accepting a variance to presenting its ISD."""
        return 6

    def decode_output(self) -> float:
        """Current output code as a real ISD value (testing helper)."""
        return float(self.newton_format.decode(np.array(self.out_code.value)))
