"""Pipelined adder tree and accumulator at register-transfer level.

The Input Statistics Calculator (paper Figure 4) reduces ``p_d`` lane
values per cycle with a binary adder tree.  :class:`AdderTreeRtl` models the
tree with one register stage per level, so a reduction issued in cycle
``t`` emerges in cycle ``t + depth`` and a new reduction can be issued every
cycle (initiation interval of one).  :class:`AccumulatorRtl` is the small
register that collects per-beat sums into the running ``E(X)`` / ``E(X^2)``
totals across the multiple passes needed for LLM embedding widths.

Lane payloads are raw fixed-point codes (two's complement); the tree sums
codes exactly and relies on the accumulator format being wide enough, the
same assumption the functional :class:`~repro.hardware.units.adder_tree.AdderTree`
makes.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fixedpoint import FixedPointFormat


class AdderTreeRtl(Module):
    """Binary adder tree with one pipeline register per level.

    Parameters
    ----------
    name:
        Module instance name.
    width:
        Number of leaf inputs (lane count ``p_d``).
    code_width:
        Bit width of each lane's fixed-point code.
    sum_width:
        Bit width of the intermediate and final sums.  Defaults to a width
        large enough that a full tree of ``code_width`` inputs cannot
        overflow (``code_width + ceil(log2(width))``), capped at 63 bits.
    """

    def __init__(self, name: str, width: int, code_width: int = 32, sum_width: int | None = None):
        super().__init__(name)
        if width < 1:
            raise ValueError("adder tree width must be positive")
        self.width = width
        self.depth = max(1, math.ceil(math.log2(width))) if width > 1 else 1
        if sum_width is None:
            sum_width = min(63, code_width + self.depth)
        self.sum_width = sum_width

        self.in_lanes = Wire("in_lanes", width=code_width, signed=True, lanes=width)
        self.in_valid = Wire("in_valid", width=1)
        self.out_sum = Wire("out_sum", width=sum_width, signed=True)
        self.out_valid = Wire("out_valid", width=1)

        # One register bank per tree level; level k holds ceil(width / 2^k)
        # partial sums.  Valid bits ride along the pipeline.
        self._levels: List[Register] = []
        lanes = width
        for level in range(1, self.depth + 1):
            lanes = math.ceil(lanes / 2)
            reg = Register(f"level{level}", width=sum_width, signed=True, lanes=lanes)
            setattr(self, f"level{level}", reg)
            self._levels.append(reg)
        self.valid_pipe = Register("valid_pipe", width=max(1, self.depth), lanes=1)

    # -- behaviour ---------------------------------------------------------

    @staticmethod
    def _pairwise(values: np.ndarray) -> np.ndarray:
        """Sum adjacent pairs; an odd trailing element passes through."""
        if values.size == 1:
            return values.copy()
        pairs = values.size // 2
        summed = values[: 2 * pairs : 2] + values[1 : 2 * pairs : 2]
        if values.size % 2:
            summed = np.concatenate([summed, values[-1:]])
        return summed

    def propagate(self) -> None:
        # Stage 0 -> 1: reduce the input lanes when a beat is presented.
        stage_input = self.in_lanes.values if self.in_valid.value else np.zeros(self.width, dtype=np.int64)
        self._levels[0].set_next(self._pairwise(stage_input))
        # Later stages reduce the previous level's registered partial sums.
        for level in range(1, self.depth):
            self._levels[level].set_next(self._pairwise(self._levels[level - 1].values))
        # Valid shift register tracks beats through the pipeline.
        shifted = ((self.valid_pipe.value << 1) | (1 if self.in_valid.value else 0)) & (
            (1 << self.depth) - 1
        )
        self.valid_pipe.set_next(shifted)
        # Outputs reflect the last register level.
        final = self._levels[-1].values
        self.out_sum.drive(int(final.sum()) if final.size > 1 else int(final[0]))
        self.out_valid.drive((self.valid_pipe.value >> (self.depth - 1)) & 0x1)

    @property
    def latency(self) -> int:
        """Cycles from a beat on ``in_lanes`` to its sum on ``out_sum``."""
        return self.depth


class AccumulatorRtl(Module):
    """Running accumulator with clear, matching the interim-result buffers.

    Adds ``in_value`` to the total on every cycle ``in_valid`` is high;
    ``clear`` empties the register (takes precedence over accumulation so a
    new row can start immediately after the previous one finishes).  The
    output saturates to the configured fixed-point format exactly like the
    functional adder tree saturates its output register.
    """

    def __init__(
        self,
        name: str,
        value_width: int = 40,
        output_format: FixedPointFormat | None = None,
    ):
        super().__init__(name)
        self.output_format = output_format or FixedPointFormat.statistics()
        self.in_value = Wire("in_value", width=value_width, signed=True)
        self.in_valid = Wire("in_valid", width=1)
        self.clear = Wire("clear", width=1)
        self.total = Register("total", width=min(63, value_width + 16), signed=True)
        self.out_code = Wire("out_code", width=self.output_format.total_bits, signed=True)
        self.beats = Register("beats", width=24)

    def propagate(self) -> None:
        if self.clear.value:
            self.total.set_next(0)
            self.beats.set_next(0)
        elif self.in_valid.value:
            self.total.set_next(self.total.value + self.in_value.value)
            self.beats.set_next(self.beats.value + 1)
        else:
            self.total.hold()
            self.beats.hold()
        bounded = self.output_format._bound(np.array(float(self.total.value)))
        self.out_code.drive(int(bounded))

    @property
    def beats_accumulated(self) -> int:
        """Number of beats added since the last clear."""
        return self.beats.value
