"""FP2FX and FX2FP conversion stages at register-transfer level.

Figure 4 of the paper places FP2FX units in front of the Input Statistics
Calculator (floating-point activations are converted once, then the whole
normalization datapath works on fixed-point codes), and Figure 6 places an
FX2FP unit at the output of the Normalization Unit (bypassed when INT8
quantization keeps the output in fixed point).

Both converters here are single-register pipeline stages: a beat presented
with ``in_valid`` high appears converted on the outputs one cycle later
with ``out_valid`` high.  Lane payloads are raw bit patterns -- IEEE-754
bits on the floating-point side, two's-complement codes on the fixed-point
side -- so the modules are faithful to what a synthesised converter sees.
"""

from __future__ import annotations

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fixedpoint import FixedPointFormat
from repro.numerics.floating import FP32, FloatFormat, from_bits, to_bits


class Fp2FxRtl(Module):
    """Floating-point to fixed-point converter bank (one lane per element).

    Parameters
    ----------
    name:
        Module instance name.
    lanes:
        Number of elements converted per cycle.
    float_format:
        Input IEEE-754 format (FP16 or FP32); lane payloads are its raw bits.
    fixed_format:
        Output fixed-point format; lane payloads are its raw codes.
    bypass:
        When True the input lanes are assumed to already carry fixed-point
        codes (INT8 mode) and pass through unchanged, as the paper's FP2FX
        units do for quantized inputs.
    """

    def __init__(
        self,
        name: str,
        lanes: int,
        float_format: FloatFormat = FP32,
        fixed_format: FixedPointFormat | None = None,
        bypass: bool = False,
    ):
        super().__init__(name)
        self.lanes = lanes
        self.float_format = float_format
        self.fixed_format = fixed_format or FixedPointFormat.statistics()
        self.bypass = bypass

        self.in_bits = Wire("in_bits", width=float_format.total_bits, lanes=lanes)
        self.in_valid = Wire("in_valid", width=1)
        self.out_codes = Register(
            "out_codes", width=self.fixed_format.total_bits, signed=True, lanes=lanes
        )
        self.out_valid = Register("out_valid", width=1)
        self.elements_converted = Register("elements_converted", width=32)

    def propagate(self) -> None:
        if self.in_valid.value:
            if self.bypass:
                codes = self.in_bits.values
            else:
                reals = from_bits(self.in_bits.values, self.float_format)
                codes = self.fixed_format.encode(reals)
            self.out_codes.set_next(codes)
            self.elements_converted.set_next(self.elements_converted.value + self.lanes)
        else:
            self.out_codes.hold()
            self.elements_converted.hold()
        self.out_valid.set_next(self.in_valid.value)

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return 1


class Fx2FpRtl(Module):
    """Fixed-point to floating-point converter (scalar or multi-lane).

    The Square Root Inverter uses a scalar instance to convert the variance
    before the bit-hack seed; the Normalization Unit uses a ``p_n``-lane
    instance on its output (bypassed for INT8).
    """

    def __init__(
        self,
        name: str,
        lanes: int = 1,
        float_format: FloatFormat = FP32,
        fixed_format: FixedPointFormat | None = None,
        bypass: bool = False,
    ):
        super().__init__(name)
        self.lanes = lanes
        self.float_format = float_format
        self.fixed_format = fixed_format or FixedPointFormat.statistics()
        self.bypass = bypass

        self.in_codes = Wire("in_codes", width=self.fixed_format.total_bits, signed=True, lanes=lanes)
        self.in_valid = Wire("in_valid", width=1)
        self.out_bits = Register("out_bits", width=float_format.total_bits, lanes=lanes)
        self.out_valid = Register("out_valid", width=1)

    def propagate(self) -> None:
        if self.in_valid.value:
            if self.bypass:
                self.out_bits.set_next(self.in_codes.values)
            else:
                reals = self.fixed_format.decode(self.in_codes.values)
                bits = to_bits(reals, self.float_format)
                self.out_bits.set_next(bits)
        else:
            self.out_bits.hold()
        self.out_valid.set_next(self.in_valid.value)

    def decoded_output(self) -> np.ndarray:
        """Current output reinterpreted as real numbers (testing helper)."""
        if self.bypass:
            return self.fixed_format.decode(self.out_bits.values)
        return from_bits(self.out_bits.values, self.float_format)

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return 1
