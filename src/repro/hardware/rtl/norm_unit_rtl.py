"""Normalization Unit at register-transfer level (Figure 6).

Streams ``p_n`` elements per beat and applies

``out = alpha * (z - mean) * ISD + beta``

in two register stages: the first subtracts the mean and multiplies by the
ISD, the second applies the affine transform.  The mean and ISD are scalar
side inputs held stable for the duration of a row (they come from the
Input Statistics Calculator / Square Root Inverter, or from the ISD
predictor for skipped layers -- the unit does not care which, exactly as in
the paper where the predictor simply bypasses the square-root inverter).

All payloads are fixed-point codes in the unit's ``fixed_format``; the
FX2FP output conversion of Figure 6 is modelled by
:class:`repro.hardware.rtl.converters_rtl.Fx2FpRtl` and bypassed when INT8
quantization keeps the output in fixed point.
"""

from __future__ import annotations

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fixedpoint import FixedPointFormat


class NormUnitRtl(Module):
    """Two-stage pipelined normalization unit.

    Parameters
    ----------
    name:
        Module instance name.
    width:
        Lane count ``p_n`` (elements processed per beat).
    fixed_format:
        Fixed-point format of element, mean, ISD, alpha and beta codes.
    isd_format:
        Format of the ISD side input (the square-root inverter produces
        Q9.23 codes); defaults to the element format.
    """

    def __init__(
        self,
        name: str = "norm_unit",
        width: int = 8,
        fixed_format: FixedPointFormat | None = None,
        isd_format: FixedPointFormat | None = None,
    ):
        super().__init__(name)
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.fixed_format = fixed_format or FixedPointFormat.statistics()
        self.isd_format = isd_format or self.fixed_format
        code_bits = self.fixed_format.total_bits

        # Streaming element input.
        self.in_codes = Wire("in_codes", width=code_bits, signed=True, lanes=width)
        self.in_valid = Wire("in_valid", width=1)
        # Per-row side inputs (held stable while the row streams).
        self.mean_code = Wire("mean_code", width=code_bits, signed=True)
        self.isd_code = Wire("isd_code", width=self.isd_format.total_bits, signed=True)
        self.alpha_codes = Wire("alpha_codes", width=code_bits, signed=True, lanes=width)
        self.beta_codes = Wire("beta_codes", width=code_bits, signed=True, lanes=width)

        # Stage 1: centred and scaled values.
        self.s1_scaled = Register("s1_scaled", width=code_bits, signed=True, lanes=width)
        self.s1_alpha = Register("s1_alpha", width=code_bits, signed=True, lanes=width)
        self.s1_beta = Register("s1_beta", width=code_bits, signed=True, lanes=width)
        # Stage 2: affine output.
        self.out_codes = Register("out_codes", width=code_bits, signed=True, lanes=width)
        self.valid_pipe = Register("valid_pipe", width=2)
        self.out_valid = Wire("out_valid", width=1)
        self.elements_processed = Register("elements_processed", width=32)

    # -- behaviour ------------------------------------------------------------

    def propagate(self) -> None:
        fmt = self.fixed_format

        # Stage 1: (z - mean) * isd, quantized to the working format.
        if self.in_valid.value:
            z = fmt.decode(self.in_codes.values)
            mean = float(fmt.decode(np.array(self.mean_code.value)))
            isd = float(self.isd_format.decode(np.array(self.isd_code.value)))
            centered = fmt.quantize(z - mean)
            scaled = fmt.quantize(centered * isd)
            self.s1_scaled.set_next(fmt.encode(scaled))
            self.s1_alpha.set_next(self.alpha_codes.values)
            self.s1_beta.set_next(self.beta_codes.values)
            self.elements_processed.set_next(self.elements_processed.value + self.width)
        else:
            self.s1_scaled.hold()
            self.s1_alpha.hold()
            self.s1_beta.hold()
            self.elements_processed.hold()

        # Stage 2: alpha * scaled + beta.
        scaled_real = fmt.decode(self.s1_scaled.values)
        alpha_real = fmt.decode(self.s1_alpha.values)
        beta_real = fmt.decode(self.s1_beta.values)
        affine = fmt.quantize(scaled_real * alpha_real + beta_real)
        self.out_codes.set_next(fmt.encode(affine))

        shifted = ((self.valid_pipe.value << 1) | (1 if self.in_valid.value else 0)) & 0x3
        self.valid_pipe.set_next(shifted)
        self.out_valid.drive((self.valid_pipe.value >> 1) & 0x1)

    @property
    def latency(self) -> int:
        """Cycles from an input beat to its normalized output beat."""
        return 2

    def decoded_output(self) -> np.ndarray:
        """Current output beat as real values (testing helper)."""
        return self.fixed_format.decode(self.out_codes.values)

    def beats_for(self, row_length: int) -> int:
        """Beats needed to normalize one row of ``row_length`` elements."""
        if row_length <= 0:
            return 0
        return int(np.ceil(row_length / self.width))
