"""Register-transfer-level models of the HAAN accelerator datapath.

The functional units in :mod:`repro.hardware.units` compute whole rows at a
time and attach analytical cycle counts.  The modules in this package model
the same datapath (paper Figures 3-6) at the register-transfer level on top
of the :mod:`repro.hdl` cycle-accurate simulator: data moves lane by lane
and cycle by cycle through explicit registers, valid hand-shakes and an FSM
controller, so pipeline depths, fill behaviour and hand-shake timing can be
verified directly and waveforms dumped to VCD.

Every RTL module is validated against its functional golden model in
``tests/test_rtl_units.py`` / ``tests/test_rtl_top.py``.

Contents
--------

* :mod:`repro.hardware.rtl.adder_tree_rtl` -- pipelined binary adder tree
  plus a running accumulator (the two reduction paths of Figure 4).
* :mod:`repro.hardware.rtl.converters_rtl` -- FP2FX and FX2FP register
  stages (Figures 4 and 6).
* :mod:`repro.hardware.rtl.invsqrt_rtl` -- the six-stage Square Root
  Inverter pipeline of Figure 5 (FX2FP, magic-constant seed, Newton step).
* :mod:`repro.hardware.rtl.stats_rtl` -- the streaming Input Statistics
  Calculator of Figure 4.
* :mod:`repro.hardware.rtl.norm_unit_rtl` -- the Normalization Unit of
  Figure 6.
* :mod:`repro.hardware.rtl.haan_top_rtl` -- the top-level row processor
  wiring the units together behind a small controller FSM (Figure 3).
"""

from repro.hardware.rtl.adder_tree_rtl import AccumulatorRtl, AdderTreeRtl
from repro.hardware.rtl.converters_rtl import Fp2FxRtl, Fx2FpRtl
from repro.hardware.rtl.haan_top_rtl import HaanRowProcessorRtl, RowResult
from repro.hardware.rtl.invsqrt_rtl import InvSqrtRtl
from repro.hardware.rtl.norm_unit_rtl import NormUnitRtl
from repro.hardware.rtl.stats_rtl import StatsCalculatorRtl

__all__ = [
    "AdderTreeRtl",
    "AccumulatorRtl",
    "Fp2FxRtl",
    "Fx2FpRtl",
    "InvSqrtRtl",
    "StatsCalculatorRtl",
    "NormUnitRtl",
    "HaanRowProcessorRtl",
    "RowResult",
]
