"""Input Statistics Calculator at register-transfer level (Figure 4).

The unit streams a row of fixed-point codes, ``p_d`` lanes per beat, and
produces the row's mean and variance using the rearranged form
``Var(z) = E(z^2) - (E(z))^2`` (paper equation (5)).  Two parallel
reduction paths run concurrently, exactly as drawn in Figure 4:

* the *square* path multiplies each element by itself and by the
  precomputed ``1/N`` before reduction (``E(z^2)``), and
* the *sum* path reduces the raw elements to form the mean.

Both paths share the streaming schedule: ``ceil(N_eff / p_d)`` beats per
row, where ``N_eff`` is the subsample length when subsampling is enabled.
After the last beat an epilogue of two cycles forms ``(E(z))^2`` and the
subtraction, matching the ``+ 2`` epilogue the functional
:meth:`~repro.hardware.units.stats_calculator.InputStatisticsCalculator.cycles_for`
model charges.

Interface
---------

``in_codes`` / ``in_valid`` / ``in_last``
    Streaming input beats of fixed-point codes; ``in_last`` marks the final
    beat of a row.  Unused lanes in the final beat must carry zeros.
``count``
    Number of valid elements in the row (``N_eff``), used for the ``1/N``
    scaling; must be stable while the row streams.
``mean_code`` / ``variance_code`` / ``out_valid``
    Row statistics as fixed-point codes, with a one-cycle valid pulse two
    cycles after the last beat.
"""

from __future__ import annotations

import numpy as np

from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fixedpoint import FixedPointFormat


class StatsCalculatorRtl(Module):
    """Streaming mean/variance calculator.

    Parameters
    ----------
    name:
        Module instance name.
    width:
        Lane count ``p_d``.
    fixed_format:
        Fixed-point format of input codes, internal accumulation and the
        output statistics.
    compute_mean:
        When False (RMSNorm) the mean path is disabled and the output mean
        is zero, as in the paper ("For RMSNorm, the mean is not required").
    eps:
        Small constant added to the variance so the downstream square-root
        inverter never receives a non-positive value.
    """

    #: Cycles between the last input beat and the statistics valid pulse.
    EPILOGUE_CYCLES = 2

    def __init__(
        self,
        name: str = "stats",
        width: int = 8,
        fixed_format: FixedPointFormat | None = None,
        compute_mean: bool = True,
        eps: float = 1e-5,
    ):
        super().__init__(name)
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.fixed_format = fixed_format or FixedPointFormat.statistics()
        self.compute_mean = compute_mean
        self.eps = eps
        code_bits = self.fixed_format.total_bits

        # Streaming input.
        self.in_codes = Wire("in_codes", width=code_bits, signed=True, lanes=width)
        self.in_valid = Wire("in_valid", width=1)
        self.in_last = Wire("in_last", width=1)
        self.count = Wire("count", width=24)

        # Accumulators (wide enough for thousands of Q12.20 codes).
        self.acc_square = Register("acc_square", width=62, signed=True)
        self.acc_sum = Register("acc_sum", width=62, signed=True)
        # Epilogue pipeline.
        self.ep_mean = Register("ep_mean", width=code_bits, signed=True)
        self.ep_sumsq = Register("ep_sumsq", width=code_bits, signed=True)
        self.ep_stage = Register("ep_stage", width=2)
        # Outputs: combinational during the valid pulse, plus held copies for
        # consumers that read the statistics later (the top-level FSM).
        self.mean_code = Wire("mean_code", width=code_bits, signed=True)
        self.variance_code = Wire("variance_code", width=code_bits, signed=True)
        self.mean_hold = Register("mean_hold", width=code_bits, signed=True)
        self.variance_hold = Register("variance_hold", width=code_bits, signed=True)
        self.out_valid = Wire("out_valid", width=1)
        self.beats_seen = Register("beats_seen", width=24)

    # -- behaviour --------------------------------------------------------------

    def _encode(self, value: float) -> int:
        """Encode one real value into the statistics format."""
        return int(self.fixed_format.encode(value))

    def propagate(self) -> None:
        fmt = self.fixed_format
        count = max(1, self.count.value)
        reciprocal = 1.0 / count

        # -- streaming accumulation ------------------------------------------
        if self.in_valid.value:
            lanes_real = fmt.decode(self.in_codes.values)
            # Square path: z_i^2 / N, quantized per element before reduction
            # (the multiply sits before the adder tree in Figure 4).
            squared_codes = fmt.encode(lanes_real * lanes_real * reciprocal)
            self.acc_square.set_next(self.acc_square.value + int(squared_codes.sum()))
            # Sum path: raw elements.
            self.acc_sum.set_next(self.acc_sum.value + int(self.in_codes.values.sum()))
            self.beats_seen.set_next(self.beats_seen.value + 1)
        else:
            self.acc_square.hold()
            self.acc_sum.hold()
            self.beats_seen.hold()

        # -- epilogue ----------------------------------------------------------
        # Stage 1 (the cycle after the last beat): form the mean and latch the
        # accumulated E(z^2).
        if self.ep_stage.value == 1:
            sum_real = fmt.decode(np.array(self.acc_sum.value))
            mean = fmt.quantize(float(sum_real) * reciprocal) if self.compute_mean else 0.0
            sumsq = fmt._bound(np.array(float(self.acc_square.value)))
            self.ep_mean.set_next(self._encode(float(mean)))
            self.ep_sumsq.set_next(int(sumsq))
        else:
            self.ep_mean.hold()
            self.ep_sumsq.hold()

        # Stage 2: square the mean, subtract, add eps, publish.
        if self.ep_stage.value == 2:
            mean_real = float(fmt.decode(np.array(self.ep_mean.value)))
            mean_sq = float(fmt.quantize(mean_real * mean_real)) if self.compute_mean else 0.0
            sumsq_real = float(fmt.decode(np.array(self.ep_sumsq.value)))
            variance = max(sumsq_real - mean_sq, 0.0) + self.eps
            variance_code = self._encode(variance)
            self.mean_code.drive(self.ep_mean.value)
            self.variance_code.drive(variance_code)
            self.mean_hold.set_next(self.ep_mean.value)
            self.variance_hold.set_next(variance_code)
            # Clear the accumulators so the next row can start immediately.
            self.acc_square.set_next(0)
            self.acc_sum.set_next(0)
            self.beats_seen.set_next(0)
        else:
            self.mean_code.drive(self.mean_hold.value)
            self.variance_code.drive(self.variance_hold.value)
            self.mean_hold.hold()
            self.variance_hold.hold()

        # Epilogue stage advance: trigger on the last beat of a row.
        if self.in_valid.value and self.in_last.value:
            self.ep_stage.set_next(1)
        elif self.ep_stage.value == 1:
            self.ep_stage.set_next(2)
        else:
            self.ep_stage.set_next(0)

        # The valid pulse coincides with the cycle in which the stage-2
        # results commit, i.e. one cycle after ep_stage == 2 is observable.
        self.out_valid.drive(1 if self.ep_stage.value == 2 else 0)

    # -- conveniences --------------------------------------------------------------

    def decoded_mean(self) -> float:
        """Current mean output as a real value."""
        return float(self.fixed_format.decode(np.array(self.mean_code.value)))

    def decoded_variance(self) -> float:
        """Current variance output as a real value."""
        return float(self.fixed_format.decode(np.array(self.variance_code.value)))

    def beats_for(self, num_elements: int) -> int:
        """Streaming beats needed for ``num_elements`` values."""
        if num_elements <= 0:
            return 0
        return int(np.ceil(num_elements / self.width))

    def cycles_for_row(self, num_elements: int) -> int:
        """Total cycles from first beat to the statistics valid pulse."""
        return self.beats_for(num_elements) + self.EPILOGUE_CYCLES
