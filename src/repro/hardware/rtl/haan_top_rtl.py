"""Top-level HAAN row processor at register-transfer level (Figure 3).

:class:`HaanRowProcessorRtl` wires the Input Statistics Calculator, the
Square Root Inverter and the Normalization Unit behind a small controller
FSM and processes one normalization row (one token's embedding vector) at a
time:

``IDLE -> STATS -> WAIT_STATS -> WAIT_ISD -> NORM -> DRAIN -> DONE``

The ISD-skipping path of the paper maps onto the FSM directly: when a
predicted ISD is supplied with the row, the ``WAIT_ISD`` state (and, for
RMSNorm, the whole statistics pass) is bypassed, which is exactly where the
latency saving of Algorithm 1 comes from.  Subsampling shortens the
``STATS`` phase to ``ceil(N_sub / p_d)`` beats while the ``NORM`` phase
still streams the full row.

The module keeps the row payload in plain Python buffers (standing in for
the chunked memory of Figure 7) and moves data through the datapath
submodules over their signal-level interfaces, so the cycle counts it
produces can be compared against both the analytical pipeline model and the
paper's latency claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hardware.rtl.invsqrt_rtl import InvSqrtRtl
from repro.hardware.rtl.norm_unit_rtl import NormUnitRtl
from repro.hardware.rtl.stats_rtl import StatsCalculatorRtl
from repro.hdl.module import Module
from repro.hdl.signal import Register, Wire
from repro.numerics.fixedpoint import FixedPointFormat


@dataclass
class RowResult:
    """Output of one processed row."""

    output: np.ndarray
    mean: float
    isd: float
    cycles: int
    skipped: bool


class HaanRowProcessorRtl(Module):
    """Controller FSM plus datapath for one normalization row.

    Parameters
    ----------
    name:
        Module instance name.
    stats_width:
        Lane count ``p_d`` of the statistics calculator.
    norm_width:
        Lane count ``p_n`` of the normalization unit.
    compute_mean:
        True for LayerNorm, False for RMSNorm.
    fixed_format:
        Working fixed-point format of the datapath.
    """

    # FSM state encoding.
    IDLE, STATS, WAIT_STATS, WAIT_ISD, NORM, DRAIN, DONE = range(7)

    def __init__(
        self,
        name: str = "haan_row",
        stats_width: int = 8,
        norm_width: int = 8,
        compute_mean: bool = True,
        fixed_format: FixedPointFormat | None = None,
    ):
        super().__init__(name)
        self.stats_width = stats_width
        self.norm_width = norm_width
        self.compute_mean = compute_mean
        self.fixed_format = fixed_format or FixedPointFormat.statistics()

        self.stats = StatsCalculatorRtl(
            "stats", width=stats_width, fixed_format=self.fixed_format, compute_mean=compute_mean
        )
        self.invsqrt = InvSqrtRtl("invsqrt", variance_format=self.fixed_format)
        self.norm = NormUnitRtl(
            "norm",
            width=norm_width,
            fixed_format=self.fixed_format,
            isd_format=self.invsqrt.newton_format,
        )

        self.state = Register("state", width=3)
        self.stat_beat = Register("stat_beat", width=16)
        self.norm_beat = Register("norm_beat", width=16)
        self.isd_code = Register("isd_code", width=self.invsqrt.newton_format.total_bits, signed=True)
        self.busy = Wire("busy", width=1)
        self.done = Wire("done", width=1)

        # Row payload (Python-side memory standing in for Figure 7's layout).
        self._row_codes: Optional[np.ndarray] = None
        self._alpha_codes: Optional[np.ndarray] = None
        self._beta_codes: Optional[np.ndarray] = None
        self._row_length = 0
        self._effective_length = 0
        self._predicted_isd_code: Optional[int] = None
        self._pending = False
        self._start_cycle = 0
        self._cycles_now = 0
        self._collected: List[np.ndarray] = []
        self._result: Optional[RowResult] = None

    # -- row loading ---------------------------------------------------------

    def load_row(
        self,
        row: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        subsample_length: Optional[int] = None,
        predicted_isd: Optional[float] = None,
    ) -> None:
        """Stage one row for processing (picked up at the next IDLE cycle)."""
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        gamma = np.asarray(gamma, dtype=np.float64).reshape(-1)
        beta = np.asarray(beta, dtype=np.float64).reshape(-1)
        if gamma.shape != row.shape or beta.shape != row.shape:
            raise ValueError("gamma and beta must match the row length")
        self._row_codes = self.fixed_format.encode(row)
        self._alpha_codes = self.fixed_format.encode(gamma)
        self._beta_codes = self.fixed_format.encode(beta)
        self._row_length = row.size
        self._effective_length = (
            row.size if subsample_length is None else min(subsample_length, row.size)
        )
        if predicted_isd is None:
            self._predicted_isd_code = None
        else:
            self._predicted_isd_code = int(self.invsqrt.newton_format.encode(predicted_isd))
        self._pending = True
        self._collected = []
        self._result = None
        self._start_cycle = self._cycles_now

    # -- helpers ----------------------------------------------------------------

    @property
    def skipping(self) -> bool:
        """Whether the currently loaded row uses a predicted ISD."""
        return self._predicted_isd_code is not None

    def _lanes(self, codes: np.ndarray, beat: int, width: int, limit: int) -> np.ndarray:
        """Extract one beat of ``width`` lanes, zero-padding past ``limit``."""
        start = beat * width
        stop = min(start + width, limit)
        lanes = np.zeros(width, dtype=np.int64)
        if start < stop:
            lanes[: stop - start] = codes[start:stop]
        return lanes

    def _stats_beats(self) -> int:
        return int(np.ceil(self._effective_length / self.stats_width)) if self._effective_length else 0

    def _norm_beats(self) -> int:
        return int(np.ceil(self._row_length / self.norm_width)) if self._row_length else 0

    # -- behaviour ----------------------------------------------------------------

    def propagate(self) -> None:
        state = self.state.value

        # Default (idle) drives for every submodule input.
        self.stats.in_valid.drive(0)
        self.stats.in_last.drive(0)
        self.stats.in_codes.drive(np.zeros(self.stats_width, dtype=np.int64))
        self.stats.count.drive(max(1, self._effective_length))
        self.invsqrt.in_valid.drive(0)
        self.invsqrt.in_code.drive(0)
        self.norm.in_valid.drive(0)
        self.norm.in_codes.drive(np.zeros(self.norm_width, dtype=np.int64))
        self.norm.alpha_codes.drive(np.zeros(self.norm_width, dtype=np.int64))
        self.norm.beta_codes.drive(np.zeros(self.norm_width, dtype=np.int64))
        self.norm.mean_code.drive(self.stats.mean_hold.value if self.compute_mean else 0)
        isd_drive = (
            self._predicted_isd_code
            if self._predicted_isd_code is not None
            else self.isd_code.value
        )
        self.norm.isd_code.drive(isd_drive)

        next_state = state
        self.stat_beat.hold()
        self.norm_beat.hold()
        self.isd_code.hold()

        if state == self.IDLE:
            if self._pending:
                if self.skipping and not self.compute_mean:
                    # RMSNorm skip: no statistics needed at all.
                    next_state = self.NORM
                else:
                    next_state = self.STATS
                self.stat_beat.set_next(0)
                self.norm_beat.set_next(0)

        elif state == self.STATS:
            beat = self.stat_beat.value
            total = self._stats_beats()
            lanes = self._lanes(self._row_codes, beat, self.stats_width, self._effective_length)
            self.stats.in_codes.drive(lanes)
            self.stats.in_valid.drive(1)
            last = beat == total - 1
            self.stats.in_last.drive(1 if last else 0)
            self.stat_beat.set_next(beat + 1)
            if last:
                next_state = self.WAIT_STATS

        elif state == self.WAIT_STATS:
            if self.stats.out_valid.value:
                if self.skipping:
                    next_state = self.NORM
                else:
                    self.invsqrt.in_code.drive(self.stats.variance_code.value)
                    self.invsqrt.in_valid.drive(1)
                    next_state = self.WAIT_ISD

        elif state == self.WAIT_ISD:
            if self.invsqrt.out_valid.value:
                self.isd_code.set_next(self.invsqrt.out_code.value)
                next_state = self.NORM

        elif state == self.NORM:
            beat = self.norm_beat.value
            total = self._norm_beats()
            self.norm.in_codes.drive(self._lanes(self._row_codes, beat, self.norm_width, self._row_length))
            self.norm.alpha_codes.drive(self._lanes(self._alpha_codes, beat, self.norm_width, self._row_length))
            self.norm.beta_codes.drive(self._lanes(self._beta_codes, beat, self.norm_width, self._row_length))
            self.norm.in_valid.drive(1)
            self.norm_beat.set_next(beat + 1)
            if beat == total - 1:
                next_state = self.DRAIN

        elif state == self.DRAIN:
            if len(self._collected) >= self._norm_beats():
                next_state = self.DONE

        elif state == self.DONE:
            next_state = self.IDLE

        self.state.set_next(next_state)
        self.busy.drive(0 if state in (self.IDLE, self.DONE) else 1)
        self.done.drive(1 if state == self.DONE else 0)

    def clock_edge(self) -> None:
        # Collect normalized beats as they emerge.
        if self.norm.out_valid.value and self.state.value in (self.NORM, self.DRAIN):
            self._collected.append(self.norm.out_codes.values)
        if self.state.value == self.DONE and self._result is None:
            self._finalize()
        if self.state.value == self.IDLE and self._pending:
            self._pending = False
        self._cycles_now += 1

    def _finalize(self) -> None:
        beats = np.concatenate(self._collected) if self._collected else np.zeros(0, dtype=np.int64)
        output = self.fixed_format.decode(beats[: self._row_length])
        mean = float(self.stats.decoded_mean()) if self.compute_mean else 0.0
        if self.skipping:
            isd = float(self.invsqrt.newton_format.decode(np.array(self._predicted_isd_code)))
        else:
            isd = float(self.invsqrt.newton_format.decode(np.array(self.isd_code.value)))
        self._result = RowResult(
            output=output,
            mean=mean,
            isd=isd,
            cycles=self._cycles_now - self._start_cycle,
            skipped=self.skipping,
        )

    # -- results ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the loaded row has been fully processed."""
        return self._result is not None

    @property
    def result(self) -> RowResult:
        """Result of the most recently processed row."""
        if self._result is None:
            raise RuntimeError("row not finished; check `finished` before reading the result")
        return self._result
