"""HAAN memory layout (paper Figure 7).

The input tensor is flattened row-major into a vector and packed into
memory entries whose width equals the accelerator's input bandwidth
(``p_d`` elements for the statistics stream, ``p_n`` for the normalization
stream).  The accelerator reads one entry per cycle.  In subsampling mode
only the leading entries of each row are fetched when computing input
statistics, which is where the latency and power savings of Section III-C
come from.

:class:`MemoryLayout` implements the packing/unpacking plus the entry-count
accounting used by the cycle model, and :class:`MemoryTraffic` tallies the
bytes actually moved for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.numerics.quantization import DataFormat


@dataclass
class MemoryTraffic:
    """Byte counters of accelerator <-> memory traffic."""

    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero the counters."""
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def total_bytes(self) -> int:
        """Total traffic in bytes."""
        return self.bytes_read + self.bytes_written


@dataclass
class MemoryLayout:
    """Chunked, flattened storage of one input tensor.

    Parameters
    ----------
    entry_width:
        Number of elements per memory entry (the accelerator's input
        bandwidth; one entry is consumed per cycle).
    data_format:
        Element storage format, used for byte accounting.
    """

    entry_width: int
    data_format: DataFormat = DataFormat.FP16
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)

    def __post_init__(self) -> None:
        if self.entry_width < 1:
            raise ValueError("entry_width must be positive")

    # -- packing ----------------------------------------------------------

    def pack(self, tensor: np.ndarray) -> np.ndarray:
        """Flatten a tensor and pack it into zero-padded memory entries.

        Returns an array of shape ``(num_entries, entry_width)``; the final
        entry is zero-padded, as a real memory row would be.
        """
        flat = np.asarray(tensor, dtype=np.float64).reshape(-1)
        num_entries = self.entries_for(flat.size)
        padded = np.zeros(num_entries * self.entry_width)
        padded[: flat.size] = flat
        return padded.reshape(num_entries, self.entry_width)

    def unpack(self, entries: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        """Reassemble a tensor of ``shape`` from packed memory entries."""
        flat = np.asarray(entries, dtype=np.float64).reshape(-1)
        size = int(np.prod(shape))
        if flat.size < size:
            raise ValueError("packed data smaller than the requested shape")
        return flat[:size].reshape(shape)

    # -- entry accounting --------------------------------------------------

    def entries_for(self, num_elements: int) -> int:
        """Memory entries needed to hold ``num_elements`` elements."""
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        return int(np.ceil(num_elements / self.entry_width)) if num_elements else 0

    def entries_per_row(self, row_length: int) -> int:
        """Entries per normalization vector of ``row_length`` elements."""
        return self.entries_for(row_length)

    def subsampled_entries_per_row(self, row_length: int, subsample_length: int | None) -> int:
        """Entries fetched per row when statistics use only the leading elements.

        "In subsampling mode, only the initial portion of memory entries is
        accessed for computing input statistics." (paper Section IV-C)
        """
        if subsample_length is None:
            return self.entries_per_row(row_length)
        effective = min(subsample_length, row_length)
        return self.entries_for(effective)

    # -- traffic accounting -------------------------------------------------

    def record_read(self, num_elements: int) -> None:
        """Charge a read of ``num_elements`` elements to the traffic counter."""
        self.traffic.bytes_read += num_elements * self.data_format.bytes

    def record_write(self, num_elements: int) -> None:
        """Charge a write of ``num_elements`` elements to the traffic counter."""
        self.traffic.bytes_written += num_elements * self.data_format.bytes

    def row_addresses(self, num_rows: int, row_length: int) -> List[Tuple[int, int]]:
        """(first entry, entry count) of each row in the packed layout.

        Rows are stored back to back in flattened order, so a row may start
        mid-entry; the returned ranges cover every entry touching the row,
        which is what the DMA engine would fetch.
        """
        ranges = []
        for row in range(num_rows):
            first_element = row * row_length
            last_element = first_element + row_length - 1
            first_entry = first_element // self.entry_width
            last_entry = last_element // self.entry_width
            ranges.append((first_entry, last_entry - first_entry + 1))
        return ranges
