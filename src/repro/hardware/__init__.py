"""The HAAN accelerator model and its baselines (paper Section IV / V-B).

Functional + cycle models of the HAAN datapath (input statistics
calculator, square root inverter, normalization unit, ISD predictor unit,
memory layout, row-level pipeline), an FPGA resource/power model calibrated
against Table III, and structural models of the DFX / SOLE / MHAA / GPU
baselines used in Figures 8 and 9.
"""

from repro.hardware.accelerator import HaanAccelerator, LatencyReport
from repro.hardware.configs import (
    AcceleratorConfig,
    HAAN_V1,
    HAAN_V2,
    HAAN_V3,
    NAMED_CONFIGS,
    TABLE3_CONFIGS,
    available_accelerator_configs,
    get_accelerator_config,
    resolve_accelerator_config,
)
from repro.hardware.memory import MemoryLayout, MemoryTraffic
from repro.hardware.pipeline import PipelineModel, PipelineSchedule, PipelineStage
from repro.hardware.power import PowerModel, PowerReport, TABLE3_POWER_SEQ_LENS
from repro.hardware.resources import DEVICE_TOTALS, ResourceEstimate, ResourceModel
from repro.hardware.workload import NormalizationWorkload
from repro.hardware.baselines import (
    BaselineAccelerator,
    DfxBaseline,
    GpuBaseline,
    MhaaBaseline,
    SoleBaseline,
    all_baselines,
)
from repro.hardware.units import (
    AdderTree,
    InputStatisticsCalculator,
    IsdPredictorUnit,
    NormalizationUnit,
    SquareRootInverter,
    StatisticsResult,
)
from repro.hardware.bandwidth import (
    BandwidthReport,
    MemorySystem,
    U280_DDR4,
    U280_HBM,
    roofline_analysis,
)
from repro.hardware.dse import DesignPoint, DesignSpaceExplorer, ExplorationResult
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.timing import TimingModel, TimingReport

__all__ = [
    "BandwidthReport",
    "MemorySystem",
    "U280_DDR4",
    "U280_HBM",
    "roofline_analysis",
    "DesignPoint",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "EnergyModel",
    "EnergyReport",
    "TimingModel",
    "TimingReport",
    "HaanAccelerator",
    "LatencyReport",
    "AcceleratorConfig",
    "HAAN_V1",
    "HAAN_V2",
    "HAAN_V3",
    "NAMED_CONFIGS",
    "TABLE3_CONFIGS",
    "available_accelerator_configs",
    "get_accelerator_config",
    "resolve_accelerator_config",
    "MemoryLayout",
    "MemoryTraffic",
    "PipelineModel",
    "PipelineSchedule",
    "PipelineStage",
    "PowerModel",
    "PowerReport",
    "TABLE3_POWER_SEQ_LENS",
    "DEVICE_TOTALS",
    "ResourceEstimate",
    "ResourceModel",
    "NormalizationWorkload",
    "BaselineAccelerator",
    "DfxBaseline",
    "GpuBaseline",
    "MhaaBaseline",
    "SoleBaseline",
    "all_baselines",
    "AdderTree",
    "InputStatisticsCalculator",
    "IsdPredictorUnit",
    "NormalizationUnit",
    "SquareRootInverter",
    "StatisticsResult",
]
